//! Minimal, std-only reimplementation of the subset of the `bytes` crate API
//! that Canal Mesh uses (`Bytes`, `BytesMut`, `Buf`, `BufMut`).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this shim as a path dependency named `bytes`; call sites are unchanged.
//! `Bytes` is a cheaply cloneable view (`Arc<[u8]>` + range) and `BytesMut`
//! is a growable `Vec<u8>` wrapper. All integer accessors are big-endian,
//! matching the real crate's `get_u16`/`put_u16` family.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read-side cursor trait: a shrinking window over a byte sequence.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Pop one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Pop a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Pop a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Pop a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side trait: append primitives to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer: a shared allocation plus a
/// `[start, end)` view into it. `slice`/`split_to` are O(1) and allocation
/// free; `advance` narrows the view in place.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn resolve(&self, range: impl RangeBounds<usize>) -> (usize, usize) {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        (lo, hi)
    }

    /// O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (lo, hi) = self.resolve(range);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Split off and return everything from `at`; `self` keeps the front.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer; freezes into a shareable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Remove and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.inner.split_off(at);
        BytesMut {
            inner: std::mem::replace(&mut self.inner, tail),
        }
    }

    /// Remove and return everything from `at`; `self` keeps the front.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { inner: s.to_vec() }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::from(self.inner.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        assert_eq!(w.len(), 15);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_shares_allocation_and_windows_correctly() {
        let b = Bytes::from(b"hello world");
        let w = b.slice(6..);
        assert_eq!(w.as_slice(), b"world");
        let h = b.slice(0..5);
        assert_eq!(h.as_slice(), b"hello");
        // Nested slices compose.
        assert_eq!(w.slice(1..3).as_slice(), b"or");
    }

    #[test]
    fn advance_and_split_views() {
        let mut b = Bytes::from(b"abcdef");
        b.advance(2);
        assert_eq!(b.as_slice(), b"cdef");
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), b"cd");
        assert_eq!(b.as_slice(), b"ef");

        let mut m = BytesMut::from(&b"abcdef"[..]);
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ab");
        let tail = m.split_off(2);
        assert_eq!(&m[..], b"cd");
        assert_eq!(&tail[..], b"ef");
    }

    #[test]
    fn mut_indexing_patches_in_place() {
        let mut m = BytesMut::from(&b"xx-xx"[..]);
        m[2..3].copy_from_slice(b"+");
        assert_eq!(&m[..], b"xx+xx");
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_out_of_range_panics() {
        let _ = Bytes::from(b"ab").slice(0..3);
    }

    #[test]
    fn equality_across_views() {
        let a = Bytes::from(b"payload");
        let b = Bytes::from(b"xxpayload").slice(2..);
        assert_eq!(a, b);
        assert_eq!(a, *b"payload");
    }
}
