// Fixture: panicking constructs in library code outside #[cfg(test)] must
// trip the `panic` rule.
pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}

pub fn must(s: &str) -> u64 {
    s.parse().expect("not a number")
}

pub fn branch(x: u64) -> u64 {
    match x {
        0 => panic!("zero"),
        1 => unreachable!(),
        2 => todo!(),
        3 => unimplemented!(),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    // Inside cfg(test) the same constructs are fine.
    #[test]
    fn unwrap_is_fine_here() {
        let v: u64 = "7".parse().unwrap();
        assert_eq!(v, 7);
    }
}
