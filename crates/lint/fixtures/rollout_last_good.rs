// Fixture: the PR-5 `last_good` bug, in miniature. The struct *has* a
// fold_digest, but one field its &mut self methods mutate never reaches
// the fold — exactly the shape of drift the `digest-coverage` field-fold
// prong exists to catch structurally.
pub struct MiniRollout {
    version: u64,
    last_good: u64,
}

impl MiniRollout {
    pub fn promote(&mut self) {
        self.version += 1;
        self.last_good = self.version;
    }

    pub fn fold_digest(&self, d: &mut Digest) {
        // BUG (deliberate): last_good is mutated above but never folded.
        d.write_u64(self.version);
    }
}
