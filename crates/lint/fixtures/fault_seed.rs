// Fixture: faults-facing library code (file name starts with `fault`,
// `resilience`, `sampler`, or `rollout`) seeding its own SimRng must trip
// the `fault-seed` rule — fault plans take their randomness from the
// caller so one experiment seed steers the whole run.
pub fn make_plan() -> u64 {
    let mut rng = SimRng::seed(0xBAD_5EED);
    rng.u64()
}
