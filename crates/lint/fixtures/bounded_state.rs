// Fixture: a growable collection field that &mut self methods grow with
// no cap const, eviction counter, or shrink path must trip the
// `bounded-state` rule — unbounded long-lived state is an OOM waiting for
// a million-pod run.
pub struct GrowingAuditLog {
    entries: Vec<u64>,
}

impl GrowingAuditLog {
    pub fn record(&mut self, v: u64) {
        self.entries.push(v);
    }

    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.entries.len() as u64);
        for &e in &self.entries {
            d.write_u64(e);
        }
    }
}
