// Fixture: ambient (unseeded) randomness must trip the `ambient-rng` rule —
// all randomness flows through a seeded SimRng.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn flip() -> bool {
    rand::random()
}
