// Fixture: printing to stdout from library code must trip the `stdout`
// rule (stdout belongs to canal-bench and binaries).
pub fn report(value: u64) {
    println!("value = {value}");
    print!("no newline");
    let _ = dbg!(value);
}
