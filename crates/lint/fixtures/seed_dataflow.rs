// Fixture: a library fn that seeds a private SimRng without taking a
// SimRng in its signature — and with no in-file caller chain that does —
// must trip the `seed-dataflow` rule. All randomness must be steered by
// the one experiment seed, so private streams can only be forks of a
// caller-supplied generator.
pub fn make_hidden_plan() -> u64 {
    let mut rng = SimRng::seed(0xBAD_5EED);
    rng.u64()
}

// A compliant neighbour for contrast: the private stream is a fork of the
// caller's generator, so the signature carries SimRng and nothing fires.
pub fn make_forked_plan(rng: &mut SimRng) -> u64 {
    let mut sub = SimRng::seed(rng.u64());
    sub.u64()
}
