// Fixture: hash-ordered collections in deterministic library code must trip
// the `unordered-map` rule.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Table {
    pub routes: HashMap<u32, String>,
    pub seen: HashSet<u32>,
}
