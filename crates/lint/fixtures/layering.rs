// Fixture: canal_sim is a leaf crate — referencing any other workspace
// crate must trip the `layering` rule.
use canal_gateway::Gateway;
use bytes::Bytes;

pub fn sim_should_not_know_gateways(gw: &Gateway) -> Bytes {
    let _ = gw;
    Bytes::new()
}
