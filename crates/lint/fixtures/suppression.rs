// Fixture: suppression hygiene. A lint:allow with no reason, with an
// unknown rule id, or that suppresses nothing must trip the `suppression`
// rule.
pub fn no_reason(s: &str) -> u64 {
    s.parse().unwrap() // lint:allow(panic)
}

pub fn unknown_rule(s: &str) -> u64 {
    s.parse().unwrap() // lint:allow(made-up-rule) reason=not a real rule id
}

// lint:allow(wallclock) reason=this annotation suppresses nothing and must be flagged
pub fn nothing_here() -> u64 {
    42
}

// A correct suppression, for contrast: honoured and reported as suppressed.
pub fn justified(s: &str) -> u64 {
    s.parse().unwrap() // lint:allow(panic) reason=fixture demonstrating a well-formed exception
}
