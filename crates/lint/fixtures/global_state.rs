// Fixture: ambient global state must trip the `global-state` rule — it
// survives across seeded runs in one process, escapes the digest fold,
// and undermines per-tenant isolation reasoning.
static mut EVENTS_SEEN: u64 = 0;

thread_local! {
    static SCRATCH: std::cell::Cell<u64> = std::cell::Cell::new(0);
}

pub fn salt() -> &'static std::sync::OnceLock<u64> {
    static SALT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    &SALT
}
