// Fixture: a mutable-state struct in a digest-participating crate that is
// unreachable from every fold_digest impl must trip the `digest-coverage`
// rule — state the double-run harness cannot see can silently diverge
// between runs.
pub struct ShadowTracker {
    count: u64,
}

impl ShadowTracker {
    pub fn bump(&mut self) {
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }
}
