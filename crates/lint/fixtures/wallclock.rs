// Fixture: reading the wall clock in simulation-facing library code must
// trip the `wallclock` rule. (Fixtures are scanned as canal_sim lib code;
// they are never compiled.)
use std::time::Instant;

pub fn elapsed_ns() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
