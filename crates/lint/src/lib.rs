//! canal-lint: workspace determinism & invariant static analysis.
//!
//! A std-only, dependency-free analyzer over every `.rs` file in the
//! workspace (plus each crate's `Cargo.toml`), enforcing the determinism
//! contract described in DESIGN.md. Two stages:
//!
//! **Line stage** (lexer + patterns over masked code):
//!
//! * **determinism** — simulation-facing crates may not read wall clocks
//!   (`Instant::now`, `SystemTime::now`), draw ambient randomness
//!   (`thread_rng`, `rand::random`, `OsRng`, ...), use hash-ordered
//!   collections (`HashMap`/`HashSet`) outside tests, or hold ambient
//!   global state (`static mut`, `thread_local!`, `OnceLock`, ...).
//! * **stdout / panic policy** — only `canal-bench` and binaries print;
//!   no `unwrap()`/`expect()`/`panic!` in library code outside
//!   `#[cfg(test)]`.
//!
//! **Graph stage** ([`parser`] items folded into a [`graph::SymbolGraph`]):
//!
//! * **layering** — crate references from the parsed `use` graph (aliases
//!   resolved, multi-line groups handled) and manifest dependencies must
//!   follow the DAG declared in [`rules::LAYERING_DAG`].
//! * **digest-coverage** — mutable-state structs in digest-participating
//!   crates must be reachable from a `fold_digest` impl, and every field a
//!   struct mutates must appear in its own fold.
//! * **bounded-state** — growable collection fields on long-lived structs
//!   must carry a cap const, an eviction counter, or a shrink path.
//! * **seed-dataflow** — fns seeding a `SimRng` must take one from their
//!   callers (directly or through the in-file call graph).
//!
//! Deliberate exceptions are annotated in the source as
//! `// lint:allow(<rule>) reason=<why>` on the offending line or the line
//! above (digest-coverage reasons are typed: `reason=derived: ...` or
//! `reason=transient: ...`). A suppression with no reason, an unknown rule
//! id, or one that suppresses nothing is itself a violation, so the
//! annotations cannot rot.
//!
//! Entry points: `cargo run -p canal-lint` (human report, nonzero exit on
//! violations; `--json` for the machine-readable report, `--explain` for
//! per-rule rationale) and the root-crate integration test `tests/lint.rs`
//! (so `cargo test` fails on violations too). [`scan_fixture_dir`] runs the
//! same rules over `crates/lint/fixtures/` — known-bad snippets acting as a
//! self-test that every rule still fires.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

use graph::FileRecord;
use lexer::LexedFile;
use rules::{Pattern, TargetKind};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a concrete source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (one of [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of what was matched and why it is forbidden.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A suppressed (annotated) would-be violation, kept for reporting.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Rule that would have fired.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The justification given in the annotation.
    pub reason: String,
}

/// Outcome of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (file, line).
    pub violations: Vec<Violation>,
    /// Annotated exceptions that were honoured.
    pub suppressed: Vec<Suppressed>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked against the layering DAG.
    pub manifests_checked: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Distinct rule ids that fired (for the fixture self-test).
    pub fn rules_fired(&self) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = self.violations.iter().map(|v| v.rule).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Render the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("error: {v}\n"));
        }
        out.push_str(&format!(
            "canal-lint: {} file(s), {} manifest(s) scanned; {} violation(s), {} suppressed exception(s)\n",
            self.files_scanned,
            self.manifests_checked,
            self.violations.len(),
            self.suppressed.len(),
        ));
        if !self.suppressed.is_empty() {
            out.push_str("suppressed exceptions:\n");
            for s in &self.suppressed {
                out.push_str(&format!(
                    "  {}:{}: [{}] {}\n",
                    s.file, s.line, s.rule, s.reason
                ));
            }
        }
        out
    }

    /// Render the machine-readable report (`canal-lint --json`), for CI
    /// artifacts and tooling. Hand-rolled: the linter stays dependency-free.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"manifests_checked\": {},\n",
            self.manifests_checked
        ));
        let fired: Vec<String> = self
            .rules_fired()
            .iter()
            .map(|r| format!("\"{r}\""))
            .collect();
        out.push_str(&format!("  \"rules_fired\": [{}],\n", fired.join(", ")));
        out.push_str("  \"violations\": [\n");
        let vs: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                    v.rule,
                    esc(&v.file),
                    v.line,
                    esc(&v.message)
                )
            })
            .collect();
        out.push_str(&vs.join(",\n"));
        out.push_str(if vs.is_empty() { "  ],\n" } else { "\n  ],\n" });
        out.push_str("  \"suppressed\": [\n");
        let ss: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                    s.rule,
                    esc(&s.file),
                    s.line,
                    esc(&s.reason)
                )
            })
            .collect();
        out.push_str(&ss.join(",\n"));
        out.push_str(if ss.is_empty() { "  ]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }
}

/// A candidate violation before suppression matching.
#[derive(Debug)]
pub(crate) struct Finding {
    pub(crate) rule: &'static str,
    pub(crate) line: usize,
    pub(crate) message: String,
}

fn deps_of(ident: &str) -> Option<&'static [&'static str]> {
    rules::LAYERING_DAG
        .iter()
        .find(|(n, _)| *n == ident)
        .map(|(_, d)| *d)
}

fn test_only_deps_of(ident: &str) -> &'static [&'static str] {
    rules::TEST_ONLY_DEPS
        .iter()
        .find(|(n, _)| *n == ident)
        .map(|(_, d)| *d)
        .unwrap_or(&[])
}

fn is_determinism_crate(ident: &str) -> bool {
    rules::DETERMINISM_CRATES.contains(&ident)
}

/// Run the line-stage rules plus the parsed-use-graph layering check over
/// one lexed+parsed source file.
fn findings_for(record: &FileRecord, lexed: &LexedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let crate_ident = record.crate_ident.as_str();
    let kind = record.kind;
    let determinism = is_determinism_crate(crate_ident);

    fn push_patterns(
        findings: &mut Vec<Finding>,
        rule: &'static str,
        patterns: &[Pattern],
        lineno: usize,
        line: &str,
        why: &str,
    ) {
        for pat in patterns {
            for _ in rules::find_pattern(line, pat) {
                findings.push(Finding {
                    rule,
                    line: lineno,
                    message: format!("`{}` {}", pat.needle.trim_end_matches('('), why),
                });
            }
        }
    }

    for (idx, line) in lexed.code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = lexed.in_test.get(idx).copied().unwrap_or(false);

        // Determinism family: simulation-facing crates everywhere (tests
        // included — reproducibility of the suites is the point), plus
        // library code of every other crate.
        if determinism || kind == TargetKind::Lib {
            push_patterns(
                &mut findings,
                "wallclock",
                rules::WALLCLOCK_PATTERNS,
                lineno,
                line,
                "reads the wall clock; use canal_sim::SimTime virtual time",
            );
            push_patterns(
                &mut findings,
                "ambient-rng",
                rules::AMBIENT_RNG_PATTERNS,
                lineno,
                line,
                "draws ambient randomness; thread all randomness through a seeded canal_sim::SimRng",
            );
        }

        // Global state: process-lifetime mutable state escapes the digest
        // fold and leaks across back-to-back seeded runs.
        if determinism || kind == TargetKind::Lib {
            push_patterns(
                &mut findings,
                "global-state",
                rules::GLOBAL_STATE_PATTERNS,
                lineno,
                line,
                "holds ambient global state; thread state through explicit structs so it is owned, digested and reset per run",
            );
        }

        // Unordered maps: deterministic library/binary code only. Tests may
        // use them (e.g. to check Hash impls) since they do not feed
        // simulation state.
        if determinism
            && !in_test
            && matches!(
                kind,
                TargetKind::Lib | TargetKind::Bin | TargetKind::Example
            )
        {
            push_patterns(
                &mut findings,
                "unordered-map",
                rules::UNORDERED_MAP_PATTERNS,
                lineno,
                line,
                "iterates in hasher order; use BTreeMap/BTreeSet for deterministic iteration",
            );
        }

        // Stdout: only canal-bench library code and binary-like targets may
        // print; everything else returns values or records metrics.
        if kind == TargetKind::Lib && crate_ident != "canal_bench" && !in_test {
            push_patterns(
                &mut findings,
                "stdout",
                rules::STDOUT_PATTERNS,
                lineno,
                line,
                "writes to stdout from library code; only canal-bench and binaries may print",
            );
        }

        // Panic policy: library code returns errors.
        if kind == TargetKind::Lib && !in_test {
            push_patterns(
                &mut findings,
                "panic",
                rules::PANIC_PATTERNS,
                lineno,
                line,
                "can panic in library code; return a Result or restructure so the invariant is type-enforced",
            );
        }
    }

    // Layering: every reference in the parsed use-graph (use declarations,
    // qualified path roots, `use x as y` aliases resolved) must be an edge
    // in the declared DAG; test code additionally gets TEST_ONLY_DEPS.
    for r in &record.syntax.crate_refs {
        if r.name == crate_ident {
            continue;
        }
        let in_test = lexed.in_test.get(r.line.wrapping_sub(1)).copied().unwrap_or(false);
        let test_scope = in_test
            || matches!(
                kind,
                TargetKind::Test | TargetKind::Example | TargetKind::Bench
            );
        let ok = deps_of(crate_ident).is_some_and(|deps| {
            deps.contains(&r.name.as_str())
                || (test_scope && test_only_deps_of(crate_ident).contains(&r.name.as_str()))
        });
        if !ok {
            findings.push(Finding {
                rule: "layering",
                line: r.line,
                message: format!(
                    "`{crate_ident}` must not depend on `{}` (not an edge in the declared DAG; see canal_lint::rules::LAYERING_DAG)",
                    r.name
                ),
            });
        }
    }
    findings
}

/// Apply `lint:allow` suppressions to raw findings and enforce suppression
/// hygiene (reason present, rule id known, annotation actually used).
fn apply_suppressions(lexed: &LexedFile, findings: Vec<Finding>, file: &str, report: &mut Report) {
    let mut used = vec![false; lexed.suppressions.len()];
    for f in findings {
        let hit = lexed
            .suppressions
            .iter()
            .position(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
        match hit {
            Some(i) => {
                used[i] = true;
                report.suppressed.push(Suppressed {
                    rule: f.rule,
                    file: file.to_string(),
                    line: f.line,
                    reason: lexed.suppressions[i].reason.clone(),
                });
            }
            None => report.violations.push(Violation {
                rule: f.rule,
                file: file.to_string(),
                line: f.line,
                message: f.message,
            }),
        }
    }
    for (i, s) in lexed.suppressions.iter().enumerate() {
        if !rules::RULE_IDS.contains(&s.rule.as_str()) {
            report.violations.push(Violation {
                rule: "suppression",
                file: file.to_string(),
                line: s.line,
                message: format!("unknown rule `{}` in lint:allow", s.rule),
            });
        } else if s.reason.is_empty() {
            report.violations.push(Violation {
                rule: "suppression",
                file: file.to_string(),
                line: s.line,
                message: "lint:allow without reason=... — every exception needs a justification"
                    .to_string(),
            });
        } else if !used[i] {
            report.violations.push(Violation {
                rule: "suppression",
                file: file.to_string(),
                line: s.line,
                message: format!(
                    "unused lint:allow({}) — nothing on this or the next line trips the rule; delete it",
                    s.rule
                ),
            });
        } else if s.rule == "digest-coverage"
            && !(s.reason.starts_with("derived:") || s.reason.starts_with("transient:"))
        {
            report.violations.push(Violation {
                rule: "suppression",
                file: file.to_string(),
                line: s.line,
                message: "digest-coverage exceptions are typed: reason=derived: <why> for state recomputable from folded state, reason=transient: <why> for per-step scratch state".to_string(),
            });
        }
    }
}

/// One source file queued for a scan.
struct ScanFile {
    file: String,
    source: String,
    crate_ident: String,
    kind: TargetKind,
}

/// Scan a set of source files as one unit: line rules per file, then the
/// symbol graph (struct containment, methods, call edges) across all of
/// them, then suppression matching per file.
fn scan_files(files: &[ScanFile], report: &mut Report) {
    let mut lexed_files = Vec::with_capacity(files.len());
    let mut records = Vec::with_capacity(files.len());
    for f in files {
        let lexed = lexer::lex(&f.source);
        records.push(FileRecord::new(&f.file, &f.crate_ident, f.kind, &lexed));
        lexed_files.push(lexed);
    }
    let mut per_file: Vec<Vec<Finding>> = records
        .iter()
        .zip(&lexed_files)
        .map(|(r, l)| findings_for(r, l))
        .collect();
    for (idx, finding) in graph::graph_findings(&records) {
        per_file[idx].push(finding);
    }
    for ((f, lexed), findings) in files.iter().zip(&lexed_files).zip(per_file) {
        apply_suppressions(lexed, findings, &f.file, report);
        report.files_scanned += 1;
    }
}

/// Scan one in-memory source file as `crate_ident`/`kind` (its own
/// single-file symbol graph; cross-file containment needs a workspace scan).
pub fn scan_source(
    file: &str,
    source: &str,
    crate_ident: &str,
    kind: TargetKind,
    report: &mut Report,
) {
    scan_files(
        &[ScanFile {
            file: file.to_string(),
            source: source.to_string(),
            crate_ident: crate_ident.to_string(),
            kind,
        }],
        report,
    );
}

/// Classify a workspace-relative path into (crate ident, target kind).
/// Returns `None` for files the linter does not police (fixtures, docs).
fn classify(rel: &Path) -> Option<(String, TargetKind)> {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (ident, rest): (String, &[&str]) = if comps.first() == Some(&"crates") {
        let dir = comps.get(1)?;
        let ident = match *dir {
            "bytes" => "bytes".to_string(),
            other => format!("canal_{}", other.replace('-', "_")),
        };
        (ident, comps.get(2..)?)
    } else {
        ("canal".to_string(), &comps[..])
    };
    let kind = match *rest.first()? {
        "src" => {
            if rest.get(1) == Some(&"bin") || rest.last() == Some(&"main.rs") {
                TargetKind::Bin
            } else {
                TargetKind::Lib
            }
        }
        "tests" => TargetKind::Test,
        "examples" => TargetKind::Example,
        "benches" => TargetKind::Bench,
        _ => return None, // fixtures/, docs, ...
    };
    Some((ident, kind))
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "target" | ".git" | "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Normalize a dependency name from a manifest line (`canal-sim` →
/// `canal_sim`).
fn manifest_dep_name(line: &str) -> Option<String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('[') {
        return None;
    }
    let key = trimmed
        .split(['=', '.', ' '])
        .next()
        .unwrap_or("")
        .trim()
        .trim_matches('"');
    if key.is_empty() {
        return None;
    }
    Some(key.replace('-', "_"))
}

/// Check one crate manifest's `[dependencies]`/`[dev-dependencies]` against
/// the layering DAG. Only internal crates (`canal_*`, `bytes`) are policed;
/// there are no external dependencies in this workspace by design.
fn check_manifest(
    path: &Path,
    rel: &str,
    crate_ident: &str,
    report: &mut Report,
) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let mut section = "";
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            section = match trimmed {
                "[dependencies]" => "deps",
                "[dev-dependencies]" => "dev",
                _ => "",
            };
            continue;
        }
        if section.is_empty() {
            continue;
        }
        let Some(dep) = manifest_dep_name(line) else {
            continue;
        };
        if dep != "bytes" && !dep.starts_with("canal_") {
            continue;
        }
        if dep == crate_ident {
            continue;
        }
        let allowed = deps_of(crate_ident).is_some_and(|deps| {
            deps.contains(&dep.as_str())
                || (section == "dev" && test_only_deps_of(crate_ident).contains(&dep.as_str()))
        });
        if !allowed {
            report.violations.push(Violation {
                rule: "layering",
                file: rel.to_string(),
                line: idx + 1,
                message: format!(
                    "manifest dependency `{dep}` is not allowed for `{crate_ident}` by the declared DAG"
                ),
            });
        }
    }
    report.manifests_checked += 1;
    Ok(())
}

/// Scan the whole workspace rooted at `root`: every `.rs` file under `src/`,
/// `tests/`, `examples/`, `crates/*/{src,tests,examples,benches}`, plus
/// every crate manifest.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut files = Vec::new();
    for sub in ["src", "tests", "examples", "crates"] {
        walk_rs(&root.join(sub), &mut files)?;
    }
    let mut queue = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let Some((ident, kind)) = classify(rel) else {
            continue;
        };
        queue.push(ScanFile {
            file: rel.display().to_string(),
            source: fs::read_to_string(path)?,
            crate_ident: ident,
            kind,
        });
    }
    scan_files(&queue, &mut report);
    // Manifests: the root package plus every crate.
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        check_manifest(&root_manifest, "Cargo.toml", "canal", &mut report)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let ident = match name {
                "bytes" => "bytes".to_string(),
                other => format!("canal_{}", other.replace('-', "_")),
            };
            let rel = format!("crates/{name}/Cargo.toml");
            check_manifest(&manifest, &rel, &ident, &mut report)?;
        }
    }
    report.sort();
    Ok(report)
}

/// Scan a directory of fixture snippets. Each `.rs` file is treated as
/// library code of a simulation-facing crate (`canal_sim`), the strictest
/// configuration, so every rule family can fire.
pub fn scan_fixture_dir(dir: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut files = Vec::new();
    walk_fixtures(dir, &mut files)?;
    let mut queue = Vec::new();
    for path in &files {
        queue.push(ScanFile {
            file: path.strip_prefix(dir).unwrap_or(path).display().to_string(),
            source: fs::read_to_string(path)?,
            crate_ident: "canal_sim".to_string(),
            kind: TargetKind::Lib,
        });
    }
    scan_files(&queue, &mut report);
    report.sort();
    Ok(report)
}

fn walk_fixtures(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_fixtures(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root from this crate's build-time manifest dir.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .components()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(src: &str, ident: &str, kind: TargetKind) -> Report {
        let mut r = Report::default();
        scan_source("mem.rs", src, ident, kind, &mut r);
        r.sort();
        r
    }

    #[test]
    fn wallclock_fires_in_sim_crates_and_lib_code() {
        let r = scan_one("let t = Instant::now();", "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["wallclock"]);
        // Also in tests of determinism crates...
        let r = scan_one("let t = Instant::now();", "canal_net", TargetKind::Test);
        assert_eq!(r.rules_fired(), vec!["wallclock"]);
        // ...but not in bench targets of non-determinism crates.
        let r = scan_one("let t = Instant::now();", "canal_bench", TargetKind::Bench);
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn unordered_map_exempts_tests() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let r = scan_one(src, "canal_net", TargetKind::Lib);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn layering_rejects_undeclared_edges() {
        let r = scan_one("use canal_gateway::Gateway;", "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["layering"]);
        let r = scan_one("use canal_sim::SimRng;", "canal_net", TargetKind::Lib);
        assert!(r.clean(), "{}", r.render());
        // bytes:: path references count as crate references.
        let r = scan_one(
            "let b = bytes::Bytes::new();",
            "canal_workload",
            TargetKind::Lib,
        );
        assert_eq!(r.rules_fired(), vec!["layering"]);
        // Local variables that merely start with `canal_` are not crate
        // references, and neither are fields accessed as `x.bytes`.
        let r = scan_one(
            "let canal_bps = rate * 8; let b = pkt.bytes;",
            "canal_net",
            TargetKind::Lib,
        );
        assert!(r.clean(), "{}", r.render());
        // Re-exports without `::` still count.
        let r = scan_one(
            "pub use canal_gateway as gateway;",
            "canal_net",
            TargetKind::Lib,
        );
        assert_eq!(r.rules_fired(), vec!["layering"]);
    }

    #[test]
    fn test_only_deps_are_allowed_in_tests_only() {
        let r = scan_one("use canal_lint::Report;", "canal", TargetKind::Test);
        assert!(r.clean(), "{}", r.render());
        let r = scan_one("use canal_lint::Report;", "canal", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["layering"]);
    }

    #[test]
    fn stdout_is_bench_and_binaries_only() {
        let r = scan_one("println!(\"x\");", "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["stdout"]);
        assert!(scan_one("println!(\"x\");", "canal_bench", TargetKind::Lib).clean());
        assert!(scan_one("println!(\"x\");", "canal_net", TargetKind::Bin).clean());
        // eprintln is fine anywhere.
        assert!(scan_one("eprintln!(\"x\");", "canal_net", TargetKind::Lib).clean());
    }

    #[test]
    fn panic_policy_spares_tests_and_non_lib_targets() {
        let r = scan_one("x.unwrap();", "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["panic"]);
        assert!(scan_one("x.unwrap();", "canal_net", TargetKind::Test).clean());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(scan_one(in_test, "canal_net", TargetKind::Lib).clean());
    }

    #[test]
    fn suppressions_silence_and_are_audited() {
        let ok = "// lint:allow(panic) reason=checked two lines above\nx.unwrap();";
        let r = scan_one(ok, "canal_net", TargetKind::Lib);
        assert!(r.clean(), "{}", r.render());
        assert_eq!(r.suppressed.len(), 1);

        let no_reason = "x.unwrap(); // lint:allow(panic)";
        let r = scan_one(no_reason, "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["suppression"]);

        let unused = "let y = 1; // lint:allow(panic) reason=nothing here panics";
        let r = scan_one(unused, "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["suppression"]);

        let unknown = "x.unwrap(); // lint:allow(bogus-rule) reason=whatever";
        let r = scan_one(unknown, "canal_net", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["panic", "suppression"]);
    }

    #[test]
    fn seed_dataflow_replaces_the_filename_glob_heuristic() {
        // Any lib fn in a determinism crate — file name no longer matters.
        let bad = "pub fn make_plan() -> u64 {\n    let mut rng = SimRng::seed(42);\n    rng.next()\n}\n";
        let r = scan_one(bad, "canal_sim", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["seed-dataflow"]);
        assert_eq!(r.violations[0].line, 2);
        // A caller-supplied SimRng in the signature makes forking legal.
        let ok = "pub fn make_plan(rng: &mut SimRng) -> u64 {\n    let mut sub = SimRng::seed(rng.next());\n    sub.next()\n}\n";
        assert!(scan_one(ok, "canal_sim", TargetKind::Lib).clean());
        // Tests, binaries and non-determinism crates seed freely.
        assert!(scan_one(bad, "canal_sim", TargetKind::Test).clean());
        assert!(scan_one(bad, "canal_sim", TargetKind::Bin).clean());
        assert!(scan_one(bad, "canal_bench", TargetKind::Lib).clean());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f() -> u64 { let mut r = SimRng::seed(7); r.next() }\n}\n";
        assert!(scan_one(in_test, "canal_sim", TargetKind::Lib).clean());
    }

    #[test]
    fn global_state_fires_in_lib_code() {
        let r = scan_one(
            "static mut COUNT: u64 = 0;\n",
            "canal_net",
            TargetKind::Lib,
        );
        assert_eq!(r.rules_fired(), vec!["global-state"]);
        let r = scan_one(
            "fn f() { thread_local!(static X: u64 = 0); }\n",
            "canal_sim",
            TargetKind::Lib,
        );
        assert_eq!(r.rules_fired(), vec!["global-state"]);
    }

    #[test]
    fn digest_coverage_suppressions_must_be_typed() {
        let src = "// lint:allow(digest-coverage) reason=transient: scratch map rebuilt each step\npub struct Scratch { v: u64 }\nimpl Scratch { pub fn set(&mut self, v: u64) { self.v = v; } }\n";
        let r = scan_one(src, "canal_sim", TargetKind::Lib);
        assert!(r.clean(), "{}", r.render());
        assert_eq!(r.suppressed.len(), 1);

        let untyped = "// lint:allow(digest-coverage) reason=not important\npub struct Scratch { v: u64 }\nimpl Scratch { pub fn set(&mut self, v: u64) { self.v = v; } }\n";
        let r = scan_one(untyped, "canal_sim", TargetKind::Lib);
        assert_eq!(r.rules_fired(), vec!["suppression"]);
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = scan_one("x.unwrap();", "canal_net", TargetKind::Lib);
        let json = r.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"rule\": \"panic\""));
        assert!(json.contains("\"rules_fired\": [\"panic\"]"));
        // Escaping: backticks fine, quotes escaped.
        let r2 = scan_one("let s = 1;", "canal_net", TargetKind::Lib);
        assert!(r2.to_json().contains("\"clean\": true"));
    }

    #[test]
    fn classify_maps_paths_to_targets() {
        let c = |p: &str| classify(Path::new(p));
        assert_eq!(
            c("crates/net/src/flow.rs"),
            Some(("canal_net".to_string(), TargetKind::Lib))
        );
        assert_eq!(
            c("crates/bench/src/bin/experiments.rs"),
            Some(("canal_bench".to_string(), TargetKind::Bin))
        );
        assert_eq!(
            c("crates/bench/benches/codecs.rs"),
            Some(("canal_bench".to_string(), TargetKind::Bench))
        );
        assert_eq!(
            c("tests/determinism.rs"),
            Some(("canal".to_string(), TargetKind::Test))
        );
        assert_eq!(c("src/lib.rs"), Some(("canal".to_string(), TargetKind::Lib)));
        assert_eq!(
            c("crates/bytes/src/lib.rs"),
            Some(("bytes".to_string(), TargetKind::Lib))
        );
        assert_eq!(c("crates/lint/fixtures/bad.rs"), None);
    }

    #[test]
    fn manifest_dep_names_normalize() {
        assert_eq!(
            manifest_dep_name("canal-sim.workspace = true"),
            Some("canal_sim".to_string())
        );
        assert_eq!(
            manifest_dep_name("bytes = { path = \"crates/bytes\" }"),
            Some("bytes".to_string())
        );
        assert_eq!(manifest_dep_name("# comment"), None);
        assert_eq!(manifest_dep_name("[dependencies]"), None);
    }
}
