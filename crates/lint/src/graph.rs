//! Workspace symbol graph and the graph-aware rule families.
//!
//! [`FileRecord`]s (one per scanned source file) are folded into a
//! [`SymbolGraph`]: structs indexed per crate, methods bound to their
//! owning type across files, field-containment edges between struct
//! types, and the in-file call edges each fn body exposes. Three rule
//! families query it:
//!
//! * **digest-coverage** — every mutable-state struct in the
//!   determinism-participating crates ([`crate::rules::DIGEST_CRATES`])
//!   must be reachable from a `fold_digest` impl through field
//!   containment; and a struct that *has* a `fold_digest` must actually
//!   fold every field its `&mut self` methods mutate (the PR-5
//!   `last_good` bug, caught structurally). Exceptions are typed:
//!   `reason=derived: ...` or `reason=transient: ...`.
//! * **bounded-state** — a growable collection field (`Vec`, `VecDeque`,
//!   `BTreeMap`, `BTreeSet`, `BinaryHeap`) that the owning struct's
//!   `&mut self` methods grow must carry bound evidence: a shrink call on
//!   the same field, a cap const / cap field, or an eviction counter.
//! * **seed-dataflow** — any lib fn in a determinism crate whose body
//!   calls `SimRng::seed` must receive a `SimRng` in its signature, or be
//!   reachable only from in-file callers that do (the seed then derives
//!   from the caller's stream, e.g. `rng.fork(salt)` wrappers).

use crate::lexer::LexedFile;
use crate::parser::{FieldOpKind, FileSyntax, FnDef, StructDef};
use crate::rules::{self, TargetKind};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One scanned file, lexed and parsed, with its workspace classification.
pub struct FileRecord {
    /// Workspace-relative path.
    pub file: String,
    /// Owning crate ident (`canal_sim`, ...).
    pub crate_ident: String,
    /// Compilation target kind.
    pub kind: TargetKind,
    /// Parsed symbol view.
    pub syntax: FileSyntax,
    /// Per-line `#[cfg(test)]` flags (0-based), from the lexer.
    pub in_test: Vec<bool>,
}

impl FileRecord {
    /// Build a record from a lexed file.
    pub fn new(file: &str, crate_ident: &str, kind: TargetKind, lexed: &LexedFile) -> Self {
        FileRecord {
            file: file.to_string(),
            crate_ident: crate_ident.to_string(),
            kind,
            syntax: crate::parser::parse(lexed),
            in_test: lexed.in_test.clone(),
        }
    }

    fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }
}

/// Collection types whose growth must be bounded.
const GROWABLE: &[&str] = &["Vec", "VecDeque", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// Methods that grow a collection.
const GROW_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
    "entry",
    "resize",
];

/// Methods that shrink or rotate a collection (bound evidence).
const SHRINK_METHODS: &[&str] = &[
    "pop",
    "pop_front",
    "pop_back",
    "pop_first",
    "pop_last",
    "remove",
    "remove_entry",
    "swap_remove",
    "truncate",
    "drain",
    "clear",
    "split_off",
    "retain",
    "take",
];

/// Name fragments that mark a cap const / cap field.
const CAP_NAMES: &[&str] = &["cap", "max", "limit", "bound", "budget"];

/// Name fragments that mark an eviction counter field.
const EVICT_NAMES: &[&str] = &["evict", "dropped", "shed", "discard", "overflow"];

fn name_matches(name: &str, fragments: &[&str]) -> bool {
    let lower = name.to_ascii_lowercase();
    fragments.iter().any(|f| lower.contains(f))
}

/// Outer collection type of a field type token string, e.g.
/// `std :: collections :: VecDeque < u64 >` → `VecDeque`.
fn outer_type(ty: &str) -> Option<String> {
    let mut last = None;
    for tok in ty.split_whitespace() {
        match tok {
            "::" => continue,
            "<" | "(" | "[" | "&" => break,
            t if t.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') => {
                if t == "mut" || t == "dyn" || t == "impl" {
                    continue;
                }
                last = Some(t.to_string());
            }
            _ => break,
        }
    }
    last
}

/// All type-level idents mentioned in a field type (for containment edges).
fn type_idents(ty: &str) -> BTreeSet<String> {
    ty.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .map(str::to_string)
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct StructId(usize);

struct StructEntry<'a> {
    rec: usize,
    def: &'a StructDef,
}

/// The workspace-wide symbol graph.
pub struct SymbolGraph<'a> {
    records: &'a [FileRecord],
    structs: Vec<StructEntry<'a>>,
    /// (crate, type name) → struct id.
    by_crate_name: BTreeMap<(&'a str, &'a str), StructId>,
    /// type name → struct ids across crates.
    by_name: BTreeMap<&'a str, Vec<StructId>>,
    /// (crate, type name) → method defs bound to that type, across files.
    methods: BTreeMap<(&'a str, &'a str), Vec<(usize, &'a FnDef)>>,
}

impl<'a> SymbolGraph<'a> {
    /// Index every struct, method and const across the scanned files.
    pub fn build(records: &'a [FileRecord]) -> Self {
        let mut graph = SymbolGraph {
            records,
            structs: Vec::new(),
            by_crate_name: BTreeMap::new(),
            by_name: BTreeMap::new(),
            methods: BTreeMap::new(),
        };
        for (rec, r) in records.iter().enumerate() {
            for def in &r.syntax.structs {
                let id = StructId(graph.structs.len());
                graph.structs.push(StructEntry { rec, def });
                graph
                    .by_crate_name
                    .entry((r.crate_ident.as_str(), def.name.as_str()))
                    .or_insert(id);
                graph.by_name.entry(def.name.as_str()).or_default().push(id);
            }
            for f in &r.syntax.fns {
                if let Some(owner) = &f.owner {
                    graph
                        .methods
                        .entry((r.crate_ident.as_str(), owner.as_str()))
                        .or_default()
                        .push((rec, f));
                }
            }
        }
        graph
    }

    fn crate_of(&self, id: StructId) -> &'a str {
        self.records[self.structs[id.0].rec].crate_ident.as_str()
    }

    /// Methods of a struct, excluding `#[cfg(test)]` regions.
    fn methods_of(&self, id: StructId) -> impl Iterator<Item = &'a FnDef> + '_ {
        let entry = &self.structs[id.0];
        let key = (self.crate_of(id), entry.def.name.as_str());
        self.methods
            .get(&key)
            .into_iter()
            .flatten()
            .filter(|(rec, f)| !self.records[*rec].line_in_test(f.line))
            .map(|(_, f)| *f)
    }

    /// Resolve a field-type ident to a struct: same crate wins, otherwise a
    /// unique cross-crate name match.
    fn resolve_type(&self, crate_ident: &str, name: &str) -> Option<StructId> {
        if let Some(id) = self.by_crate_name.get(&(crate_ident, name)) {
            return Some(*id);
        }
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Field-containment edges out of one struct.
    fn field_edges(&self, id: StructId) -> Vec<StructId> {
        let entry = &self.structs[id.0];
        let crate_ident = self.crate_of(id);
        let mut out = Vec::new();
        for field in &entry.def.fields {
            for ident in type_idents(&field.ty) {
                if let Some(to) = self.resolve_type(crate_ident, &ident) {
                    if to != id {
                        out.push(to);
                    }
                }
            }
        }
        out
    }

    fn has_fold_digest(&self, id: StructId) -> bool {
        self.methods_of(id).any(|f| f.name == "fold_digest")
    }

    fn has_mut_state(&self, id: StructId) -> bool {
        !self.structs[id.0].def.fields.is_empty()
            && self.methods_of(id).any(|f| f.takes_mut_self)
    }

    /// Struct ids reachable from any `fold_digest` root via field edges.
    fn digest_reachable(&self) -> BTreeSet<StructId> {
        let mut reached: BTreeSet<StructId> = BTreeSet::new();
        let mut stack: Vec<StructId> = (0..self.structs.len())
            .map(StructId)
            .filter(|id| self.has_fold_digest(*id))
            .collect();
        while let Some(id) = stack.pop() {
            if !reached.insert(id) {
                continue;
            }
            stack.extend(self.field_edges(id));
        }
        reached
    }

    /// True when the struct lives in lib code of a digest-participating
    /// crate outside `#[cfg(test)]` — the scope of the state rules.
    fn in_digest_scope(&self, id: StructId) -> bool {
        let entry = &self.structs[id.0];
        let r = &self.records[entry.rec];
        rules::DIGEST_CRATES.contains(&r.crate_ident.as_str())
            && r.kind == TargetKind::Lib
            && !r.line_in_test(entry.def.line)
    }

    /// The idents visible to a struct's `fold_digest`: its own body plus
    /// the bodies of everything it transitively calls in the same file.
    fn fold_digest_idents(&self, id: StructId) -> BTreeSet<String> {
        let entry = &self.structs[id.0];
        let key = (self.crate_of(id), entry.def.name.as_str());
        let mut idents = BTreeSet::new();
        let Some(methods) = self.methods.get(&key) else {
            return idents;
        };
        for (rec, fold) in methods.iter().filter(|(_, f)| f.name == "fold_digest") {
            idents.extend(fold.body.idents.iter().cloned());
            // Transitive in-file callees, by name.
            let file_fns = &self.records[*rec].syntax.fns;
            let mut queue: Vec<&str> = fold.body.calls.iter().map(String::as_str).collect();
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(callee) = queue.pop() {
                if !seen.insert(callee) {
                    continue;
                }
                for f in file_fns.iter().filter(|f| f.name == callee) {
                    idents.extend(f.body.idents.iter().cloned());
                    queue.extend(f.body.calls.iter().map(String::as_str));
                }
            }
        }
        idents
    }

    /// Cap-const / cap-field / eviction-counter evidence for a struct.
    fn bound_evidence(&self, id: StructId) -> bool {
        let entry = &self.structs[id.0];
        let r = &self.records[entry.rec];
        let crate_ident = self.crate_of(id);
        entry
            .def
            .fields
            .iter()
            .any(|f| name_matches(&f.name, CAP_NAMES) || name_matches(&f.name, EVICT_NAMES))
            || r.syntax.consts.iter().any(|c| {
                name_matches(&c.name, CAP_NAMES)
                    && (c.owner.is_none() || c.owner.as_deref() == Some(&entry.def.name))
            })
            || self.records.iter().any(|rr| {
                rr.crate_ident == crate_ident
                    && rr.syntax.consts.iter().any(|c| {
                        c.owner.as_deref() == Some(&entry.def.name)
                            && name_matches(&c.name, CAP_NAMES)
                    })
            })
    }
}

/// Run the graph rules; findings are keyed by record index so the caller
/// can merge them with the per-line findings before suppression matching.
pub(crate) fn graph_findings(records: &[FileRecord]) -> Vec<(usize, Finding)> {
    let graph = SymbolGraph::build(records);
    let mut out = Vec::new();
    digest_coverage(&graph, &mut out);
    bounded_state(&graph, &mut out);
    seed_dataflow(records, &mut out);
    out
}

fn digest_coverage(graph: &SymbolGraph<'_>, out: &mut Vec<(usize, Finding)>) {
    let reachable = graph.digest_reachable();
    for (idx, entry) in graph.structs.iter().enumerate() {
        let id = StructId(idx);
        if !graph.in_digest_scope(id) {
            continue;
        }
        let name = entry.def.name.as_str();
        // The digest sink and the runtime monitors that feed it are the
        // mechanism, not simulation state.
        if name == "Digest" {
            continue;
        }
        if graph.has_fold_digest(id) {
            // Field-fold check: every field mutated by a `&mut self` method
            // must be referenced by fold_digest (directly or via an in-file
            // helper it calls).
            let folded = graph.fold_digest_idents(id);
            let mut mutated: BTreeMap<&str, usize> = BTreeMap::new();
            for m in graph.methods_of(id) {
                if m.name == "fold_digest" || !m.takes_mut_self {
                    continue;
                }
                for op in &m.body.field_ops {
                    let mutates = match &op.kind {
                        FieldOpKind::Assign | FieldOpKind::MutBorrow => true,
                        FieldOpKind::Call(m) => {
                            GROW_METHODS.contains(&m.as_str())
                                || SHRINK_METHODS.contains(&m.as_str())
                        }
                    };
                    if mutates {
                        mutated.entry(op.field.as_str()).or_insert(op.line);
                    }
                }
            }
            for field in &entry.def.fields {
                if mutated.contains_key(field.name.as_str()) && !folded.contains(&field.name) {
                    out.push((
                        entry.rec,
                        Finding {
                            rule: "digest-coverage",
                            line: field.line,
                            message: format!(
                                "field `{}` of `{name}` is mutated by &mut self methods but never folded in `{name}::fold_digest` — determinism drift here is invisible to the double-run harness",
                                field.name
                            ),
                        },
                    ));
                }
            }
        } else if graph.has_mut_state(id) && !reachable.contains(&id) {
            out.push((
                entry.rec,
                Finding {
                    rule: "digest-coverage",
                    line: entry.def.line,
                    message: format!(
                        "mutable-state struct `{name}` is not reachable from any fold_digest impl; fold it into a digest or allow-list it as reason=derived:/transient: state"
                    ),
                },
            ));
        }
    }
}

fn bounded_state(graph: &SymbolGraph<'_>, out: &mut Vec<(usize, Finding)>) {
    for (idx, entry) in graph.structs.iter().enumerate() {
        let id = StructId(idx);
        if !graph.in_digest_scope(id) {
            continue;
        }
        let evidence = graph.bound_evidence(id);
        for field in &entry.def.fields {
            let Some(outer) = outer_type(&field.ty) else {
                continue;
            };
            if !GROWABLE.contains(&outer.as_str()) {
                continue;
            }
            let mut grown = false;
            let mut shrunk = false;
            for m in graph.methods_of(id) {
                for op in &m.body.field_ops {
                    if op.field != field.name {
                        continue;
                    }
                    if let FieldOpKind::Call(call) = &op.kind {
                        grown |= GROW_METHODS.contains(&call.as_str());
                        shrunk |= SHRINK_METHODS.contains(&call.as_str());
                    }
                }
            }
            if grown && !shrunk && !evidence {
                out.push((
                    entry.rec,
                    Finding {
                        rule: "bounded-state",
                        line: field.line,
                        message: format!(
                            "`{}::{}` is a {outer} grown by &mut self methods with no cap const, eviction counter, or shrink path — long-lived state must be bounded",
                            entry.def.name, field.name
                        ),
                    },
                ));
            }
        }
    }
}

fn seed_dataflow(records: &[FileRecord], out: &mut Vec<(usize, Finding)>) {
    for (rec, r) in records.iter().enumerate() {
        if r.kind != TargetKind::Lib || !rules::DETERMINISM_CRATES.contains(&r.crate_ident.as_str())
        {
            continue;
        }
        // Lib fns outside #[cfg(test)]; SimRng's own constructors are the
        // API, not a use of it.
        let lib_fns: Vec<&FnDef> = r
            .syntax
            .fns
            .iter()
            .filter(|f| !r.line_in_test(f.line) && f.owner.as_deref() != Some("SimRng"))
            .collect();
        let takes_rng =
            |f: &FnDef| f.sig_idents.contains("SimRng") || f.takes_mut_self && f.owner.as_deref() == Some("SimRng");
        // A fn is seed-compliant when it takes a SimRng itself, or every
        // in-file caller chain reaches one.
        fn compliant(
            f: &FnDef,
            lib_fns: &[&FnDef],
            takes_rng: &dyn Fn(&FnDef) -> bool,
            stack: &mut Vec<String>,
        ) -> bool {
            if takes_rng(f) {
                return true;
            }
            if stack.contains(&f.name) {
                return false; // cycle with no SimRng anywhere on it
            }
            stack.push(f.name.clone());
            let callers: Vec<&&FnDef> = lib_fns
                .iter()
                .filter(|g| g.name != f.name && g.body.calls.iter().any(|c| c == &f.name))
                .collect();
            let ok = !callers.is_empty()
                && callers.iter().all(|g| compliant(g, lib_fns, takes_rng, stack));
            stack.pop();
            ok
        }
        for f in &lib_fns {
            if f.body.rng_seed_lines.is_empty() {
                continue;
            }
            let mut stack = Vec::new();
            if compliant(f, &lib_fns, &takes_rng, &mut stack) {
                continue;
            }
            for &line in &f.body.rng_seed_lines {
                out.push((
                    rec,
                    Finding {
                        rule: "seed-dataflow",
                        line,
                        message: format!(
                            "fn `{}` seeds a private SimRng but neither it nor its in-file callers take `SimRng`/`&mut SimRng` — thread the experiment's stream (or a fork of it) through the signature",
                            f.name
                        ),
                    },
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn record(file: &str, crate_ident: &str, kind: TargetKind, src: &str) -> FileRecord {
        FileRecord::new(file, crate_ident, kind, &lex(src))
    }

    fn rules_fired(findings: &[(usize, Finding)]) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> = findings.iter().map(|(_, f)| f.rule).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn uncovered_mutable_struct_fires_digest_coverage() {
        let src = "pub struct Tracker { count: u64 }\nimpl Tracker {\n    pub fn bump(&mut self) { self.count += 1; }\n}\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, src)];
        let f = graph_findings(&recs);
        assert_eq!(rules_fired(&f), vec!["digest-coverage"]);
        assert_eq!(f[0].1.line, 1);
    }

    #[test]
    fn fold_digest_or_containment_covers_structs() {
        let direct = "pub struct Covered { count: u64 }\nimpl Covered {\n    pub fn bump(&mut self) { self.count += 1; }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.count); }\n}\n";
        let contained = "pub struct Inner { v: u64 }\nimpl Inner { pub fn set(&mut self, v: u64) { self.v = v; } }\npub struct Outer { inner: Inner }\nimpl Outer {\n    pub fn touch(&mut self) { self.inner.set(1); }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.inner.v); }\n}\n";
        for src in [direct, contained] {
            let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, src)];
            let f = graph_findings(&recs);
            assert!(
                !f.iter().any(|(_, f)| f.rule == "digest-coverage"),
                "{:?}",
                f.iter().map(|(_, f)| f.message.clone()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn containment_reaches_across_files() {
        let inner = "pub struct Child { v: u64 }\nimpl Child { pub fn set(&mut self, v: u64) { self.v = v; } }\n";
        let outer = "pub struct Parent { child: Child }\nimpl Parent { pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.child.v); } }\n";
        let recs = vec![
            record("inner.rs", "canal_sim", TargetKind::Lib, inner),
            record("outer.rs", "canal_sim", TargetKind::Lib, outer),
        ];
        let f = graph_findings(&recs);
        assert!(!f.iter().any(|(_, f)| f.rule == "digest-coverage"));
    }

    #[test]
    fn mutated_field_missing_from_fold_digest_fires() {
        // Models the PR-5 `last_good` bug: state advanced in &mut self
        // methods but absent from the digest fold.
        let src = "pub struct Ctl { version: u64, last_good: u64 }\nimpl Ctl {\n    pub fn promote(&mut self) { self.version += 1; self.last_good = self.version; }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.version); }\n}\n";
        let recs = vec![record("a.rs", "canal_control", TargetKind::Lib, src)];
        let f = graph_findings(&recs);
        let dc: Vec<_> = f.iter().filter(|(_, f)| f.rule == "digest-coverage").collect();
        assert_eq!(dc.len(), 1, "{dc:?}");
        assert!(dc[0].1.message.contains("last_good"));
        assert_eq!(dc[0].1.line, 1); // field line of last_good
    }

    #[test]
    fn fold_digest_helpers_count_as_coverage() {
        let src = "pub struct Ctl { version: u64 }\nimpl Ctl {\n    pub fn promote(&mut self) { self.version += 1; }\n    fn fold_inner(&self, d: &mut Digest) { d.write_u64(self.version); }\n    pub fn fold_digest(&self, d: &mut Digest) { self.fold_inner(d); }\n}\n";
        let recs = vec![record("a.rs", "canal_control", TargetKind::Lib, src)];
        let f = graph_findings(&recs);
        assert!(!f.iter().any(|(_, f)| f.rule == "digest-coverage"), "{f:?}");
    }

    #[test]
    fn unbounded_growth_fires_bounded_state() {
        let src = "pub struct Log { entries: Vec<u64> }\nimpl Log {\n    pub fn add(&mut self, v: u64) { self.entries.push(v); }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.entries.len() as u64); }\n}\n";
        let recs = vec![record("a.rs", "canal_telemetry", TargetKind::Lib, src)];
        let f = graph_findings(&recs);
        assert_eq!(rules_fired(&f), vec!["bounded-state"]);
    }

    #[test]
    fn caps_counters_and_shrink_paths_bound_state() {
        let cap_const = "pub struct Log { entries: Vec<u64> }\nimpl Log {\n    const MAX_ENTRIES: usize = 64;\n    pub fn add(&mut self, v: u64) { self.entries.push(v); }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(0); }\n}\n";
        let evict_field = "pub struct Log { entries: Vec<u64>, evicted: u64 }\nimpl Log {\n    pub fn add(&mut self, v: u64) { self.entries.push(v); }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(self.evicted); }\n}\n";
        let shrink = "pub struct Log { entries: VecDeque<u64> }\nimpl Log {\n    pub fn add(&mut self, v: u64) { self.entries.push_back(v); self.entries.pop_front(); }\n    pub fn fold_digest(&self, d: &mut Digest) { d.write_u64(0); }\n}\n";
        for src in [cap_const, evict_field, shrink] {
            let recs = vec![record("a.rs", "canal_telemetry", TargetKind::Lib, src)];
            let f = graph_findings(&recs);
            assert!(
                !f.iter().any(|(_, f)| f.rule == "bounded-state"),
                "{:?}",
                f.iter().map(|(_, f)| f.message.clone()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn seed_dataflow_requires_simrng_in_signature_or_callers() {
        let bad = "pub fn plan() -> u64 {\n    let mut rng = SimRng::seed(7);\n    rng.next()\n}\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, bad)];
        assert_eq!(rules_fired(&graph_findings(&recs)), vec!["seed-dataflow"]);

        let direct = "pub fn plan(rng: &mut SimRng) -> u64 {\n    let mut sub = SimRng::seed(rng.next());\n    sub.next()\n}\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, direct)];
        assert!(graph_findings(&recs).is_empty());

        let transitive = "fn derive(salt: u64) -> SimRng {\n    SimRng::seed(salt)\n}\npub fn plan(rng: &mut SimRng) -> u64 {\n    derive(rng.next()).next()\n}\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, transitive)];
        assert!(graph_findings(&recs).is_empty());
    }

    #[test]
    fn seed_dataflow_spares_tests_bins_and_simrng_itself() {
        let src = "pub fn plan() -> u64 { let mut r = SimRng::seed(7); r.next() }\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Bin, src)];
        assert!(graph_findings(&recs).is_empty());
        let recs = vec![record("a.rs", "canal_bench", TargetKind::Lib, src)];
        assert!(graph_findings(&recs).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { let r = SimRng::seed(7); }\n}\n";
        let recs = vec![record("a.rs", "canal_sim", TargetKind::Lib, in_test)];
        assert!(graph_findings(&recs).is_empty());
        let fork = "impl SimRng {\n    pub fn fork(&mut self, salt: u64) -> SimRng { SimRng::seed(self.next() ^ salt) }\n}\n";
        let recs = vec![record("rng.rs", "canal_sim", TargetKind::Lib, fork)];
        assert!(graph_findings(&recs).is_empty());
    }
}
