//! Rule definitions: what is forbidden where.
//!
//! Three families (see DESIGN.md "Determinism contract & lint rules"):
//!
//! * **determinism** — simulation-facing crates must not read wall clocks,
//!   ambient randomness, or iterate unordered maps; all of those make a
//!   seeded run irreproducible.
//! * **layering** — the crate-dependency DAG is declared here and checked
//!   against both `use canal_*` statements and `Cargo.toml`; stdout belongs
//!   to `canal-bench` and binaries only.
//! * **panic policy** — library code must not `unwrap`/`expect`/`panic!`
//!   outside `#[cfg(test)]`; deliberate exceptions carry a
//!   `// lint:allow(panic) reason=...` annotation.
//! * **state discipline** (graph-aware, see [`crate::graph`]) —
//!   `digest-coverage`, `bounded-state` and `seed-dataflow` run over the
//!   parsed symbol graph rather than per-line patterns; their scope
//!   constants ([`DIGEST_CRATES`]) and docs ([`RULE_DOCS`]) live here.

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Crate library source (`src/`, excluding `src/bin/` and `main.rs`).
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`).
    Bin,
    /// `examples/`.
    Example,
    /// Integration tests (`tests/`).
    Test,
    /// `benches/`.
    Bench,
}

/// Crates whose long-lived mutable state participates in the determinism
/// digest: the `digest-coverage` and `bounded-state` rules police struct
/// state here. A subset of [`DETERMINISM_CRATES`] — the facade and leaf
/// protocol crates hold no cross-event state of their own.
pub const DIGEST_CRATES: &[&str] = &[
    "canal_sim",
    "canal_control",
    "canal_gateway",
    "canal_telemetry",
    "canal_policy",
];

/// Crates whose behaviour feeds the deterministic simulator. Wall clocks,
/// ambient RNG and unordered-map iteration are forbidden here.
pub const DETERMINISM_CRATES: &[&str] = &[
    "canal_sim",
    "canal_net",
    "canal_http",
    "canal_crypto",
    "canal_cluster",
    "canal_policy",
    "canal_mesh",
    "canal_telemetry",
    "canal_gateway",
    "canal_control",
    "canal_workload",
    "canal", // the root facade/testbed
];

/// The declared internal dependency DAG: `(crate, allowed internal deps)`.
/// `canal-lint` depends on nothing; `canal-sim` and `bytes` are the only
/// leaves everyone may sit on. Additions here are an architecture decision —
/// keep the graph acyclic and shallow.
pub const LAYERING_DAG: &[(&str, &[&str])] = &[
    ("bytes", &[]),
    ("canal_sim", &[]),
    ("canal_lint", &[]),
    ("canal_net", &["canal_sim", "bytes"]),
    ("canal_http", &["bytes"]),
    ("canal_crypto", &["canal_sim", "canal_net", "bytes"]),
    ("canal_cluster", &["canal_sim", "canal_net"]),
    // The policy plane compiles specs over net-layer addresses/identities;
    // it must not know about HTTP types — both datapaths adapt to it.
    ("canal_policy", &["canal_sim", "canal_net"]),
    ("canal_workload", &["canal_sim"]),
    ("canal_telemetry", &["canal_sim", "canal_net"]),
    (
        "canal_gateway",
        &[
            "canal_sim",
            "canal_net",
            "canal_cluster",
            // Fail-static ActivePolicy: the gateway L7 path is one of the
            // two policy enforcement points.
            "canal_policy",
            // The gateway terminates mTLS for its tenants (§4.1.3), so the
            // cert-bundle fail-static pair and the typed handshake-fault
            // bridge need the crypto lifecycle types.
            "canal_crypto",
            "canal_telemetry",
            "bytes",
        ],
    ),
    (
        "canal_mesh",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            // The node L4 filter and the per-route authz check both
            // evaluate the compiled policy tables.
            "canal_policy",
            "bytes",
        ],
    ),
    (
        "canal_control",
        &[
            "canal_sim",
            "canal_net",
            "canal_cluster",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_workload",
        ],
    ),
    (
        "canal_bench",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            "canal_policy",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_control",
            "canal_workload",
            "bytes",
        ],
    ),
    (
        "canal",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            "canal_policy",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_control",
            "canal_workload",
            "bytes",
        ],
    ),
];

/// Internal deps additionally allowed in test targets (`tests/` dirs and
/// `#[cfg(test)]`): the root crate's test suite drives the linter itself.
pub const TEST_ONLY_DEPS: &[(&str, &[&str])] = &[("canal", &["canal_lint"])];

/// All rule ids, used to validate suppression annotations.
pub const RULE_IDS: &[&str] = &[
    "wallclock",
    "ambient-rng",
    "unordered-map",
    "layering",
    "stdout",
    "panic",
    "suppression",
    "global-state",
    "digest-coverage",
    "bounded-state",
    "seed-dataflow",
];

/// Documentation for one rule, served by `canal-lint --explain <rule>`.
pub struct RuleDoc {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary (README table material).
    pub summary: &'static str,
    /// Why the rule exists — which paper/system invariant it protects.
    pub rationale: &'static str,
    /// How to annotate a deliberate exception.
    pub suppression: &'static str,
}

const SUPPRESS_PLAIN: &str =
    "// lint:allow(<rule>) reason=<why> on the offending line or the line above";

/// Rationale and suppression syntax per rule, in [`RULE_IDS`] order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "wallclock",
        summary: "no Instant::now/SystemTime::now in simulation-facing code",
        rationale: "Wall-clock reads make a seeded run irreproducible: the same seed must \
                    yield the same event timeline, so all time flows from canal_sim::SimTime \
                    virtual time. Only canal-bench's microbenchmarks measure the real clock.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "ambient-rng",
        summary: "no thread_rng/OsRng/from_entropy ambient randomness",
        rationale: "All randomness must derive from the experiment's single seed through \
                    canal_sim::SimRng; ambient entropy desynchronizes double runs and makes \
                    chaos/overload results unrepeatable.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "unordered-map",
        summary: "no HashMap/HashSet in deterministic library code",
        rationale: "Hash-ordered iteration depends on the hasher's random state, so any fold \
                    over it diverges between runs. BTreeMap/BTreeSet iterate in key order, \
                    which is what the digest discipline requires.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "layering",
        summary: "crate references and manifest deps must follow the declared DAG",
        rationale: "The dependency DAG (canal_lint::rules::LAYERING_DAG) is the architecture: \
                    gateway code must not reach into control, leaf crates stay leaves. The rule \
                    checks the parsed use-graph (aliases resolved) and every Cargo.toml.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "stdout",
        summary: "only canal-bench and binaries may print to stdout",
        rationale: "Library crates communicate through return values and metrics; stray prints \
                    corrupt experiment reports that are parsed from stdout and hide real output.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "panic",
        summary: "no unwrap/expect/panic! in library code outside tests",
        rationale: "A panic in mesh code is a blast-radius event: one tenant's bad input must \
                    not take down a shared gateway. Library code returns Result and lets the \
                    caller decide; tests may assert freely.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "suppression",
        summary: "lint:allow hygiene: known rule, reason given, actually used",
        rationale: "Exceptions must not rot: an allow with no reason, an unknown rule id, a \
                    digest-coverage allow without a derived:/transient: type, or an allow that \
                    no longer suppresses anything is itself a violation.",
        suppression: "not suppressible — fix the annotation it complains about",
    },
    RuleDoc {
        id: "global-state",
        summary: "no static mut/thread_local!/OnceLock ambient global state",
        rationale: "Global mutable state survives across simulation runs in one process and \
                    escapes both the digest fold and the per-tenant isolation story: two \
                    back-to-back seeded runs would see different initial state.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "digest-coverage",
        summary: "mutable structs in digest crates must be reachable from a fold_digest",
        rationale: "The double-run harness only proves determinism for state that reaches a \
                    digest. A struct mutated by &mut self methods but unreachable from every \
                    fold_digest impl — or a field mutated but missing from its own fold \
                    (the PR-5 last_good bug) — can silently diverge between runs.",
        suppression: "// lint:allow(digest-coverage) reason=derived: <why> (recomputable from \
                      folded state) or reason=transient: <why> (scratch state, reset per step)",
    },
    RuleDoc {
        id: "bounded-state",
        summary: "growable collection fields on long-lived structs must be bounded",
        rationale: "A Vec/VecDeque/BTreeMap that &mut self methods grow without a cap const, \
                    eviction counter, or shrink path is an OOM waiting for a million-pod run; \
                    bounded rings with eviction counters keep memory flat and observable.",
        suppression: SUPPRESS_PLAIN,
    },
    RuleDoc {
        id: "seed-dataflow",
        summary: "fns that seed a SimRng must take one from their callers",
        rationale: "Fault plans, jitter, sampling and wave selection must all be steered by \
                    the one experiment seed. A fn body calling SimRng::seed must receive a \
                    SimRng in its signature — directly or through the in-file callers that \
                    reach it — so private streams can only be forks of the caller's.",
        suppression: SUPPRESS_PLAIN,
    },
];

/// Look up the doc for a rule id.
pub fn rule_doc(id: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id == id)
}

/// One textual pattern a rule searches for.
pub struct Pattern {
    /// Substring to find in masked code.
    pub needle: &'static str,
    /// Require a non-identifier character (or line start) before the match.
    pub boundary_before: bool,
    /// Require a non-identifier character (or line end) after the match.
    pub boundary_after: bool,
}

const fn tok(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: true,
        boundary_after: false,
    }
}

const fn word(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: true,
        boundary_after: true,
    }
}

const fn method(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: false,
        boundary_after: false,
    }
}

/// Wall-clock reads: virtual time lives in `canal_sim::SimTime`.
pub const WALLCLOCK_PATTERNS: &[Pattern] = &[
    tok("Instant::now"),
    tok("SystemTime::now"),
    tok("std::time::Instant"),
    tok("std::time::SystemTime"),
];

/// Ambient (unseeded) randomness: all randomness flows through `SimRng`.
pub const AMBIENT_RNG_PATTERNS: &[Pattern] = &[
    tok("thread_rng"),
    tok("rand::random"),
    tok("from_entropy"),
    word("OsRng"),
    tok("getrandom"),
];

/// Unordered collections whose iteration order depends on the hasher.
pub const UNORDERED_MAP_PATTERNS: &[Pattern] = &[word("HashMap"), word("HashSet")];

/// Stdout belongs to `canal-bench` and binary targets; library crates
/// communicate through return values and metrics.
pub const STDOUT_PATTERNS: &[Pattern] = &[tok("println!"), tok("print!"), tok("dbg!")];

/// Ambient global state: survives across runs in one process, escapes the
/// digest fold, and undermines per-tenant isolation reasoning.
pub const GLOBAL_STATE_PATTERNS: &[Pattern] = &[
    tok("static mut"),
    tok("thread_local!"),
    word("OnceLock"),
    word("OnceCell"),
    word("LazyLock"),
    tok("lazy_static!"),
];

/// Panicking constructs forbidden in library code outside `#[cfg(test)]`.
pub const PANIC_PATTERNS: &[Pattern] = &[
    method(".unwrap()"),
    method(".unwrap_err()"),
    method(".expect("),
    method(".expect_err("),
    tok("panic!("),
    tok("unreachable!("),
    tok("todo!("),
    tok("unimplemented!("),
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find every occurrence of `pat` in `line` honouring boundary flags.
/// Returns byte offsets.
pub fn find_pattern(line: &str, pat: &Pattern) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(pat.needle) {
        let at = from + rel;
        let before_ok = !pat.boundary_before
            || line[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let end = at + pat.needle.len();
        let after_ok =
            !pat.boundary_after || line[end..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + pat.needle.len();
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_reject_substrings_of_identifiers() {
        // `eprintln!` must not trip the `print!`/`println!` patterns.
        assert!(find_pattern("eprintln!(\"x\")", &tok("println!")).is_empty());
        assert!(find_pattern("eprintln!(\"x\")", &tok("print!")).is_empty());
        assert_eq!(find_pattern("println!(\"x\")", &tok("println!")), vec![0]);
        // `print!` is not found inside `println!`.
        assert!(find_pattern("println!(\"x\")", &tok("print!")).is_empty());
    }

    #[test]
    fn word_boundaries_both_sides() {
        assert!(find_pattern("MyHashMapLike", &word("HashMap")).is_empty());
        assert_eq!(find_pattern("use x::HashMap;", &word("HashMap")).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(find_pattern("v.unwrap_or(0)", &method(".unwrap()")).is_empty());
        assert_eq!(find_pattern("v.unwrap()", &method(".unwrap()")).len(), 1);
    }

    #[test]
    fn every_rule_id_has_a_doc_and_vice_versa() {
        assert_eq!(RULE_IDS.len(), RULE_DOCS.len());
        for (id, doc) in RULE_IDS.iter().zip(RULE_DOCS) {
            assert_eq!(*id, doc.id, "RULE_DOCS must stay in RULE_IDS order");
            assert!(!doc.summary.is_empty() && !doc.rationale.is_empty());
        }
        assert!(rule_doc("digest-coverage").is_some());
        assert!(rule_doc("fault-seed").is_none(), "glob heuristic removed");
    }

    #[test]
    fn digest_crates_are_determinism_crates() {
        for c in DIGEST_CRATES {
            assert!(DETERMINISM_CRATES.contains(c), "{c}");
        }
    }

    #[test]
    fn dag_is_acyclic_and_closed() {
        // Every allowed dep must itself be declared, and a DFS from each
        // node must never revisit it (acyclicity).
        fn deps_of(name: &str) -> &'static [&'static str] {
            LAYERING_DAG
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .unwrap_or(&[])
        }
        for (name, deps) in LAYERING_DAG {
            for d in *deps {
                assert!(
                    LAYERING_DAG.iter().any(|(n, _)| n == d),
                    "{name}: dep {d} not declared in DAG"
                );
            }
            let mut stack: Vec<&str> = deps_of(name).to_vec();
            while let Some(d) = stack.pop() {
                assert_ne!(d, *name, "cycle through {name}");
                stack.extend_from_slice(deps_of(d));
            }
        }
    }
}
