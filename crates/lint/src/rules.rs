//! Rule definitions: what is forbidden where.
//!
//! Three families (see DESIGN.md "Determinism contract & lint rules"):
//!
//! * **determinism** — simulation-facing crates must not read wall clocks,
//!   ambient randomness, or iterate unordered maps; all of those make a
//!   seeded run irreproducible.
//! * **layering** — the crate-dependency DAG is declared here and checked
//!   against both `use canal_*` statements and `Cargo.toml`; stdout belongs
//!   to `canal-bench` and binaries only.
//! * **panic policy** — library code must not `unwrap`/`expect`/`panic!`
//!   outside `#[cfg(test)]`; deliberate exceptions carry a
//!   `// lint:allow(panic) reason=...` annotation.

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Crate library source (`src/`, excluding `src/bin/` and `main.rs`).
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`).
    Bin,
    /// `examples/`.
    Example,
    /// Integration tests (`tests/`).
    Test,
    /// `benches/`.
    Bench,
}

/// Crates whose behaviour feeds the deterministic simulator. Wall clocks,
/// ambient RNG and unordered-map iteration are forbidden here.
pub const DETERMINISM_CRATES: &[&str] = &[
    "canal_sim",
    "canal_net",
    "canal_http",
    "canal_crypto",
    "canal_cluster",
    "canal_mesh",
    "canal_telemetry",
    "canal_gateway",
    "canal_control",
    "canal_workload",
    "canal", // the root facade/testbed
];

/// The declared internal dependency DAG: `(crate, allowed internal deps)`.
/// `canal-lint` depends on nothing; `canal-sim` and `bytes` are the only
/// leaves everyone may sit on. Additions here are an architecture decision —
/// keep the graph acyclic and shallow.
pub const LAYERING_DAG: &[(&str, &[&str])] = &[
    ("bytes", &[]),
    ("canal_sim", &[]),
    ("canal_lint", &[]),
    ("canal_net", &["canal_sim", "bytes"]),
    ("canal_http", &["bytes"]),
    ("canal_crypto", &["canal_sim", "canal_net", "bytes"]),
    ("canal_cluster", &["canal_sim", "canal_net"]),
    ("canal_workload", &["canal_sim"]),
    ("canal_telemetry", &["canal_sim", "canal_net"]),
    (
        "canal_gateway",
        &["canal_sim", "canal_net", "canal_cluster", "canal_telemetry", "bytes"],
    ),
    (
        "canal_mesh",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            "bytes",
        ],
    ),
    (
        "canal_control",
        &[
            "canal_sim",
            "canal_net",
            "canal_cluster",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_workload",
        ],
    ),
    (
        "canal_bench",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_control",
            "canal_workload",
            "bytes",
        ],
    ),
    (
        "canal",
        &[
            "canal_sim",
            "canal_net",
            "canal_http",
            "canal_crypto",
            "canal_cluster",
            "canal_gateway",
            "canal_mesh",
            "canal_telemetry",
            "canal_control",
            "canal_workload",
            "bytes",
        ],
    ),
];

/// Internal deps additionally allowed in test targets (`tests/` dirs and
/// `#[cfg(test)]`): the root crate's test suite drives the linter itself.
pub const TEST_ONLY_DEPS: &[(&str, &[&str])] = &[("canal", &["canal_lint"])];

/// All rule ids, used to validate suppression annotations.
pub const RULE_IDS: &[&str] = &[
    "wallclock",
    "ambient-rng",
    "unordered-map",
    "layering",
    "stdout",
    "panic",
    "suppression",
    "fault-seed",
];

/// One textual pattern a rule searches for.
pub struct Pattern {
    /// Substring to find in masked code.
    pub needle: &'static str,
    /// Require a non-identifier character (or line start) before the match.
    pub boundary_before: bool,
    /// Require a non-identifier character (or line end) after the match.
    pub boundary_after: bool,
}

const fn tok(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: true,
        boundary_after: false,
    }
}

const fn word(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: true,
        boundary_after: true,
    }
}

const fn method(needle: &'static str) -> Pattern {
    Pattern {
        needle,
        boundary_before: false,
        boundary_after: false,
    }
}

/// Wall-clock reads: virtual time lives in `canal_sim::SimTime`.
pub const WALLCLOCK_PATTERNS: &[Pattern] = &[
    tok("Instant::now"),
    tok("SystemTime::now"),
    tok("std::time::Instant"),
    tok("std::time::SystemTime"),
];

/// Ambient (unseeded) randomness: all randomness flows through `SimRng`.
pub const AMBIENT_RNG_PATTERNS: &[Pattern] = &[
    tok("thread_rng"),
    tok("rand::random"),
    tok("from_entropy"),
    word("OsRng"),
    tok("getrandom"),
];

/// Unordered collections whose iteration order depends on the hasher.
pub const UNORDERED_MAP_PATTERNS: &[Pattern] = &[word("HashMap"), word("HashSet")];

/// Stdout belongs to `canal-bench` and binary targets; library crates
/// communicate through return values and metrics.
pub const STDOUT_PATTERNS: &[Pattern] = &[tok("println!"), tok("print!"), tok("dbg!")];

/// Faults-facing library code (`fault*`/`resilience*` modules in
/// determinism crates) must take its `SimRng`/`SimTime` from the caller,
/// never seed a stream of its own — otherwise a fault plan stops being
/// steered by the experiment's single seed and chaos runs drift apart.
pub const FAULT_SEED_PATTERNS: &[Pattern] = &[tok("SimRng::seed")];

/// Panicking constructs forbidden in library code outside `#[cfg(test)]`.
pub const PANIC_PATTERNS: &[Pattern] = &[
    method(".unwrap()"),
    method(".unwrap_err()"),
    method(".expect("),
    method(".expect_err("),
    tok("panic!("),
    tok("unreachable!("),
    tok("todo!("),
    tok("unimplemented!("),
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Find every occurrence of `pat` in `line` honouring boundary flags.
/// Returns byte offsets.
pub fn find_pattern(line: &str, pat: &Pattern) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(pat.needle) {
        let at = from + rel;
        let before_ok = !pat.boundary_before
            || line[..at].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let end = at + pat.needle.len();
        let after_ok =
            !pat.boundary_after || line[end..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + pat.needle.len();
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_reject_substrings_of_identifiers() {
        // `eprintln!` must not trip the `print!`/`println!` patterns.
        assert!(find_pattern("eprintln!(\"x\")", &tok("println!")).is_empty());
        assert!(find_pattern("eprintln!(\"x\")", &tok("print!")).is_empty());
        assert_eq!(find_pattern("println!(\"x\")", &tok("println!")), vec![0]);
        // `print!` is not found inside `println!`.
        assert!(find_pattern("println!(\"x\")", &tok("print!")).is_empty());
    }

    #[test]
    fn word_boundaries_both_sides() {
        assert!(find_pattern("MyHashMapLike", &word("HashMap")).is_empty());
        assert_eq!(find_pattern("use x::HashMap;", &word("HashMap")).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(find_pattern("v.unwrap_or(0)", &method(".unwrap()")).is_empty());
        assert_eq!(find_pattern("v.unwrap()", &method(".unwrap()")).len(), 1);
    }

    #[test]
    fn dag_is_acyclic_and_closed() {
        // Every allowed dep must itself be declared, and a DFS from each
        // node must never revisit it (acyclicity).
        fn deps_of(name: &str) -> &'static [&'static str] {
            LAYERING_DAG
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .unwrap_or(&[])
        }
        for (name, deps) in LAYERING_DAG {
            for d in *deps {
                assert!(
                    LAYERING_DAG.iter().any(|(n, _)| n == d),
                    "{name}: dep {d} not declared in DAG"
                );
            }
            let mut stack: Vec<&str> = deps_of(name).to_vec();
            while let Some(d) = stack.pop() {
                assert_ne!(d, *name, "cycle through {name}");
                stack.extend_from_slice(deps_of(d));
            }
        }
    }
}
