//! `cargo run -p canal-lint` — scan the workspace (or, with
//! `--fixtures <dir>`, a fixture directory) and print a human report.
//! Exits nonzero when any rule fires.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let result = match args.next().as_deref() {
        None => canal_lint::scan_workspace(&canal_lint::workspace_root()),
        Some("--fixtures") => match args.next() {
            Some(dir) => canal_lint::scan_fixture_dir(&PathBuf::from(dir)),
            None => {
                eprintln!("usage: canal-lint [--fixtures <dir>]");
                return ExitCode::from(2);
            }
        },
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: canal-lint [--fixtures <dir>]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(report) => {
            print!("{}", report.render());
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("canal-lint: i/o error: {err}");
            ExitCode::from(2)
        }
    }
}
