//! `cargo run -p canal-lint` — scan the workspace (or, with
//! `--fixtures <dir>`, a fixture directory) and print a report.
//! `--json` switches the report to the machine-readable form;
//! `--explain [<rule>]` prints rule rationale and suppression syntax.
//! Exits nonzero when any rule fires.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: canal-lint [--json] [--fixtures <dir>] | canal-lint --explain [<rule>]";

fn explain(rule: Option<&str>) -> ExitCode {
    match rule {
        None => {
            for doc in canal_lint::rules::RULE_DOCS {
                println!("{:<16} {}", doc.id, doc.summary);
            }
            println!("\nrun `canal-lint --explain <rule>` for rationale and suppression syntax");
            ExitCode::SUCCESS
        }
        Some(id) => match canal_lint::rules::rule_doc(id) {
            Some(doc) => {
                println!("rule: {}", doc.id);
                println!("summary: {}", doc.summary);
                println!("rationale: {}", doc.rationale);
                println!("suppression: {}", doc.suppression);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{id}`; valid rules:");
                for known in canal_lint::rules::RULE_IDS {
                    eprintln!("  {known}");
                }
                ExitCode::from(2)
            }
        },
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => match args.next() {
                Some(dir) => fixtures = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--explain" => return explain(args.next().as_deref()),
            other => {
                eprintln!("unknown argument `{other}`; {USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let result = match fixtures {
        Some(dir) => canal_lint::scan_fixture_dir(&dir),
        None => canal_lint::scan_workspace(&canal_lint::workspace_root()),
    };
    match result {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("canal-lint: i/o error: {err}");
            ExitCode::from(2)
        }
    }
}
