//! A small line lexer for Rust sources.
//!
//! Rules must not fire on words inside comments, doc comments or string
//! literals ("never call `Instant::now` here" in a doc comment is advice,
//! not a violation). [`mask_source`] rewrites a file so that the contents
//! of every comment and string literal become spaces while line/column
//! positions of real code are preserved; rule matching then runs over the
//! masked text. The lexer also extracts `lint:allow` suppression comments
//! and computes which lines sit inside `#[cfg(test)]` blocks.

/// One extracted suppression annotation: `// lint:allow(rule) reason=...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment appears on.
    pub line: usize,
    /// Rule id inside the parentheses.
    pub rule: String,
    /// Free-text justification after `reason=` (may be empty — the
    /// suppression-hygiene rule rejects that).
    pub reason: String,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// Source with comment/string contents blanked, split into lines.
    pub code_lines: Vec<String>,
    /// All `lint:allow` annotations found in comments.
    pub suppressions: Vec<Suppression>,
    /// `in_test[i]` is true when 0-based line `i` is inside a
    /// `#[cfg(test)]` item (including the attribute line itself).
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment,
    Str,
    RawStr,
    Char,
}

/// Blank out comments and string/char literal *contents*, keeping newlines
/// (and therefore line numbers) intact. Returns the masked text and the raw
/// comment text per line (for suppression extraction).
fn mask(source: &str) -> (String, Vec<(usize, String)>) {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut cur_comment_line = 0usize;
    let mut line = 1usize;
    let mut state = State::Code;
    let mut block_depth = 0usize;
    let mut raw_hashes = 0usize;
    let mut i = 0usize;

    macro_rules! keep {
        ($c:expr) => {
            out.push($c)
        };
    }
    macro_rules! blank {
        ($c:expr) => {
            out.push(if $c == '\n' { '\n' } else { ' ' })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur_comment.clear();
                    cur_comment_line = line;
                    blank!(c);
                    blank!('/');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment;
                    block_depth = 1;
                    cur_comment.clear();
                    cur_comment_line = line;
                    blank!(c);
                    blank!('*');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    keep!(c);
                    i += 1;
                    continue;
                }
                // Raw strings r"..." / r#"..."# (and br variants; the `b`
                // was already copied as code, which is fine).
                if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        keep!('r');
                        for _ in 0..hashes {
                            keep!('#');
                        }
                        keep!('"');
                        raw_hashes = hashes;
                        state = State::RawStr;
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish char literal from lifetime: a char literal
                    // closes with ' after one (possibly escaped) character.
                    let is_char = match bytes.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        keep!(c);
                        i += 1;
                        continue;
                    }
                }
                keep!(c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    comments.push((cur_comment_line, std::mem::take(&mut cur_comment)));
                    state = State::Code;
                    keep!('\n');
                } else {
                    cur_comment.push(c);
                    blank!(c);
                }
                i += 1;
            }
            State::BlockComment => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    block_depth += 1;
                    blank!(c);
                    blank!('*');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    block_depth -= 1;
                    blank!(c);
                    blank!('/');
                    i += 2;
                    if block_depth == 0 {
                        comments.push((cur_comment_line, std::mem::take(&mut cur_comment)));
                        state = State::Code;
                    }
                    continue;
                }
                cur_comment.push(c);
                blank!(c);
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    blank!(c);
                    if let Some(&n) = bytes.get(i + 1) {
                        if n == '\n' {
                            line += 1;
                        }
                        blank!(n);
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    keep!(c);
                    state = State::Code;
                } else {
                    blank!(c);
                }
                i += 1;
            }
            State::RawStr => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while hashes < raw_hashes && bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if hashes == raw_hashes {
                        keep!('"');
                        for _ in 0..raw_hashes {
                            keep!('#');
                        }
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                blank!(c);
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    blank!(c);
                    if let Some(&n) = bytes.get(i + 1) {
                        blank!(n);
                    }
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    keep!(c);
                    state = State::Code;
                } else {
                    blank!(c);
                }
                i += 1;
            }
        }
    }
    // Flush a comment the file ends inside (no trailing newline after a
    // line comment; rustc rejects an unterminated block comment but the
    // lexer must still not lose the body it saw).
    if matches!(state, State::LineComment | State::BlockComment) {
        comments.push((cur_comment_line, cur_comment));
    }
    (out, comments)
}

/// Whether a collected comment body marks a *doc* comment. Matches rustc's
/// definition: `///` and `/**` open doc comments but `////` and `/***` are
/// ordinary comments again, and `//!`/`/*!` are inner doc comments. The
/// body we get has the opening `//` or `/*` already stripped.
fn is_doc_comment(body: &str) -> bool {
    let mut chars = body.chars();
    match chars.next() {
        Some('!') => true,
        Some('/') => chars.next() != Some('/'),
        Some('*') => chars.next() != Some('*'),
        _ => false,
    }
}

/// Parse `lint:allow(rule) reason=...` out of a comment body. Doc comments
/// (`///`, `//!`, `/** */`, `/*! */`) are documentation, not directives:
/// prose about the annotation syntax must not register as a suppression.
fn parse_suppression(line: usize, comment: &str) -> Option<Suppression> {
    if is_doc_comment(comment) {
        return None;
    }
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = &rest[close + 1..];
    let reason = tail
        .find("reason=")
        .map(|r| tail[r + "reason=".len()..].trim().to_string())
        .unwrap_or_default();
    Some(Suppression { line, rule, reason })
}

/// Mark every line belonging to an item annotated `#[cfg(test)]` (the
/// conventional `mod tests` block, a test-only fn, ...). Works on masked
/// text: find the attribute, then brace-match the item that follows.
fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut i = 0usize;
    while i < code_lines.len() {
        let trimmed = code_lines[i].trim_start();
        let is_test_attr = trimmed.starts_with("#[cfg(test)]")
            || trimmed.starts_with("#[cfg(all(test")
            || trimmed.starts_with("#[cfg(any(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Scan forward to the item's opening brace, then to its close.
        in_test[i] = true;
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        'outer: while j < code_lines.len() {
            in_test[j] = true;
            for ch in code_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // An attribute that decorates a braceless item
                    // (`#[cfg(test)] use x;`) ends at the semicolon.
                    ';' if !opened && depth == 0 => break 'outer,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Lex one source file into masked code lines, suppressions and test
/// region flags.
pub fn lex(source: &str) -> LexedFile {
    let (masked, comments) = mask(source);
    let code_lines: Vec<String> = masked.lines().map(|l| l.to_string()).collect();
    let suppressions = comments
        .iter()
        .filter_map(|(line, body)| parse_suppression(*line, body))
        .collect();
    let in_test = test_regions(&code_lines);
    LexedFile {
        code_lines,
        suppressions,
        in_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "Instant::now"; // Instant::now in comment
let y = 1; /* HashMap */ let z = 2;
"#;
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("Instant"));
        assert!(lexed.code_lines[0].contains("let x ="));
        assert!(!lexed.code_lines[1].contains("HashMap"));
        assert!(lexed.code_lines[1].contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"panic!(x)\"#; let c = '\"'; let l: &'static str = \"unwrap()\";";
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("panic!"));
        assert!(!lexed.code_lines[0].contains("unwrap"));
        assert!(lexed.code_lines[0].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* nested */ still comment */ let real = 1;";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains("let real = 1;"));
        assert!(!lexed.code_lines[0].contains("nested"));
    }

    #[test]
    fn suppressions_are_extracted() {
        let src = "foo(); // lint:allow(panic) reason=startup config is mandatory\n";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.line, 1);
        assert_eq!(s.rule, "panic");
        assert_eq!(s.reason, "startup config is mandatory");
    }

    #[test]
    fn suppression_without_reason_has_empty_reason() {
        let lexed = lex("bar(); // lint:allow(stdout)\n");
        assert_eq!(lexed.suppressions[0].reason, "");
    }

    #[test]
    fn doc_comments_never_register_suppressions() {
        let src = "/// Write `// lint:allow(panic) reason=x` to suppress.\n//! Also lint:allow(stdout) here.\n/** and lint:allow(panic) reason=y */\nfn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.suppressions.is_empty(), "{:?}", lexed.suppressions);
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.in_test,
            vec![false, true, true, true, true, false],
            "{:?}",
            lexed.in_test
        );
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // unwrap()\nlet y = x.unwrap();";
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("unwrap"));
        assert!(lexed.code_lines[1].contains(".unwrap()"));
    }

    #[test]
    fn multi_hash_raw_strings_ignore_shorter_terminators() {
        // The embedded "# must not close an r##"..."## string.
        let src = "let s = r##\"panic!() \"# unwrap()\"##; let ok = after();";
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("panic"));
        assert!(!lexed.code_lines[0].contains("unwrap"));
        assert!(lexed.code_lines[0].contains("let ok = after();"));
    }

    #[test]
    fn raw_byte_strings_are_blanked() {
        let src = "let b = br#\"Instant::now()\"#; let c = b\"HashMap\"; real();";
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("Instant"));
        assert!(!lexed.code_lines[0].contains("HashMap"));
        assert!(lexed.code_lines[0].contains("real();"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // r#fn is a raw identifier, not an unterminated raw string: the
        // unwrap() after it is real code and must survive masking.
        let src = "let r#fn = 1; x.unwrap();";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains("r#fn"));
        assert!(lexed.code_lines[0].contains(".unwrap()"));
    }

    #[test]
    fn multi_line_strings_preserve_line_numbers() {
        // Both the backslash-continuation form and a plain embedded newline
        // must keep later lines aligned so findings point at real lines.
        let src = "let a = \"one \\\n  two\";\nlet b = \"three\nfour\";\nx.unwrap(); // lint:allow(panic) reason=r\n";
        let lexed = lex(src);
        assert_eq!(lexed.code_lines.len(), 5);
        assert!(!lexed.code_lines[0].contains("one"));
        assert!(!lexed.code_lines[1].contains("two"));
        assert!(!lexed.code_lines[3].contains("four"));
        assert!(lexed.code_lines[4].contains(".unwrap()"));
        assert_eq!(lexed.suppressions.len(), 1);
        assert_eq!(lexed.suppressions[0].line, 5);
    }

    #[test]
    fn char_and_byte_escapes_are_contained() {
        // Multi-character escapes must not let the literal swallow the
        // code after it.
        let src =
            "let a = '\\n'; let b = '\\''; let c = '\\\\'; let d = '\\x41'; let e = '\\u{1F600}'; let f = b'\\xFF'; tail();";
        let lexed = lex(src);
        assert!(!lexed.code_lines[0].contains("x41"));
        assert!(!lexed.code_lines[0].contains("1F600"));
        assert!(!lexed.code_lines[0].contains("xFF"));
        assert!(lexed.code_lines[0].contains("tail();"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\"'; x.unwrap();";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains(".unwrap()"));
    }

    #[test]
    fn deeply_nested_block_comments_balance() {
        let src = "/* 1 /* 2 /* 3 */ 2 */ 1 */ live(); /* plain */ more();";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains("live();"));
        assert!(lexed.code_lines[0].contains("more();"));
        assert!(!lexed.code_lines[0].contains('1'));
        assert!(!lexed.code_lines[0].contains("plain"));
    }

    #[test]
    fn comment_openers_inside_strings_are_inert() {
        let src = "let url = \"http://example/*x\"; live();\nnext.unwrap();";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains("live();"));
        assert!(lexed.code_lines[1].contains(".unwrap()"));
    }

    #[test]
    fn escaped_backslash_then_quote_closes_the_string() {
        // "x\\" ends at the second quote; the unwrap after it is code.
        let src = "let s = \"x\\\\\"; y.unwrap();";
        let lexed = lex(src);
        assert!(lexed.code_lines[0].contains(".unwrap()"));
    }

    #[test]
    fn four_slash_comments_are_not_doc_comments() {
        // `////` and `/***` are ordinary comments in Rust (doc comments are
        // exactly `///`, `//!`, `/**`, `/*!`), so directives inside them
        // must still register.
        let src = "//// lint:allow(panic) reason=quad slash is a plain comment\nf();\n/*** lint:allow(stdout) reason=triple star is a plain comment */\ng();\n";
        let lexed = lex(src);
        let rules: Vec<&str> = lexed.suppressions.iter().map(|s| s.rule.as_str()).collect();
        assert_eq!(rules, ["panic", "stdout"], "{:?}", lexed.suppressions);
    }

    #[test]
    fn unterminated_trailing_comments_still_yield_suppressions() {
        // No trailing newline after a line comment; rustc would reject an
        // unterminated block comment but the lexer must not lose its body.
        let lexed = lex("f(); // lint:allow(panic) reason=tail");
        assert_eq!(lexed.suppressions.len(), 1);
        let lexed = lex("g(); /* lint:allow(stdout) reason=tail");
        assert_eq!(lexed.suppressions.len(), 1);
    }

    #[test]
    fn same_line_cfg_test_items_end_at_the_semicolon() {
        let src = "#[cfg(test)] use foo::bar;\nfn live() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.in_test, vec![true, false]);
    }
}
