//! A std-only item parser layered on the masked lexer output.
//!
//! [`parse`] extracts the symbols the graph-aware rules need from one
//! lexed file: `use` edges and qualified-path crate references (with
//! `use x as y` alias resolution) for the layering rule, struct
//! definitions with their fields, `impl` blocks binding methods to their
//! owning type, free and associated fns with the parts of their bodies
//! the rules query (idents, call edges, `SimRng::seed` sites, `self.f`
//! mutations), and consts (cap-constant evidence for `bounded-state`).
//!
//! This is deliberately not a full Rust grammar: it token-scans with
//! brace/angle matching, which is exact for the rustfmt-formatted code in
//! this workspace and degrades to "sees nothing" (never to a spurious
//! symbol) on constructs it does not model. Rules built on it are tuned
//! for precision: a miss weakens coverage, a false symbol would create a
//! false violation.

use crate::lexer::LexedFile;
use std::collections::{BTreeMap, BTreeSet};

/// One token of masked code: an identifier/number or a punctuation blob.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    text: String,
    line: usize,
}

/// One resolved internal-crate reference (layering input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateRef {
    /// 1-based line of the reference.
    pub line: usize,
    /// Referenced crate ident (`canal_sim`, `bytes`, ...), alias-resolved.
    pub name: String,
}

/// One struct field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name (tuple fields are `"0"`, `"1"`, ...).
    pub name: String,
    /// Field type as a space-joined token string (`Vec < SpanRecord >`).
    pub ty: String,
    /// 1-based line of the field.
    pub line: usize,
}

/// One struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name (generics stripped).
    pub name: String,
    /// 1-based line of the `struct` item.
    pub line: usize,
    /// Declared fields, in order.
    pub fields: Vec<FieldDef>,
}

/// How a `self.<field>` expression is touched inside a method body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldOpKind {
    /// `self.f = ...` or a compound assignment (`+=`, `|=`, ...).
    Assign,
    /// `self.f.method(...)` — the method name, mutating or not.
    Call(String),
    /// `&mut self.f` handed out (e.g. to `mem::take` or a helper).
    MutBorrow,
}

/// One `self.<field>` operation observed in a fn body.
#[derive(Debug, Clone)]
pub struct FieldOp {
    /// The field name.
    pub field: String,
    /// What was done to it.
    pub kind: FieldOpKind,
    /// 1-based line of the operation.
    pub line: usize,
}

/// The body facts a fn contributes to the symbol graph.
#[derive(Debug, Clone, Default)]
pub struct BodyInfo {
    /// Every identifier appearing in the body (field-fold coverage check).
    pub idents: BTreeSet<String>,
    /// Callee names: `foo(...)`, `self.foo(...)`, `Type::foo(...)` all
    /// contribute `foo` (in-file call edges for `seed-dataflow`).
    pub calls: Vec<String>,
    /// Lines where the body seeds a fresh stream via `SimRng::seed(...)`.
    pub rng_seed_lines: Vec<usize>,
    /// `self.<field>` operations (mutation evidence).
    pub field_ops: Vec<FieldOp>,
}

/// One fn definition (free or associated).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Fn name.
    pub name: String,
    /// 1-based line of the `fn` item.
    pub line: usize,
    /// `Some(Type)` when the fn sits in an `impl Type` / `impl Tr for Type`.
    pub owner: Option<String>,
    /// True for `&mut self` / `mut self` receivers.
    pub takes_mut_self: bool,
    /// Identifiers appearing in the parameter list (type names included),
    /// e.g. `SimRng` for `rng: &mut SimRng`.
    pub sig_idents: BTreeSet<String>,
    /// Extracted body facts (empty for trait-method declarations).
    pub body: BodyInfo,
}

/// One `const`/`static` item (associated or module-level).
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Item name (conventionally SCREAMING_CASE).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// `Some(Type)` for associated consts.
    pub owner: Option<String>,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSyntax {
    /// Internal-crate references, deduped per (line, crate).
    pub crate_refs: Vec<CrateRef>,
    /// Struct definitions (item position only, not inside fn bodies).
    pub structs: Vec<StructDef>,
    /// Fn definitions, with impl owners attached.
    pub fns: Vec<FnDef>,
    /// Const/static items.
    pub consts: Vec<ConstDef>,
}

const MULTI_TOKS: &[&str] = &[
    "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=",
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn tokenize(code_lines: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
                continue;
            }
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            if let Some(m) = MULTI_TOKS.iter().find(|m| rest.starts_with(**m)) {
                toks.push(Tok {
                    text: (*m).to_string(),
                    line: lineno,
                });
                i += m.len();
                continue;
            }
            toks.push(Tok {
                text: c.to_string(),
                line: lineno,
            });
            i += 1;
        }
    }
    toks
}

/// Crate idents the layering rule polices.
fn is_internal_crate(name: &str) -> bool {
    name == "bytes" || name.starts_with("canal_")
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    out: FileSyntax,
}

impl<'a> Parser<'a> {
    fn cur(&self) -> Option<&'a Tok> {
        self.toks.get(self.i)
    }

    fn at(&self, off: usize) -> &str {
        self.toks.get(self.i + off).map_or("", |t| t.text.as_str())
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Skip to just past the `;` that ends the current item, ignoring any
    /// nested braces/brackets/parens (e.g. a const initializer).
    fn skip_to_semi(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a balanced region that starts at the current `open` token.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0i64;
        while let Some(t) = self.cur() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip `<...>` generics if present at the cursor.
    fn skip_generics(&mut self) {
        if self.at(0) == "<" {
            self.skip_balanced("<", ">");
        }
    }

    /// Parse items until the matching `}` of the enclosing block (or EOF).
    fn parse_items(&mut self, owner: Option<&str>) {
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "}" => {
                    self.bump();
                    return;
                }
                "#" => {
                    // Attribute: `#[...]` or `#![...]`.
                    self.bump();
                    if self.at(0) == "!" {
                        self.bump();
                    }
                    if self.at(0) == "[" {
                        self.skip_balanced("[", "]");
                    }
                }
                "pub" => {
                    self.bump();
                    if self.at(0) == "(" {
                        self.skip_balanced("(", ")");
                    }
                }
                "unsafe" | "async" | "default" => self.bump(),
                "extern" => {
                    // `extern crate x;` (a crate ref) or an extern block.
                    self.bump();
                    if self.at(0) == "crate" {
                        self.bump();
                        if let Some(t) = self.cur() {
                            if is_internal_crate(&t.text) {
                                let (line, name) = (t.line, t.text.clone());
                                self.out.crate_refs.push(CrateRef { line, name });
                            }
                        }
                        self.skip_to_semi();
                    } else if self.at(0) == "\"" {
                        // `extern "C"` — the masked ABI string is `"` `"`.
                        self.bump();
                        if self.at(0) == "\"" {
                            self.bump();
                        }
                    }
                }
                "use" => self.skip_to_semi(),
                "mod" => {
                    self.bump();
                    self.bump(); // name
                    if self.at(0) == "{" {
                        self.bump();
                        self.parse_items(None);
                    } else {
                        self.skip_to_semi();
                    }
                }
                "struct" => self.parse_struct(),
                "enum" | "union" | "trait" => {
                    self.bump();
                    self.bump(); // name
                    self.skip_generics();
                    while let Some(t) = self.cur() {
                        match t.text.as_str() {
                            "{" => {
                                self.skip_balanced("{", "}");
                                break;
                            }
                            ";" => {
                                self.bump();
                                break;
                            }
                            "<" => self.skip_generics(),
                            _ => self.bump(),
                        }
                    }
                }
                "impl" => self.parse_impl(),
                "fn" => self.parse_fn(owner),
                "const" | "static" => {
                    self.bump();
                    match self.at(0) {
                        // `const fn` — reparse as a fn item.
                        "fn" => continue,
                        "mut" => self.bump(), // `static mut`
                        _ => {}
                    }
                    if let Some(t) = self.cur() {
                        if t.text.chars().next().is_some_and(is_ident_char) {
                            self.out.consts.push(ConstDef {
                                name: t.text.clone(),
                                line: t.line,
                                owner: owner.map(str::to_string),
                            });
                        }
                    }
                    self.skip_to_semi();
                }
                "type" => self.skip_to_semi(),
                "macro_rules" => {
                    self.bump(); // macro_rules
                    self.bump(); // !
                    self.bump(); // name
                    match self.at(0) {
                        "{" => self.skip_balanced("{", "}"),
                        "(" => {
                            self.skip_balanced("(", ")");
                            self.skip_to_semi();
                        }
                        _ => {}
                    }
                }
                "{" => self.skip_balanced("{", "}"),
                _ => self.bump(),
            }
        }
    }

    fn parse_struct(&mut self) {
        self.bump(); // struct
        let Some(name_tok) = self.cur() else { return };
        let (name, line) = (name_tok.text.clone(), name_tok.line);
        self.bump();
        self.skip_generics();
        let mut def = StructDef {
            name,
            line,
            fields: Vec::new(),
        };
        // Optional where clause, then `;` (unit), `(...)` (tuple) or `{...}`.
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    break;
                }
                "(" => {
                    self.parse_tuple_fields(&mut def);
                    self.skip_to_semi();
                    break;
                }
                "{" => {
                    self.parse_named_fields(&mut def);
                    break;
                }
                "<" => self.skip_generics(),
                _ => self.bump(),
            }
        }
        self.out.structs.push(def);
    }

    fn parse_tuple_fields(&mut self, def: &mut StructDef) {
        self.bump(); // (
        let mut depth = 0i64;
        let mut idx = 0usize;
        let mut ty = Vec::new();
        let mut line = self.cur().map_or(0, |t| t.line);
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" if depth > 0 => depth -= 1,
                ")" => {
                    if !ty.is_empty() {
                        def.fields.push(FieldDef {
                            name: idx.to_string(),
                            ty: ty.join(" "),
                            line,
                        });
                    }
                    self.bump();
                    return;
                }
                "," if depth == 0 => {
                    def.fields.push(FieldDef {
                        name: idx.to_string(),
                        ty: ty.join(" "),
                        line,
                    });
                    idx += 1;
                    ty = Vec::new();
                    line = self.toks.get(self.i + 1).map_or(line, |t| t.line);
                    self.bump();
                    continue;
                }
                _ => {}
            }
            if t.text != "pub" {
                ty.push(t.text.clone());
            }
            self.bump();
        }
    }

    fn parse_named_fields(&mut self, def: &mut StructDef) {
        self.bump(); // {
        loop {
            match self.at(0) {
                "" | "}" => {
                    self.bump();
                    return;
                }
                "#" => {
                    self.bump();
                    if self.at(0) == "[" {
                        self.skip_balanced("[", "]");
                    }
                    continue;
                }
                "pub" => {
                    self.bump();
                    if self.at(0) == "(" {
                        self.skip_balanced("(", ")");
                    }
                    continue;
                }
                "," => {
                    self.bump();
                    continue;
                }
                _ => {}
            }
            let Some(name_tok) = self.cur() else { return };
            let (name, line) = (name_tok.text.clone(), name_tok.line);
            self.bump();
            if self.at(0) != ":" {
                // Not a field start we understand; resynchronize.
                continue;
            }
            self.bump(); // :
            let mut depth = 0i64;
            let mut ty = Vec::new();
            while let Some(t) = self.cur() {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" if depth > 0 => depth -= 1,
                    "," if depth == 0 => break,
                    "}" if depth == 0 => break,
                    _ => {}
                }
                ty.push(t.text.clone());
                self.bump();
            }
            def.fields.push(FieldDef {
                name,
                ty: ty.join(" "),
                line,
            });
        }
    }

    fn parse_impl(&mut self) {
        self.bump(); // impl
        self.skip_generics();
        // Collect the type path; `Trait for Type` keeps what follows `for`.
        let mut path: Vec<String> = Vec::new();
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "for" => {
                    path.clear();
                    self.bump();
                }
                "where" => {
                    while self.cur().is_some_and(|t| t.text != "{") {
                        if self.at(0) == "<" {
                            self.skip_generics();
                        } else {
                            self.bump();
                        }
                    }
                }
                "{" => break,
                ";" => {
                    self.bump();
                    return;
                }
                "<" => self.skip_generics(),
                _ => {
                    if t.text.chars().next().is_some_and(is_ident_char) {
                        path.push(t.text.clone());
                    }
                    self.bump();
                }
            }
        }
        let ty = path.last().cloned().unwrap_or_default();
        if self.at(0) == "{" {
            self.bump();
            self.parse_items(if ty.is_empty() { None } else { Some(&ty) });
        }
    }

    fn parse_fn(&mut self, owner: Option<&str>) {
        self.bump(); // fn
        let Some(name_tok) = self.cur() else { return };
        let mut def = FnDef {
            name: name_tok.text.clone(),
            line: name_tok.line,
            owner: owner.map(str::to_string),
            takes_mut_self: false,
            sig_idents: BTreeSet::new(),
            body: BodyInfo::default(),
        };
        self.bump();
        self.skip_generics();
        if self.at(0) == "(" {
            // Parameter list: collect idents, detect the receiver.
            let mut depth = 0i64;
            let mut prev = String::new();
            while let Some(t) = self.cur() {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    "self" if depth == 1 => {
                        def.takes_mut_self |= prev == "mut";
                    }
                    s if s.chars().next().is_some_and(is_ident_char) => {
                        def.sig_idents.insert(s.to_string());
                    }
                    _ => {}
                }
                prev = t.text.clone();
                self.bump();
            }
        }
        // Return type / where clause, up to the body or `;`.
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "{" => break,
                ";" => {
                    self.bump();
                    self.out.fns.push(def);
                    return;
                }
                "<" => self.skip_generics(),
                _ => self.bump(),
            }
        }
        if self.at(0) == "{" {
            self.walk_body(&mut def.body);
        }
        self.out.fns.push(def);
    }

    /// Walk a `{...}` body, extracting idents, call edges, `SimRng::seed`
    /// sites and `self.<field>` operations. Nested items are swallowed
    /// into the enclosing fn's body facts, which is what the in-file
    /// dataflow rules want.
    fn walk_body(&mut self, body: &mut BodyInfo) {
        const NOT_CALLS: &[&str] = &[
            "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "let", "else",
            "move", "unsafe", "self", "Some", "Ok", "Err",
        ];
        let mut depth = 0i64;
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            let text = t.text.clone();
            let line = t.line;
            if text.chars().next().is_some_and(is_ident_char) {
                body.idents.insert(text.clone());
                // Call edge: `name(` not preceded by `fn`/`.`-less paths are
                // fine either way; a nested `fn helper(` is a definition.
                let prev = self.i.checked_sub(1).map_or("", |p| self.toks[p].text.as_str());
                if self.at(1) == "(" && prev != "fn" && !NOT_CALLS.contains(&text.as_str()) {
                    body.calls.push(text.clone());
                }
                if text == "SimRng" && self.at(1) == "::" && self.at(2) == "seed" {
                    body.rng_seed_lines.push(line);
                }
                if text == "self" && self.at(1) == "." {
                    let field = self.at(2).to_string();
                    if field.chars().next().is_some_and(is_ident_char) {
                        let kind = match self.at(3) {
                            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|="
                            | "<<=" | ">>=" => Some(FieldOpKind::Assign),
                            "." => {
                                let m = self.at(4);
                                if m.chars().next().is_some_and(is_ident_char)
                                    && self.at(5) == "("
                                {
                                    Some(FieldOpKind::Call(m.to_string()))
                                } else {
                                    None
                                }
                            }
                            _ => {
                                let p1 = self.i.checked_sub(1).map_or("", |p| self.toks[p].text.as_str());
                                let p2 = self.i.checked_sub(2).map_or("", |p| self.toks[p].text.as_str());
                                if p1 == "mut" && p2 == "&" {
                                    Some(FieldOpKind::MutBorrow)
                                } else {
                                    None
                                }
                            }
                        };
                        if let Some(kind) = kind {
                            body.field_ops.push(FieldOp { field, kind, line });
                        }
                    }
                }
            }
            self.bump();
        }
    }
}

/// Pre-pass over the token stream: `use` roots, `use ... as` aliases, and
/// qualified path roots (`alias::` resolves through the alias map).
fn collect_crate_refs(toks: &[Tok], out: &mut Vec<CrateRef>) {
    // First pass: use-declaration roots and aliases.
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "use" {
            i += 1;
            continue;
        }
        // Statement start only (not `.use` — impossible — or idents).
        let root_at = i + 1;
        let Some(root) = toks.get(root_at) else { break };
        if is_internal_crate(&root.text) {
            out.push(CrateRef {
                line: root.line,
                name: root.text.clone(),
            });
        }
        // Scan the use item for a top-level `as` alias of the root path.
        let mut depth = 0i64;
        let mut j = root_at;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "as" if depth == 0 => {
                    if let (Some(alias), true) =
                        (toks.get(j + 1), is_internal_crate(&root.text))
                    {
                        aliases.insert(alias.text.clone(), root.text.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    // Second pass: qualified path roots `name::...` (skipping `x::name::`).
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.text.chars().next().is_some_and(is_ident_char) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "::") {
            continue;
        }
        if i > 0 && toks[i - 1].text == "::" {
            continue; // not a path root
        }
        let resolved = if is_internal_crate(&t.text) {
            Some(t.text.clone())
        } else {
            aliases.get(&t.text).cloned()
        };
        if let Some(name) = resolved {
            out.push(CrateRef { line: t.line, name });
        }
    }
    out.sort_by(|a, b| (a.line, &a.name).cmp(&(b.line, &b.name)));
    out.dedup();
}

/// Parse one lexed file into its symbol-level view.
pub fn parse(lexed: &LexedFile) -> FileSyntax {
    let toks = tokenize(&lexed.code_lines);
    let mut parser = Parser {
        toks: &toks,
        i: 0,
        out: FileSyntax::default(),
    };
    parser.parse_items(None);
    let mut out = parser.out;
    collect_crate_refs(&toks, &mut out.crate_refs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSyntax {
        parse(&lex(src))
    }

    #[test]
    fn structs_and_fields_are_extracted() {
        let src = "pub struct Ring {\n    items: VecDeque<u64>,\n    pub cap: usize,\n}\nstruct Pair(u32, Vec<u8>);\nstruct Unit;\n";
        let syn = parse_src(src);
        assert_eq!(syn.structs.len(), 3);
        let ring = &syn.structs[0];
        assert_eq!(ring.name, "Ring");
        assert_eq!(ring.fields.len(), 2);
        assert_eq!(ring.fields[0].name, "items");
        assert!(ring.fields[0].ty.contains("VecDeque"));
        assert_eq!(ring.fields[1].name, "cap");
        let pair = &syn.structs[1];
        assert_eq!(pair.fields[0].name, "0");
        assert!(pair.fields[1].ty.contains("Vec"));
        assert!(syn.structs[2].fields.is_empty());
    }

    #[test]
    fn generic_structs_and_where_clauses() {
        let src = "struct Keyed<K: Ord, V> where V: Clone {\n    map: BTreeMap<K, V>,\n}\n";
        let syn = parse_src(src);
        assert_eq!(syn.structs[0].name, "Keyed");
        assert_eq!(syn.structs[0].fields.len(), 1);
        assert!(syn.structs[0].fields[0].ty.contains("BTreeMap"));
    }

    #[test]
    fn impl_binds_methods_to_owner() {
        let src = "impl Ring {\n    pub fn push(&mut self, v: u64) { self.items.push_back(v); }\n    fn len(&self) -> usize { self.items.len() }\n}\nimpl fmt::Display for Ring {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"\") }\n}\nfn free(rng: &mut SimRng) {}\n";
        let syn = parse_src(src);
        let push = syn.fns.iter().find(|f| f.name == "push").unwrap();
        assert_eq!(push.owner.as_deref(), Some("Ring"));
        assert!(push.takes_mut_self);
        let len = syn.fns.iter().find(|f| f.name == "len").unwrap();
        assert!(!len.takes_mut_self);
        let fmt = syn.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.owner.as_deref(), Some("Ring"));
        let free = syn.fns.iter().find(|f| f.name == "free").unwrap();
        assert!(free.owner.is_none());
        assert!(free.sig_idents.contains("SimRng"));
    }

    #[test]
    fn body_facts_record_mutations_and_seeds() {
        let src = "impl S {\n    fn step(&mut self) {\n        self.count += 1;\n        self.log.push(self.count);\n        let r = SimRng::seed(7);\n        helper(&mut self.buf);\n    }\n}\n";
        let syn = parse_src(src);
        let step = &syn.fns[0];
        assert_eq!(step.body.rng_seed_lines, vec![5]);
        assert!(step.body.calls.contains(&"helper".to_string()));
        let kinds: Vec<(&str, &FieldOpKind)> = step
            .body
            .field_ops
            .iter()
            .map(|o| (o.field.as_str(), &o.kind))
            .collect();
        assert!(kinds.contains(&("count", &FieldOpKind::Assign)));
        assert!(kinds
            .iter()
            .any(|(f, k)| *f == "log" && matches!(k, FieldOpKind::Call(m) if m == "push")));
        assert!(kinds.contains(&("buf", &FieldOpKind::MutBorrow)));
    }

    #[test]
    fn equality_is_not_an_assignment() {
        let src = "impl S {\n    fn check(&mut self) -> bool { self.count == 3 }\n}\n";
        let syn = parse_src(src);
        assert!(syn.fns[0].body.field_ops.is_empty());
    }

    #[test]
    fn crate_refs_resolve_aliases_and_skip_locals() {
        let src = "use canal_sim as cs;\nuse canal_net::link::Link;\nfn f() {\n    let t = cs::SimTime::ZERO;\n    let canal_bps = 3;\n    let b = pkt.bytes;\n    let x = other::bytes::thing();\n}\n";
        let syn = parse_src(src);
        let names: Vec<(usize, &str)> = syn
            .crate_refs
            .iter()
            .map(|r| (r.line, r.name.as_str()))
            .collect();
        assert!(names.contains(&(1, "canal_sim")));
        assert!(names.contains(&(2, "canal_net")));
        assert!(names.contains(&(4, "canal_sim")), "{names:?}");
        assert!(!names.iter().any(|(l, _)| *l >= 5), "{names:?}");
    }

    #[test]
    fn multiline_use_groups_are_one_edge() {
        let src = "use canal_gateway::{\n    config::ActiveConfig,\n    overload::Admission,\n};\n";
        let syn = parse_src(src);
        assert_eq!(syn.crate_refs.len(), 1);
        assert_eq!(syn.crate_refs[0].name, "canal_gateway");
    }

    #[test]
    fn consts_carry_owners() {
        let src = "const TOP: usize = 4;\nimpl Ring {\n    const CAP: usize = 128;\n    fn id() {}\n}\nstatic NAME: &str = \"x\";\n";
        let syn = parse_src(src);
        let cap = syn.consts.iter().find(|c| c.name == "CAP").unwrap();
        assert_eq!(cap.owner.as_deref(), Some("Ring"));
        let top = syn.consts.iter().find(|c| c.name == "TOP").unwrap();
        assert!(top.owner.is_none());
        assert!(syn.consts.iter().any(|c| c.name == "NAME"));
    }

    #[test]
    fn const_fn_is_a_fn_not_a_const() {
        let src = "pub const fn zero() -> u64 { 0 }\n";
        let syn = parse_src(src);
        assert!(syn.consts.is_empty());
        assert_eq!(syn.fns[0].name, "zero");
    }

    #[test]
    fn nested_mods_are_traversed() {
        let src = "mod inner {\n    pub struct Hidden { v: Vec<u8> }\n    impl Hidden { fn grow(&mut self) { self.v.push(0); } }\n}\n";
        let syn = parse_src(src);
        assert_eq!(syn.structs[0].name, "Hidden");
        assert_eq!(syn.fns[0].owner.as_deref(), Some("Hidden"));
    }
}
