//! Cluster topology: tenants, nodes, pods, services and lifecycle.
//!
//! [`ClusterSpec`] captures the population shape (node/pod/service counts);
//! [`Cluster::generate`] lays pods out over nodes round-robin (K8s
//! spreading) and assigns them to services with the production ratios the
//! paper reports (§2.2: pods:services ≈ 2:1, pods:nodes ≈ 15:1 — both
//! overridable). Lifecycle operations mutate the topology and return what
//! changed, so the control-plane can account configuration pushes.

use canal_net::{AzId, NodeId, PodId, ServiceId, TenantId, VpcAddr, VpcId};
use canal_sim::SimRng;
use std::collections::BTreeMap;

/// A cloud tenant and its mesh feature adoption (Table 3 population model).
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Tenant id.
    pub id: TenantId,
    /// The tenant's VPC.
    pub vpc: VpcId,
    /// Whether the tenant configures L7 rules at all (80–95% do).
    pub uses_l7: bool,
    /// Whether they use L7 routing policies (72–95%).
    pub uses_l7_routing: bool,
    /// Whether they use L7 security/authorization (27–53%).
    pub uses_l7_security: bool,
}

/// One pod: a service replica bound to a node.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Pod id (cluster-unique).
    pub id: PodId,
    /// Hosting node.
    pub node: NodeId,
    /// Owning service.
    pub service: ServiceId,
    /// Pod IP within the tenant VPC.
    pub ip: VpcAddr,
    /// Serving port.
    pub port: u16,
}

/// One service: a named set of pods.
#[derive(Debug, Clone)]
pub struct Service {
    /// Service id (per-tenant).
    pub id: ServiceId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Service port.
    pub port: u16,
    /// Member pods.
    pub pods: Vec<PodId>,
}

/// A worker node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// The AZ hosting this node.
    pub az: AzId,
    /// CPU cores available to proxies/apps.
    pub cores: usize,
    /// Pods scheduled here.
    pub pods: Vec<PodId>,
}

/// Population shape for cluster generation.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Number of pods.
    pub pods: usize,
    /// Number of services (pods are spread over these).
    pub services: usize,
    /// AZs to spread nodes across.
    pub azs: usize,
    /// Cores per node.
    pub cores_per_node: usize,
}

impl ClusterSpec {
    /// Production-shaped spec derived from a pod count using the paper's
    /// ratios: pods:nodes ≈ 15:1, pods:services ≈ 2:1.
    pub fn production_shape(pods: usize) -> Self {
        ClusterSpec {
            nodes: (pods / 15).max(1),
            pods,
            services: (pods / 2).max(1),
            azs: 2,
            cores_per_node: 8,
        }
    }

    /// The paper's small-scale testbed (§5.1): 2 worker nodes, 15 pods
    /// each, 3 services.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            nodes: 2,
            pods: 30,
            services: 3,
            azs: 1,
            cores_per_node: 8,
        }
    }
}

/// A tenant's cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Owning tenant.
    pub tenant: Tenant,
    /// Nodes by id.
    pub nodes: BTreeMap<NodeId, Node>,
    /// Pods by id.
    pub pods: BTreeMap<PodId, Pod>,
    /// Services by id.
    pub services: BTreeMap<ServiceId, Service>,
    next_pod: u32,
}

impl Cluster {
    /// Generate a cluster with the given shape. Pods are spread round-robin
    /// over nodes; services get contiguous pod blocks of roughly equal size.
    pub fn generate(tenant: Tenant, spec: ClusterSpec, rng: &mut SimRng) -> Self {
        assert!(spec.nodes > 0 && spec.pods > 0 && spec.services > 0 && spec.azs > 0);
        let mut nodes = BTreeMap::new();
        for n in 0..spec.nodes {
            let id = NodeId(n as u32);
            nodes.insert(
                id,
                Node {
                    id,
                    az: AzId((n % spec.azs) as u32),
                    cores: spec.cores_per_node,
                    pods: Vec::new(),
                },
            );
        }
        let mut services = BTreeMap::new();
        for s in 0..spec.services {
            let id = ServiceId(s as u32);
            services.insert(
                id,
                Service {
                    id,
                    tenant: tenant.id,
                    port: 8000 + s as u16,
                    pods: Vec::new(),
                },
            );
        }
        let mut cluster = Cluster {
            tenant,
            nodes,
            pods: BTreeMap::new(),
            services,
            next_pod: 0,
        };
        for p in 0..spec.pods {
            let service = ServiceId((p % spec.services) as u32);
            let node = NodeId((p % spec.nodes) as u32);
            cluster.add_pod(service, Some(node), rng);
        }
        cluster
    }

    fn fresh_ip(&mut self, rng: &mut SimRng) -> VpcAddr {
        // 10.x.y.z within the tenant VPC; uniqueness by pod counter with a
        // random middle octet so different tenants' layouts differ.
        let n = self.next_pod;
        VpcAddr::new(
            self.tenant.vpc,
            10,
            (rng.index(200) + 1) as u8,
            (n >> 8) as u8,
            (n & 0xFF) as u8,
        )
    }

    /// Schedule one new pod of `service`, on `node` if given, else on the
    /// least-loaded node. Returns the new pod id.
    #[allow(clippy::expect_used)] // see the lint:allow below — generate() guarantees nodes
    pub fn add_pod(&mut self, service: ServiceId, node: Option<NodeId>, rng: &mut SimRng) -> PodId {
        let node_id = node.unwrap_or_else(|| {
            *self
                .nodes
                .iter()
                .min_by_key(|(_, n)| n.pods.len())
                .map(|(id, _)| id)
                // lint:allow(panic) reason=Cluster::generate asserts spec.nodes > 0, so the node map is never empty
                .expect("cluster has nodes")
        });
        let ip = self.fresh_ip(rng);
        let id = PodId(self.next_pod);
        self.next_pod += 1;
        let port = self.services[&service].port;
        self.pods.insert(
            id,
            Pod {
                id,
                node: node_id,
                service,
                ip,
                port,
            },
        );
        if let Some(n) = self.nodes.get_mut(&node_id) {
            n.pods.push(id);
        }
        if let Some(s) = self.services.get_mut(&service) {
            s.pods.push(id);
        }
        id
    }

    /// Remove a pod. Returns whether it existed.
    pub fn remove_pod(&mut self, pod: PodId) -> bool {
        let Some(p) = self.pods.remove(&pod) else {
            return false;
        };
        if let Some(n) = self.nodes.get_mut(&p.node) {
            n.pods.retain(|&x| x != pod);
        }
        if let Some(s) = self.services.get_mut(&p.service) {
            s.pods.retain(|&x| x != pod);
        }
        true
    }

    /// Scale a service to `replicas` pods (adding or removing as needed).
    /// Returns `(added, removed)` pod ids.
    pub fn scale_service(
        &mut self,
        service: ServiceId,
        replicas: usize,
        rng: &mut SimRng,
    ) -> (Vec<PodId>, Vec<PodId>) {
        let current = self.services[&service].pods.len();
        let mut added = Vec::new();
        let mut removed = Vec::new();
        if replicas > current {
            for _ in current..replicas {
                added.push(self.add_pod(service, None, rng));
            }
        } else {
            for _ in replicas..current {
                let Some(&victim) = self.services[&service].pods.last() else {
                    break;
                };
                self.remove_pod(victim);
                removed.push(victim);
            }
        }
        (added, removed)
    }

    /// Pod count.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Service count.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Pods of a service.
    pub fn pods_of(&self, service: ServiceId) -> &[PodId] {
        &self.services[&service].pods
    }

    /// Pods hosted on a node.
    pub fn pods_on(&self, node: NodeId) -> &[PodId] {
        &self.nodes[&node].pods
    }

    /// Distinct services with at least one pod on the node — the count a
    /// per-node proxy must hold config for.
    pub fn services_on(&self, node: NodeId) -> Vec<ServiceId> {
        let mut svcs: Vec<ServiceId> = self.nodes[&node]
            .pods
            .iter()
            .map(|p| self.pods[p].service)
            .collect();
        svcs.sort_unstable();
        svcs.dedup();
        svcs
    }
}

/// Generate the Table-3-shaped tenant population of a region: `n` tenants
/// with L7 adoption probabilities.
pub fn tenant_population(
    n: usize,
    p_l7: f64,
    p_routing: f64,
    p_security: f64,
    rng: &mut SimRng,
) -> Vec<Tenant> {
    (0..n)
        .map(|i| {
            let uses_l7 = rng.chance(p_l7);
            Tenant {
                id: TenantId(i as u32),
                vpc: VpcId(i as u32),
                uses_l7,
                // Routing/security imply L7 usage.
                uses_l7_routing: uses_l7 && rng.chance(p_routing / p_l7.max(1e-9)),
                uses_l7_security: uses_l7 && rng.chance(p_security / p_l7.max(1e-9)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(id: u32) -> Tenant {
        Tenant {
            id: TenantId(id),
            vpc: VpcId(id),
            uses_l7: true,
            uses_l7_routing: true,
            uses_l7_security: false,
        }
    }

    #[test]
    fn generate_respects_spec() {
        let mut rng = SimRng::seed(1);
        let spec = ClusterSpec {
            nodes: 10,
            pods: 150,
            services: 75,
            azs: 2,
            cores_per_node: 8,
        };
        let c = Cluster::generate(tenant(1), spec, &mut rng);
        assert_eq!(c.node_count(), 10);
        assert_eq!(c.pod_count(), 150);
        assert_eq!(c.service_count(), 75);
        // Round-robin spreading: 15 pods per node.
        for n in c.nodes.values() {
            assert_eq!(n.pods.len(), 15);
        }
        // 2 pods per service.
        for s in c.services.values() {
            assert_eq!(s.pods.len(), 2);
        }
        // Nodes alternate AZs.
        let az0 = c.nodes.values().filter(|n| n.az == AzId(0)).count();
        assert_eq!(az0, 5);
    }

    #[test]
    fn production_shape_ratios() {
        let spec = ClusterSpec::production_shape(15_000);
        assert_eq!(spec.nodes, 1000);
        assert_eq!(spec.services, 7500);
        let tb = ClusterSpec::paper_testbed();
        assert_eq!((tb.nodes, tb.pods, tb.services), (2, 30, 3));
    }

    #[test]
    fn pod_ips_unique_within_cluster() {
        let mut rng = SimRng::seed(2);
        let c = Cluster::generate(tenant(1), ClusterSpec::production_shape(600), &mut rng);
        let mut ips: Vec<_> = c.pods.values().map(|p| p.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), c.pod_count());
    }

    #[test]
    fn add_and_remove_pods_keep_indexes_consistent() {
        let mut rng = SimRng::seed(3);
        let mut c = Cluster::generate(tenant(1), ClusterSpec::paper_testbed(), &mut rng);
        let svc = ServiceId(0);
        let before = c.pods_of(svc).len();
        let new_pod = c.add_pod(svc, None, &mut rng);
        assert_eq!(c.pods_of(svc).len(), before + 1);
        let node = c.pods[&new_pod].node;
        assert!(c.pods_on(node).contains(&new_pod));
        assert!(c.remove_pod(new_pod));
        assert!(!c.remove_pod(new_pod));
        assert_eq!(c.pods_of(svc).len(), before);
        assert!(!c.pods_on(node).contains(&new_pod));
    }

    #[test]
    fn scale_service_both_directions() {
        let mut rng = SimRng::seed(4);
        let mut c = Cluster::generate(tenant(1), ClusterSpec::paper_testbed(), &mut rng);
        let svc = ServiceId(1);
        let (added, removed) = c.scale_service(svc, 20, &mut rng);
        assert_eq!(c.pods_of(svc).len(), 20);
        assert!(removed.is_empty());
        assert!(!added.is_empty());
        let (added2, removed2) = c.scale_service(svc, 5, &mut rng);
        assert_eq!(c.pods_of(svc).len(), 5);
        assert!(added2.is_empty());
        assert_eq!(removed2.len(), 15);
    }

    #[test]
    fn least_loaded_scheduling() {
        let mut rng = SimRng::seed(5);
        let mut c = Cluster::generate(tenant(1), ClusterSpec::paper_testbed(), &mut rng);
        // Empty node0 a bit by removing two pods from it.
        let victims: Vec<PodId> = c.pods_on(NodeId(0)).iter().take(2).copied().collect();
        for v in victims {
            c.remove_pod(v);
        }
        let p = c.add_pod(ServiceId(0), None, &mut rng);
        assert_eq!(c.pods[&p].node, NodeId(0));
    }

    #[test]
    fn services_on_node_deduplicates() {
        let mut rng = SimRng::seed(6);
        let c = Cluster::generate(tenant(1), ClusterSpec::paper_testbed(), &mut rng);
        let svcs = c.services_on(NodeId(0));
        // 15 pods over 3 services round-robin: every service present once.
        assert_eq!(svcs.len(), 3);
    }

    #[test]
    fn population_probabilities_hold() {
        let mut rng = SimRng::seed(7);
        let pop = tenant_population(20_000, 0.9, 0.85, 0.3, &mut rng);
        let l7 = pop.iter().filter(|t| t.uses_l7).count() as f64 / pop.len() as f64;
        let routing = pop.iter().filter(|t| t.uses_l7_routing).count() as f64 / pop.len() as f64;
        let sec = pop.iter().filter(|t| t.uses_l7_security).count() as f64 / pop.len() as f64;
        assert!((l7 - 0.9).abs() < 0.02, "{l7}");
        assert!((routing - 0.85).abs() < 0.02, "{routing}");
        assert!((sec - 0.3).abs() < 0.02, "{sec}");
        // Implication: routing users are L7 users.
        assert!(pop.iter().all(|t| !t.uses_l7_routing || t.uses_l7));
    }
}
