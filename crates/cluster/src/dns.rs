//! AZ-aware DNS resolution (§4.2, "Hierarchical failure recovery").
//!
//! The paper customizes DNS so requests resolve to *available backends in
//! the client's AZ* for latency, spilling to other AZs only when every local
//! backend is down. [`DnsView`] implements exactly that policy over a
//! name → [(az, address, healthy)] record set.

use canal_net::{AzId, VpcAddr};
use std::collections::BTreeMap;

/// One A-record target with health status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsTarget {
    /// AZ where the backend runs.
    pub az: AzId,
    /// Backend address.
    pub addr: VpcAddr,
    /// Health as seen by the control plane.
    pub healthy: bool,
}

/// A resolver view: names to candidate backends.
#[derive(Debug, Clone, Default)]
pub struct DnsView {
    records: BTreeMap<String, Vec<DnsTarget>>,
}

impl DnsView {
    /// Empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a backend for a name.
    pub fn add(&mut self, name: &str, az: AzId, addr: VpcAddr) {
        self.records.entry(name.to_string()).or_default().push(DnsTarget {
            az,
            addr,
            healthy: true,
        });
    }

    /// Update a backend's health. Returns whether the target was found.
    pub fn set_health(&mut self, name: &str, addr: VpcAddr, healthy: bool) -> bool {
        if let Some(targets) = self.records.get_mut(name) {
            for t in targets.iter_mut() {
                if t.addr == addr {
                    t.healthy = healthy;
                    return true;
                }
            }
        }
        false
    }

    /// All registered targets for a name.
    pub fn targets(&self, name: &str) -> &[DnsTarget] {
        self.records.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve with AZ preference: healthy targets in `client_az` first;
    /// if none, healthy targets anywhere; if none at all, `None`.
    pub fn resolve(&self, name: &str, client_az: AzId) -> Option<DnsTarget> {
        let targets = self.records.get(name)?;
        targets
            .iter()
            .find(|t| t.healthy && t.az == client_az)
            .or_else(|| targets.iter().find(|t| t.healthy))
            .copied()
    }

    /// Resolve the full healthy candidate list, local-AZ targets first —
    /// what a client-side load balancer iterates over.
    pub fn resolve_all(&self, name: &str, client_az: AzId) -> Vec<DnsTarget> {
        let Some(targets) = self.records.get(name) else {
            return Vec::new();
        };
        let mut out: Vec<DnsTarget> = targets
            .iter()
            .filter(|t| t.healthy && t.az == client_az)
            .copied()
            .collect();
        out.extend(targets.iter().filter(|t| t.healthy && t.az != client_az));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::VpcId;

    fn addr(last: u8) -> VpcAddr {
        VpcAddr::new(VpcId(0), 172, 16, 0, last)
    }

    fn two_az_view() -> DnsView {
        let mut v = DnsView::new();
        v.add("gw.mesh", AzId(0), addr(1));
        v.add("gw.mesh", AzId(0), addr(2));
        v.add("gw.mesh", AzId(1), addr(3));
        v
    }

    #[test]
    fn prefers_local_az() {
        let v = two_az_view();
        let t = v.resolve("gw.mesh", AzId(0)).unwrap();
        assert_eq!(t.az, AzId(0));
        let t1 = v.resolve("gw.mesh", AzId(1)).unwrap();
        assert_eq!(t1.addr, addr(3));
    }

    #[test]
    fn spills_to_other_az_only_when_local_down() {
        let mut v = two_az_view();
        v.set_health("gw.mesh", addr(1), false);
        // One local backend still healthy: stay local.
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(2));
        v.set_health("gw.mesh", addr(2), false);
        // All local down: cross-AZ fallback.
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(3));
        v.set_health("gw.mesh", addr(3), false);
        assert!(v.resolve("gw.mesh", AzId(0)).is_none());
    }

    #[test]
    fn recovery_restores_local_preference() {
        let mut v = two_az_view();
        v.set_health("gw.mesh", addr(1), false);
        v.set_health("gw.mesh", addr(2), false);
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().az, AzId(1));
        v.set_health("gw.mesh", addr(1), true);
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(1));
    }

    #[test]
    fn resolve_all_orders_local_first() {
        let v = two_az_view();
        let all = v.resolve_all("gw.mesh", AzId(1));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].az, AzId(1));
        assert!(all[1..].iter().all(|t| t.az == AzId(0)));
    }

    #[test]
    fn unknown_name_and_target() {
        let mut v = two_az_view();
        assert!(v.resolve("nope", AzId(0)).is_none());
        assert!(v.resolve_all("nope", AzId(0)).is_empty());
        assert!(!v.set_health("gw.mesh", addr(99), false));
    }
}
