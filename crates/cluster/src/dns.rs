//! AZ-aware DNS resolution (§4.2, "Hierarchical failure recovery").
//!
//! The paper customizes DNS so requests resolve to *available backends in
//! the client's AZ* for latency, spilling to other AZs only when every local
//! backend is down. [`DnsView`] implements exactly that policy over a
//! name → [(az, address, healthy)] record set.

use canal_net::{AzId, VpcAddr};
use canal_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One A-record target with health status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsTarget {
    /// AZ where the backend runs.
    pub az: AzId,
    /// Backend address.
    pub addr: VpcAddr,
    /// Health as seen by the control plane.
    pub healthy: bool,
}

/// A resolver view: names to candidate backends.
#[derive(Debug, Clone, Default)]
pub struct DnsView {
    records: BTreeMap<String, Vec<DnsTarget>>,
}

impl DnsView {
    /// Empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a backend for a name.
    pub fn add(&mut self, name: &str, az: AzId, addr: VpcAddr) {
        self.records.entry(name.to_string()).or_default().push(DnsTarget {
            az,
            addr,
            healthy: true,
        });
    }

    /// Update a backend's health. Returns whether the target was found.
    pub fn set_health(&mut self, name: &str, addr: VpcAddr, healthy: bool) -> bool {
        if let Some(targets) = self.records.get_mut(name) {
            for t in targets.iter_mut() {
                if t.addr == addr {
                    t.healthy = healthy;
                    return true;
                }
            }
        }
        false
    }

    /// All registered targets for a name.
    pub fn targets(&self, name: &str) -> &[DnsTarget] {
        self.records.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve with AZ preference: healthy targets in `client_az` first;
    /// if none, healthy targets anywhere; if none at all, `None`.
    pub fn resolve(&self, name: &str, client_az: AzId) -> Option<DnsTarget> {
        let targets = self.records.get(name)?;
        targets
            .iter()
            .find(|t| t.healthy && t.az == client_az)
            .or_else(|| targets.iter().find(|t| t.healthy))
            .copied()
    }

    /// Resolve the full healthy candidate list, local-AZ targets first —
    /// what a client-side load balancer iterates over.
    pub fn resolve_all(&self, name: &str, client_az: AzId) -> Vec<DnsTarget> {
        let Some(targets) = self.records.get(name) else {
            return Vec::new();
        };
        let mut out: Vec<DnsTarget> = targets
            .iter()
            .filter(|t| t.healthy && t.az == client_az)
            .copied()
            .collect();
        out.extend(targets.iter().filter(|t| t.healthy && t.az != client_az));
        out
    }
}

#[derive(Debug, Clone, Copy)]
struct CachedAnswer {
    answer: Option<DnsTarget>,
    fetched: SimTime,
}

/// A TTL-bounded client-side resolver cache over a [`DnsView`].
///
/// During cascading failures this is what bounds failover speed: a health
/// flip published into the view only reaches a client once its cached
/// answer ages past the TTL — so recovery is observed "within the
/// configured TTL", never instantly.
#[derive(Debug, Clone)]
pub struct CachingResolver {
    ttl: SimDuration,
    cache: BTreeMap<(String, AzId), CachedAnswer>,
}

impl CachingResolver {
    /// A resolver caching answers for `ttl`.
    pub fn new(ttl: SimDuration) -> Self {
        CachingResolver {
            ttl,
            cache: BTreeMap::new(),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Resolve through the cache: serve the cached answer while it is
    /// fresh (< TTL old), otherwise re-query `view` and re-cache. Negative
    /// answers are cached too.
    pub fn resolve(
        &mut self,
        now: SimTime,
        view: &DnsView,
        name: &str,
        client_az: AzId,
    ) -> Option<DnsTarget> {
        let key = (name.to_string(), client_az);
        if let Some(hit) = self.cache.get(&key) {
            if now.since(hit.fetched) < self.ttl {
                return hit.answer;
            }
        }
        let answer = view.resolve(name, client_az);
        self.cache.insert(key, CachedAnswer { answer, fetched: now });
        answer
    }

    /// Drop every cached answer (e.g. a client restart).
    pub fn flush(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::VpcId;

    fn addr(last: u8) -> VpcAddr {
        VpcAddr::new(VpcId(0), 172, 16, 0, last)
    }

    fn two_az_view() -> DnsView {
        let mut v = DnsView::new();
        v.add("gw.mesh", AzId(0), addr(1));
        v.add("gw.mesh", AzId(0), addr(2));
        v.add("gw.mesh", AzId(1), addr(3));
        v
    }

    #[test]
    fn prefers_local_az() {
        let v = two_az_view();
        let t = v.resolve("gw.mesh", AzId(0)).unwrap();
        assert_eq!(t.az, AzId(0));
        let t1 = v.resolve("gw.mesh", AzId(1)).unwrap();
        assert_eq!(t1.addr, addr(3));
    }

    #[test]
    fn spills_to_other_az_only_when_local_down() {
        let mut v = two_az_view();
        v.set_health("gw.mesh", addr(1), false);
        // One local backend still healthy: stay local.
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(2));
        v.set_health("gw.mesh", addr(2), false);
        // All local down: cross-AZ fallback.
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(3));
        v.set_health("gw.mesh", addr(3), false);
        assert!(v.resolve("gw.mesh", AzId(0)).is_none());
    }

    #[test]
    fn recovery_restores_local_preference() {
        let mut v = two_az_view();
        v.set_health("gw.mesh", addr(1), false);
        v.set_health("gw.mesh", addr(2), false);
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().az, AzId(1));
        v.set_health("gw.mesh", addr(1), true);
        assert_eq!(v.resolve("gw.mesh", AzId(0)).unwrap().addr, addr(1));
    }

    #[test]
    fn resolve_all_orders_local_first() {
        let v = two_az_view();
        let all = v.resolve_all("gw.mesh", AzId(1));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].az, AzId(1));
        assert!(all[1..].iter().all(|t| t.az == AzId(0)));
    }

    #[test]
    fn unknown_name_and_target() {
        let mut v = two_az_view();
        assert!(v.resolve("nope", AzId(0)).is_none());
        assert!(v.resolve_all("nope", AzId(0)).is_empty());
        assert!(!v.set_health("gw.mesh", addr(99), false));
    }

    const TTL: SimDuration = SimDuration::from_secs(5);

    #[test]
    fn cache_serves_stale_answer_until_ttl() {
        let mut v = two_az_view();
        let mut r = CachingResolver::new(TTL);
        let t0 = SimTime::ZERO;
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr, addr(1));
        // Backend ejected: the view flips immediately, the client does not.
        v.set_health("gw.mesh", addr(1), false);
        let mid = t0 + SimDuration::from_secs(2);
        assert_eq!(
            r.resolve(mid, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(1),
            "stale answer inside TTL"
        );
        // One TTL after the original fetch the flip is visible.
        let expired = t0 + TTL;
        assert_eq!(
            r.resolve(expired, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(2),
            "failover observed within the configured TTL"
        );
    }

    #[test]
    fn cascading_failure_flips_cross_az_then_recovery_flips_back() {
        let mut v = two_az_view();
        let mut r = CachingResolver::new(TTL);
        let mut t = SimTime::ZERO;
        assert_eq!(r.resolve(t, &v, "gw.mesh", AzId(0)).unwrap().az, AzId(0));
        // Cascade: both local backends ejected in turn.
        v.set_health("gw.mesh", addr(1), false);
        t += TTL;
        assert_eq!(r.resolve(t, &v, "gw.mesh", AzId(0)).unwrap().addr, addr(2));
        v.set_health("gw.mesh", addr(2), false);
        t += TTL;
        let spilled = r.resolve(t, &v, "gw.mesh", AzId(0)).unwrap();
        assert_eq!(spilled.az, AzId(1), "whole local AZ ejected: cross-AZ spill");
        // Recovery: the answer flips back local within one TTL.
        v.set_health("gw.mesh", addr(1), true);
        assert_eq!(
            r.resolve(t + SimDuration::from_secs(1), &v, "gw.mesh", AzId(0))
                .unwrap()
                .az,
            AzId(1),
            "recovery not yet visible inside TTL"
        );
        t += TTL;
        assert_eq!(
            r.resolve(t, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(1),
            "recovery flips back within the configured TTL"
        );
    }

    #[test]
    fn negative_answers_are_cached_and_flush_clears() {
        let mut v = two_az_view();
        for a in [1, 2, 3] {
            v.set_health("gw.mesh", addr(a), false);
        }
        let mut r = CachingResolver::new(TTL);
        let t0 = SimTime::ZERO;
        assert!(r.resolve(t0, &v, "gw.mesh", AzId(0)).is_none());
        v.set_health("gw.mesh", addr(1), true);
        assert!(
            r.resolve(t0 + SimDuration::from_secs(1), &v, "gw.mesh", AzId(0)).is_none(),
            "negative answer cached inside TTL"
        );
        r.flush();
        assert_eq!(
            r.resolve(t0 + SimDuration::from_secs(1), &v, "gw.mesh", AzId(0))
                .unwrap()
                .addr,
            addr(1),
            "flush forces a fresh lookup"
        );
    }

    #[test]
    fn ttl_boundary_is_exclusive() {
        // Freshness is `age < ttl`: one nanosecond under the TTL still
        // serves the cached answer, exactly at the TTL re-queries.
        let mut v = two_az_view();
        let mut r = CachingResolver::new(TTL);
        let t0 = SimTime::ZERO;
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr, addr(1));
        v.set_health("gw.mesh", addr(1), false);
        let almost = t0 + TTL - SimDuration::from_nanos(1);
        assert_eq!(
            r.resolve(almost, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(1),
            "ttl - 1ns: still the cached answer"
        );
        assert_eq!(
            r.resolve(t0 + TTL, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(2),
            "exactly at ttl: the cache entry has expired"
        );
    }

    #[test]
    fn refresh_under_failed_upstream_caches_the_negative() {
        // A refresh that lands while every backend is down must not keep
        // serving the stale positive answer — and the negative result it
        // fetches is itself TTL-cached until the next refresh.
        let mut v = two_az_view();
        let mut r = CachingResolver::new(TTL);
        let t0 = SimTime::ZERO;
        assert!(r.resolve(t0, &v, "gw.mesh", AzId(0)).is_some());
        for a in [1, 2, 3] {
            v.set_health("gw.mesh", addr(a), false);
        }
        let refresh = t0 + TTL;
        assert!(
            r.resolve(refresh, &v, "gw.mesh", AzId(0)).is_none(),
            "refresh under a failed upstream replaces the stale positive"
        );
        v.set_health("gw.mesh", addr(1), true);
        assert!(
            r.resolve(refresh + SimDuration::from_secs(1), &v, "gw.mesh", AzId(0))
                .is_none(),
            "the negative answer ages like any other cache entry"
        );
        assert_eq!(
            r.resolve(refresh + TTL, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(1),
            "recovery visible one TTL after the negative was cached"
        );
    }

    #[test]
    fn zero_ttl_never_caches() {
        // ttl = 0 means `age < 0` is never true: every resolve re-queries,
        // so health flips are visible instantly — even twice at one instant.
        let mut v = two_az_view();
        let mut r = CachingResolver::new(SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr, addr(1));
        v.set_health("gw.mesh", addr(1), false);
        assert_eq!(
            r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(2),
            "zero TTL sees the flip at the same instant"
        );
        v.set_health("gw.mesh", addr(1), true);
        assert_eq!(
            r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr,
            addr(1),
            "and the recovery too"
        );
    }

    #[test]
    fn per_az_cache_entries_are_independent() {
        let mut v = two_az_view();
        let mut r = CachingResolver::new(TTL);
        let t0 = SimTime::ZERO;
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(1)).unwrap().addr, addr(3));
        v.set_health("gw.mesh", addr(3), false);
        // AZ-0 clients never cached AZ-1's answer; their first lookup is
        // fresh even while AZ-1 clients still hold the stale record.
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(0)).unwrap().addr, addr(1));
        assert_eq!(r.resolve(t0, &v, "gw.mesh", AzId(1)).unwrap().addr, addr(3));
    }
}
