//! Health-check probing with hysteresis.
//!
//! Every mesh proxy health-checks the app endpoints it may route to. The
//! §6.1 experience section is entirely about how *many* of these probes a
//! consolidated gateway generates; this module provides the per-target state
//! machine (k consecutive failures → unhealthy, m consecutive successes →
//! healthy) and a tracker that counts probes sent — the quantity Tables 6/7
//! aggregate.

use canal_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Health of a probed target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Passing probes.
    Healthy,
    /// Failing probes.
    Unhealthy,
}

/// Hysteresis thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ProbePolicy {
    /// Consecutive failures before marking unhealthy.
    pub fail_threshold: u32,
    /// Consecutive successes before marking healthy again.
    pub rise_threshold: u32,
    /// Probe period.
    pub interval: SimDuration,
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy {
            fail_threshold: 3,
            rise_threshold: 2,
            interval: SimDuration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone)]
struct TargetState {
    state: HealthState,
    consecutive_fails: u32,
    consecutive_oks: u32,
    last_probe: Option<SimTime>,
    probes_sent: u64,
}

/// Default bound on the retained transition log. Long chaos runs flap
/// targets indefinitely; without a cap the log is an unbounded-memory bug
/// (the same failure mode `SpanRing` guards against).
pub const DEFAULT_TRANSITION_CAP: usize = 1024;

/// Tracks probe state for a set of targets keyed by `K`.
#[derive(Debug)]
pub struct ProbeTracker<K: Ord + Clone> {
    policy: ProbePolicy,
    targets: BTreeMap<K, TargetState>,
    transition_cap: usize,
    transitions: VecDeque<(SimTime, K, HealthState)>,
    transitions_recorded: u64,
    transitions_evicted: u64,
}

impl<K: Ord + Clone> ProbeTracker<K> {
    /// New tracker with the given policy and the default transition cap.
    pub fn new(policy: ProbePolicy) -> Self {
        ProbeTracker {
            policy,
            targets: BTreeMap::new(),
            transition_cap: DEFAULT_TRANSITION_CAP,
            transitions: VecDeque::new(),
            transitions_recorded: 0,
            transitions_evicted: 0,
        }
    }

    /// Retain at most `cap` transitions (cap 0 is clamped to 1); the oldest
    /// entries are evicted first and counted in [`Self::transitions_evicted`].
    pub fn with_transition_cap(mut self, cap: usize) -> Self {
        self.transition_cap = cap.max(1);
        while self.transitions.len() > self.transition_cap {
            self.transitions.pop_front();
            self.transitions_evicted += 1;
        }
        self
    }

    /// Register a target (initially healthy).
    pub fn add_target(&mut self, key: K) {
        self.targets.entry(key).or_insert(TargetState {
            state: HealthState::Healthy,
            consecutive_fails: 0,
            consecutive_oks: 0,
            last_probe: None,
            probes_sent: 0,
        });
    }

    /// Remove a target.
    pub fn remove_target(&mut self, key: &K) -> bool {
        self.targets.remove(key).is_some()
    }

    /// Whether a probe is due for the target at `now`.
    pub fn due(&self, key: &K, now: SimTime) -> bool {
        match self.targets.get(key) {
            Some(t) => t
                .last_probe
                .is_none_or(|last| now.since(last) >= self.policy.interval),
            None => false,
        }
    }

    /// Record one probe result. Returns the new state if it *changed*.
    pub fn record_probe(&mut self, key: &K, now: SimTime, success: bool) -> Option<HealthState> {
        let policy = self.policy;
        let t = self.targets.get_mut(key)?;
        t.last_probe = Some(now);
        t.probes_sent += 1;
        if success {
            t.consecutive_oks += 1;
            t.consecutive_fails = 0;
        } else {
            t.consecutive_fails += 1;
            t.consecutive_oks = 0;
        }
        let new_state = match t.state {
            HealthState::Healthy if t.consecutive_fails >= policy.fail_threshold => {
                Some(HealthState::Unhealthy)
            }
            HealthState::Unhealthy if t.consecutive_oks >= policy.rise_threshold => {
                Some(HealthState::Healthy)
            }
            _ => None,
        };
        if let Some(s) = new_state {
            t.state = s;
            if self.transitions.len() == self.transition_cap {
                self.transitions.pop_front();
                self.transitions_evicted += 1;
            }
            self.transitions.push_back((now, key.clone(), s));
            self.transitions_recorded += 1;
        }
        new_state
    }

    /// Current state of a target.
    pub fn state(&self, key: &K) -> Option<HealthState> {
        self.targets.get(key).map(|t| t.state)
    }

    /// Total probes sent across all targets.
    pub fn total_probes(&self) -> u64 {
        self.targets.values().map(|t| t.probes_sent).sum()
    }

    /// Number of registered targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Count of currently healthy targets.
    pub fn healthy_count(&self) -> usize {
        self.targets
            .values()
            .filter(|t| t.state == HealthState::Healthy)
            .count()
    }

    /// Retained state transitions `(when, target, new_state)`, oldest first.
    /// Holds at most the configured cap; older entries may have been evicted.
    pub fn transitions(&self) -> impl Iterator<Item = &(SimTime, K, HealthState)> {
        self.transitions.iter()
    }

    /// Total transitions ever recorded, including evicted ones.
    pub fn transitions_recorded(&self) -> u64 {
        self.transitions_recorded
    }

    /// Transitions dropped from the retained window to honour the cap.
    pub fn transitions_evicted(&self) -> u64 {
        self.transitions_evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    fn tracker() -> ProbeTracker<u32> {
        let mut t = ProbeTracker::new(ProbePolicy::default());
        t.add_target(1);
        t
    }

    #[test]
    fn starts_healthy_and_needs_three_failures() {
        let mut t = tracker();
        assert_eq!(t.state(&1), Some(HealthState::Healthy));
        assert_eq!(t.record_probe(&1, T(0), false), None);
        assert_eq!(t.record_probe(&1, T(5), false), None);
        assert_eq!(
            t.record_probe(&1, T(10), false),
            Some(HealthState::Unhealthy)
        );
        assert_eq!(t.state(&1), Some(HealthState::Unhealthy));
        assert_eq!(t.transitions().count(), 1);
        assert_eq!(t.transitions_recorded(), 1);
        assert_eq!(t.transitions_evicted(), 0);
    }

    #[test]
    fn recovery_needs_two_successes() {
        let mut t = tracker();
        for i in 0..3 {
            t.record_probe(&1, T(i * 5), false);
        }
        assert_eq!(t.record_probe(&1, T(15), true), None);
        assert_eq!(t.record_probe(&1, T(20), true), Some(HealthState::Healthy));
    }

    #[test]
    fn intermittent_failures_do_not_flap() {
        let mut t = tracker();
        // fail, fail, ok, fail, fail, ok ... never 3 consecutive.
        for i in 0..10u64 {
            let success = i % 3 == 2;
            assert_eq!(t.record_probe(&1, T(i * 5), success), None);
        }
        assert_eq!(t.state(&1), Some(HealthState::Healthy));
    }

    #[test]
    fn due_respects_interval() {
        let mut t = tracker();
        assert!(t.due(&1, T(0)));
        t.record_probe(&1, T(0), true);
        assert!(!t.due(&1, T(3)));
        assert!(t.due(&1, T(5)));
        assert!(!t.due(&2, T(100)), "unknown target never due");
    }

    #[test]
    fn probe_counting_across_targets() {
        let mut t = ProbeTracker::new(ProbePolicy::default());
        for k in 0..4u32 {
            t.add_target(k);
        }
        for round in 0..10u64 {
            for k in 0..4u32 {
                t.record_probe(&k, T(round * 5), true);
            }
        }
        assert_eq!(t.total_probes(), 40);
        assert_eq!(t.target_count(), 4);
        assert_eq!(t.healthy_count(), 4);
        assert!(t.remove_target(&0));
        assert_eq!(t.target_count(), 3);
    }

    #[test]
    fn transition_log_is_bounded() {
        // Regression: a target flapping forever must not grow memory without
        // bound. Drive 50 full down/up cycles with a cap of 8.
        let mut t = ProbeTracker::new(ProbePolicy::default()).with_transition_cap(8);
        t.add_target(1);
        let mut at = 0u64;
        for _ in 0..50 {
            for _ in 0..3 {
                t.record_probe(&1, T(at), false);
                at += 5;
            }
            for _ in 0..2 {
                t.record_probe(&1, T(at), true);
                at += 5;
            }
        }
        // 100 transitions happened (one down + one up per cycle) but only
        // the newest 8 are retained; the rest are accounted, not leaked.
        assert_eq!(t.transitions_recorded(), 100);
        assert_eq!(t.transitions().count(), 8);
        assert_eq!(t.transitions_evicted(), 92);
        // Oldest-first, and the retained tail is the *latest* transitions.
        let times: Vec<u64> = t.transitions().map(|(w, _, _)| w.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        // Cap 0 clamps to 1 rather than panicking or dropping everything.
        let mut one = ProbeTracker::new(ProbePolicy::default()).with_transition_cap(0);
        one.add_target(7);
        for i in 0..6u64 {
            one.record_probe(&7, T(i * 5), false);
        }
        assert_eq!(one.transitions().count(), 1);
    }

    #[test]
    fn sub_threshold_flapping_never_transitions() {
        // Gray-failure edge: a target that alternates hard between streaks
        // of (fail_threshold - 1) failures and (rise_threshold - 1)
        // successes looks awful on the wire but never crosses either
        // hysteresis edge — no transition may ever be recorded.
        let policy = ProbePolicy::default();
        let mut t = ProbeTracker::new(policy);
        t.add_target(1);
        let mut at = 0u64;
        for _ in 0..200 {
            for _ in 0..policy.fail_threshold - 1 {
                assert_eq!(t.record_probe(&1, T(at), false), None);
                at += 5;
            }
            // One success resets the failure streak; stay below the rise
            // threshold so an Unhealthy target (there is none) could not
            // recover either.
            for _ in 0..(policy.rise_threshold - 1).max(1) {
                assert_eq!(t.record_probe(&1, T(at), true), None);
                at += 5;
            }
        }
        assert_eq!(t.state(&1), Some(HealthState::Healthy));
        assert_eq!(t.transitions_recorded(), 0);
        assert_eq!(t.transitions_evicted(), 0);
        assert_eq!(t.transitions().count(), 0);
    }

    #[test]
    fn default_cap_evicts_with_counter_advancing() {
        // Exercise DEFAULT_TRANSITION_CAP itself (not a small test cap):
        // drive enough full down/up cycles to overflow 1024 retained
        // transitions and check eviction accounting at the real bound.
        let mut t = ProbeTracker::new(ProbePolicy::default());
        t.add_target(1);
        let cycles = (DEFAULT_TRANSITION_CAP / 2 + 10) as u64;
        let mut at = 0u64;
        for _ in 0..cycles {
            for _ in 0..3 {
                t.record_probe(&1, T(at), false);
                at += 5;
            }
            for _ in 0..2 {
                t.record_probe(&1, T(at), true);
                at += 5;
            }
        }
        let recorded = cycles * 2; // one down + one up per cycle
        assert_eq!(t.transitions_recorded(), recorded);
        assert_eq!(t.transitions().count(), DEFAULT_TRANSITION_CAP);
        assert_eq!(
            t.transitions_evicted(),
            recorded - DEFAULT_TRANSITION_CAP as u64
        );
        // The retained window is the newest transitions, oldest first.
        let first_kept = t.transitions().next().map(|(w, _, _)| w.as_nanos());
        let last_kept = t.transitions().last().map(|(w, _, _)| w.as_nanos());
        assert!(first_kept < last_kept);
    }
}
