//! Differential gray-failure detection.
//!
//! A *gray* gateway keeps answering health probes while real requests error
//! or crawl — the consolidated-proxy failure mode active probing is
//! structurally blind to. [`GrayDetector`] closes the gap by fusing two
//! evidence streams per target:
//!
//! * **Active** — the embedded [`ProbeTracker`] hysteresis state machine
//!   (a probe-visible outage is still the fastest signal when it fires).
//! * **Passive** — per-request outcomes rolled into fixed evidence windows:
//!   an EWMA error rate and a latency quantile, each judged *differentially*
//!   against the peer median, so a fleet-wide slowdown (overload, upstream
//!   dependency) does not read as one gateway's gray failure.
//!
//! Verdicts move `Healthy → Suspect → Quarantined` only after
//! `quarantine_after` *consecutive* bad windows (flap damping), a quarantine
//! must dwell through a cooloff before canary re-admission
//! ([`GrayDetector::allow_canary`]), and clearing needs `clear_after`
//! consecutive clean canary windows. A safety valve refuses to quarantine
//! more than `max_quarantined_fraction` of the fleet: if "everyone looks
//! gray", the baseline is broken, not the peers.
//!
//! All retained state is bounded: the per-window latency ring holds at most
//! [`LAT_SAMPLE_CAP`] samples (overflow counted, not kept) and windows reset
//! every roll.

use crate::probe::{HealthState, ProbePolicy, ProbeTracker};
use canal_sim::invariant::Digest;
use canal_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Bound on latency samples retained per target per window. A 60s window at
/// production rps would otherwise hold millions of durations; the quantile
/// only needs a stable prefix (arrival order is deterministic, so the kept
/// prefix is too).
pub const LAT_SAMPLE_CAP: usize = 256;

/// Where the detector currently places a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrayVerdict {
    /// No differential evidence against the target.
    Healthy,
    /// Bad windows accumulating, below the quarantine threshold.
    Suspect,
    /// Enough consecutive bad windows: route real traffic away.
    Quarantined,
}

impl GrayVerdict {
    fn tag(self) -> u64 {
        match self {
            GrayVerdict::Healthy => 0,
            GrayVerdict::Suspect => 1,
            GrayVerdict::Quarantined => 2,
        }
    }
}

/// Tuning for the differential detector.
#[derive(Debug, Clone, Copy)]
pub struct GrayPolicy {
    /// Evidence-window length (passive counters roll on this period).
    pub window: SimDuration,
    /// EWMA weight of the newest window's error rate.
    pub ewma_alpha: f64,
    /// Minimum real requests in a window before passive evidence counts
    /// (tiny samples are noise, not signal).
    pub min_requests: u64,
    /// Absolute EWMA error-rate floor below which a target is never bad.
    pub abs_error_threshold: f64,
    /// EWMA error rate must also exceed the peer median by this margin.
    pub peer_error_margin: f64,
    /// Window p90 latency must exceed the peer median p90 by this factor to
    /// count as latency evidence.
    pub peer_latency_factor: f64,
    /// Consecutive bad windows before `Suspect` hardens to `Quarantined`.
    pub quarantine_after: u32,
    /// Consecutive clean canary windows before a quarantine clears.
    pub clear_after: u32,
    /// Minimum dwell in `Quarantined` before canary re-admission starts.
    pub cooloff: SimDuration,
    /// Refuse to quarantine above this fraction of registered targets.
    pub max_quarantined_fraction: f64,
}

impl Default for GrayPolicy {
    fn default() -> Self {
        GrayPolicy {
            window: SimDuration::from_secs(1),
            ewma_alpha: 0.5,
            min_requests: 5,
            abs_error_threshold: 0.2,
            peer_error_margin: 0.1,
            peer_latency_factor: 3.0,
            quarantine_after: 3,
            clear_after: 3,
            cooloff: SimDuration::from_secs(10),
            max_quarantined_fraction: 0.34,
        }
    }
}

/// Per-target passive evidence; window counters reset on every roll.
#[derive(Debug, Clone)]
struct Evidence {
    win_requests: u64,
    win_errors: u64,
    win_latencies: Vec<SimDuration>,
    lat_overflow: u64,
    ewma_error: f64,
    bad_windows: u32,
    good_windows: u32,
    verdict: GrayVerdict,
    quarantined_at: Option<SimTime>,
}

impl Evidence {
    fn new() -> Self {
        Evidence {
            win_requests: 0,
            win_errors: 0,
            win_latencies: Vec::new(),
            lat_overflow: 0,
            ewma_error: 0.0,
            bad_windows: 0,
            good_windows: 0,
            verdict: GrayVerdict::Healthy,
            quarantined_at: None,
        }
    }

    fn win_error_rate(&self) -> f64 {
        if self.win_requests == 0 {
            0.0
        } else {
            self.win_errors as f64 / self.win_requests as f64
        }
    }

    fn win_p90(&self) -> Option<SimDuration> {
        if self.win_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.win_latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * 0.9).round() as usize;
        sorted.get(idx).copied()
    }

    fn reset_window(&mut self) {
        self.win_requests = 0;
        self.win_errors = 0;
        self.win_latencies.clear();
    }
}

/// Fuses active probes and passive request evidence into per-target
/// [`GrayVerdict`]s. Keyed by `K` (gateway id in the drill).
#[derive(Debug)]
pub struct GrayDetector<K: Ord + Clone> {
    policy: GrayPolicy,
    probes: ProbeTracker<K>,
    targets: BTreeMap<K, Evidence>,
    last_roll: Option<SimTime>,
    quarantines: u64,
    clears: u64,
    safety_holds: u64,
}

impl<K: Ord + Clone> GrayDetector<K> {
    /// New detector; `probe_policy` drives the embedded active tracker.
    pub fn new(policy: GrayPolicy, probe_policy: ProbePolicy) -> Self {
        GrayDetector {
            policy,
            probes: ProbeTracker::new(probe_policy),
            targets: BTreeMap::new(),
            last_roll: None,
            quarantines: 0,
            clears: 0,
            safety_holds: 0,
        }
    }

    /// Register a target (initially `Healthy`) in both evidence streams.
    pub fn add_target(&mut self, key: K) {
        self.probes.add_target(key.clone());
        self.targets.entry(key).or_insert_with(Evidence::new);
    }

    /// Remove a target from both evidence streams.
    pub fn remove_target(&mut self, key: &K) -> bool {
        self.probes.remove_target(key);
        self.targets.remove(key).is_some()
    }

    /// Record one active probe outcome (delegates to the embedded
    /// [`ProbeTracker`], keeping its hysteresis + transition log semantics).
    pub fn record_probe(&mut self, key: &K, now: SimTime, success: bool) -> Option<HealthState> {
        self.probes.record_probe(key, now, success)
    }

    /// Record one *real* request outcome against a target.
    pub fn record_request(&mut self, key: &K, ok: bool, latency: SimDuration) {
        if let Some(ev) = self.targets.get_mut(key) {
            ev.win_requests += 1;
            if !ok {
                ev.win_errors += 1;
            }
            if ev.win_latencies.len() < LAT_SAMPLE_CAP {
                ev.win_latencies.push(latency);
            } else {
                ev.lat_overflow += 1;
            }
        }
    }

    /// Whether a window roll is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.last_roll
            .is_none_or(|last| now.since(last) >= self.policy.window)
    }

    /// Close the current evidence window: judge every target against its
    /// peers, advance verdicts, reset window counters. Returns the verdicts
    /// that *changed*, in key order.
    pub fn roll_window(&mut self, now: SimTime) -> Vec<(K, GrayVerdict)> {
        self.last_roll = Some(now);
        let p = self.policy;

        // Peer baseline: the median EWMA error and median window p90 over
        // non-quarantined targets that saw traffic. Median (not mean) so a
        // single gray outlier cannot drag the baseline toward itself.
        let mut peer_errs: Vec<f64> = Vec::new();
        let mut peer_p90s: Vec<SimDuration> = Vec::new();
        for ev in self.targets.values() {
            if ev.verdict != GrayVerdict::Quarantined && ev.win_requests > 0 {
                let a = p.ewma_alpha;
                peer_errs.push(a * ev.win_error_rate() + (1.0 - a) * ev.ewma_error);
                if let Some(q) = ev.win_p90() {
                    peer_p90s.push(q);
                }
            }
        }
        peer_errs.sort_by(f64::total_cmp);
        peer_p90s.sort_unstable();
        let peer_err_median = peer_errs.get(peer_errs.len() / 2).copied().unwrap_or(0.0);
        let peer_p90_median = peer_p90s.get(peer_p90s.len() / 2).copied();

        let quarantine_cap =
            ((self.targets.len() as f64) * p.max_quarantined_fraction).floor() as usize;
        let mut quarantined_now = self
            .targets
            .values()
            .filter(|e| e.verdict == GrayVerdict::Quarantined)
            .count();

        let mut changed = Vec::new();
        for (key, ev) in &mut self.targets {
            let probe_bad = self.probes.state(key) == Some(HealthState::Unhealthy);
            let enough = ev.win_requests >= p.min_requests;
            let win_rate = ev.win_error_rate();

            match ev.verdict {
                GrayVerdict::Healthy | GrayVerdict::Suspect => {
                    // Fold the window into the EWMA only when it carried
                    // traffic; an idle window is no evidence either way.
                    if ev.win_requests > 0 {
                        ev.ewma_error =
                            p.ewma_alpha * win_rate + (1.0 - p.ewma_alpha) * ev.ewma_error;
                    }
                    let error_bad = enough
                        && ev.ewma_error > p.abs_error_threshold
                        && ev.ewma_error >= peer_err_median + p.peer_error_margin;
                    let lat_bad = enough
                        && match (ev.win_p90(), peer_p90_median) {
                            (Some(mine), Some(peers)) if peers > SimDuration::ZERO => {
                                mine.as_secs_f64() > peers.as_secs_f64() * p.peer_latency_factor
                            }
                            _ => false,
                        };
                    if probe_bad || error_bad || lat_bad {
                        ev.bad_windows += 1;
                        ev.good_windows = 0;
                        if ev.bad_windows >= p.quarantine_after {
                            if quarantined_now < quarantine_cap.max(1) {
                                ev.verdict = GrayVerdict::Quarantined;
                                ev.quarantined_at = Some(now);
                                ev.good_windows = 0;
                                quarantined_now += 1;
                                self.quarantines += 1;
                                changed.push((key.clone(), ev.verdict));
                            } else {
                                // Fleet-wide badness: hold at Suspect.
                                self.safety_holds += 1;
                                if ev.verdict != GrayVerdict::Suspect {
                                    ev.verdict = GrayVerdict::Suspect;
                                    changed.push((key.clone(), ev.verdict));
                                }
                            }
                        } else if ev.verdict != GrayVerdict::Suspect {
                            ev.verdict = GrayVerdict::Suspect;
                            changed.push((key.clone(), ev.verdict));
                        }
                    } else {
                        ev.bad_windows = 0;
                        if ev.verdict == GrayVerdict::Suspect {
                            ev.verdict = GrayVerdict::Healthy;
                            changed.push((key.clone(), ev.verdict));
                        }
                    }
                }
                GrayVerdict::Quarantined => {
                    // Clearing needs *canary* evidence: real requests routed
                    // back after the cooloff, each window clean on its raw
                    // rate (the EWMA is poisoned by the pre-quarantine
                    // tail, so it restarts from the canary windows).
                    let past_cooloff = ev
                        .quarantined_at
                        .is_none_or(|at| now.since(at) >= p.cooloff);
                    let clean = ev.win_requests > 0
                        && win_rate <= p.abs_error_threshold / 2.0
                        && !probe_bad;
                    if past_cooloff && clean {
                        ev.good_windows += 1;
                        if ev.good_windows >= p.clear_after {
                            ev.verdict = GrayVerdict::Healthy;
                            ev.bad_windows = 0;
                            ev.good_windows = 0;
                            ev.ewma_error = win_rate;
                            ev.quarantined_at = None;
                            quarantined_now = quarantined_now.saturating_sub(1);
                            self.clears += 1;
                            changed.push((key.clone(), ev.verdict));
                        }
                    } else if ev.win_requests > 0 {
                        // A dirty canary window restarts the clearing count.
                        ev.good_windows = 0;
                    }
                }
            }
            ev.reset_window();
        }
        changed
    }

    /// Current verdict for a target.
    pub fn verdict(&self, key: &K) -> Option<GrayVerdict> {
        self.targets.get(key).map(|e| e.verdict)
    }

    /// Whether real traffic should avoid this target.
    pub fn is_quarantined(&self, key: &K) -> bool {
        self.verdict(key) == Some(GrayVerdict::Quarantined)
    }

    /// Whether a quarantined target has dwelt through its cooloff and may
    /// receive canary traffic (the only way it can ever clear).
    pub fn allow_canary(&self, key: &K, now: SimTime) -> bool {
        self.targets.get(key).is_some_and(|e| {
            e.verdict == GrayVerdict::Quarantined
                && e.quarantined_at.is_none_or(|at| now.since(at) >= self.policy.cooloff)
        })
    }

    /// Quarantined targets, in key order.
    pub fn quarantined(&self) -> Vec<K> {
        self.targets
            .iter()
            .filter(|(_, e)| e.verdict == GrayVerdict::Quarantined)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The embedded active-probe tracker (read access for `due` checks and
    /// probe accounting).
    pub fn probes(&self) -> &ProbeTracker<K> {
        &self.probes
    }

    /// Total `→ Quarantined` transitions.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Total quarantine clears.
    pub fn clears(&self) -> u64 {
        self.clears
    }

    /// Times the fleet-fraction safety valve refused a quarantine.
    pub fn safety_holds(&self) -> u64 {
        self.safety_holds
    }

    /// Fold detector state into a digest: per-target verdict, EWMA bits,
    /// window counters (`win_requests`, `win_errors`, `win_latencies` via
    /// length, `lat_overflow`), hysteresis counters (`bad_windows`,
    /// `good_windows`, `quarantined_at`), the roll clock (`last_roll`) and
    /// the lifetime counters (`quarantines`, `clears`, `safety_holds`).
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.targets.len() as u64);
        for ev in self.targets.values() {
            d.write_u64(ev.verdict.tag())
                .write_f64(ev.ewma_error)
                .write_u64(ev.win_requests)
                .write_u64(ev.win_errors)
                .write_u64(ev.win_latencies.len() as u64)
                .write_u64(ev.lat_overflow)
                .write_u64(ev.bad_windows as u64)
                .write_u64(ev.good_windows as u64)
                .write_u64(ev.quarantined_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX));
        }
        d.write_u64(self.last_roll.map(|t| t.as_nanos()).unwrap_or(u64::MAX))
            .write_u64(self.quarantines)
            .write_u64(self.clears)
            .write_u64(self.safety_holds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;
    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    fn detector() -> GrayDetector<u32> {
        let mut d = GrayDetector::new(GrayPolicy::default(), ProbePolicy::default());
        for g in 0..6u32 {
            d.add_target(g);
        }
        d
    }

    /// One window of traffic: `n` requests per target, target 0 erroring at
    /// `gray_rate` and 5x latency, peers clean at 1ms.
    fn drive_window(d: &mut GrayDetector<u32>, n: u64, gray_rate: f64) {
        for g in 0..6u32 {
            for i in 0..n {
                let ok = g != 0 || (i as f64 / n as f64) >= gray_rate;
                let lat = if g == 0 { MS(5) } else { MS(1) };
                d.record_request(&g, ok, lat);
            }
        }
    }

    #[test]
    fn gray_target_quarantined_healthy_peers_untouched() {
        let mut d = detector();
        let mut at = 0u64;
        // Probes stay green for everyone — the active stream sees nothing.
        loop {
            for g in 0..6u32 {
                d.record_probe(&g, T(at), true);
            }
            drive_window(&mut d, 20, 0.6);
            at += 1;
            let changed = d.roll_window(T(at));
            if changed.iter().any(|(k, v)| *k == 0 && *v == GrayVerdict::Quarantined) {
                break;
            }
            assert!(at < 10, "gray target must quarantine within bounded windows");
        }
        assert!(d.is_quarantined(&0));
        assert_eq!(d.quarantines(), 1);
        for g in 1..6u32 {
            assert_eq!(d.verdict(&g), Some(GrayVerdict::Healthy), "peer {g} false-positived");
        }
    }

    #[test]
    fn latency_only_gray_failure_is_caught() {
        let mut d = detector();
        let mut at = 0u64;
        loop {
            for g in 0..6u32 {
                for _ in 0..20 {
                    // Zero errors anywhere; target 0 is 10x slower.
                    d.record_request(&g, true, if g == 0 { MS(10) } else { MS(1) });
                }
            }
            at += 1;
            d.roll_window(T(at));
            if d.is_quarantined(&0) {
                break;
            }
            assert!(at < 10, "latency-gray target must quarantine");
        }
        for g in 1..6u32 {
            assert_eq!(d.verdict(&g), Some(GrayVerdict::Healthy));
        }
    }

    #[test]
    fn fleet_wide_badness_does_not_quarantine() {
        let mut d = detector();
        // Everyone errors at 60% — an upstream outage, not a gray gateway.
        for w in 1..=6u64 {
            for g in 0..6u32 {
                for i in 0..20u64 {
                    d.record_request(&g, i >= 12, MS(1));
                }
            }
            d.roll_window(T(w));
        }
        // The differential margin keeps everyone off the error path (nobody
        // beats the peer median by the margin), so nothing quarantines.
        assert_eq!(d.quarantined(), Vec::<u32>::new());
        assert_eq!(d.quarantines(), 0);
    }

    #[test]
    fn sub_threshold_windows_never_quarantine() {
        let mut d = detector();
        // Alternate one bad window / one clean window: consecutive-bad never
        // reaches quarantine_after.
        for w in 1..=20u64 {
            let bad = w % 2 == 0;
            for g in 0..6u32 {
                for i in 0..20u64 {
                    let ok = g != 0 || !bad || i >= 12;
                    let lat = if g == 0 && bad { MS(5) } else { MS(1) };
                    d.record_request(&g, ok, lat);
                }
            }
            d.roll_window(T(w));
        }
        assert!(!d.is_quarantined(&0), "flapping below threshold must not quarantine");
        assert_eq!(d.quarantines(), 0);
    }

    #[test]
    fn quarantine_clears_only_via_cooloff_canary() {
        let mut d = detector();
        let mut at = 0u64;
        while !d.is_quarantined(&0) {
            drive_window(&mut d, 20, 1.0);
            at += 1;
            d.roll_window(T(at));
        }
        let quarantined_at = at;
        // Clean canary traffic *before* cooloff: must not clear.
        for _ in 0..3 {
            d.record_request(&0, true, MS(1));
            drive_window_peers(&mut d, 20);
            at += 1;
            d.roll_window(T(at));
        }
        assert!(d.is_quarantined(&0), "no clear inside cooloff");
        assert!(!d.allow_canary(&0, T(quarantined_at + 1)));
        // Jump past cooloff, then three clean canary windows clear it.
        at = quarantined_at + 10;
        assert!(d.allow_canary(&0, T(at)));
        for _ in 0..3 {
            for _ in 0..3 {
                d.record_request(&0, true, MS(1));
            }
            drive_window_peers(&mut d, 20);
            at += 1;
            d.roll_window(T(at));
        }
        assert_eq!(d.verdict(&0), Some(GrayVerdict::Healthy));
        assert_eq!(d.clears(), 1);
        // An idle quarantine (no canary traffic at all) never clears.
        let mut idle = detector();
        let mut t = 0u64;
        while !idle.is_quarantined(&0) {
            drive_window(&mut idle, 20, 1.0);
            t += 1;
            idle.roll_window(T(t));
        }
        for _ in 0..50 {
            drive_window_peers(&mut idle, 20);
            t += 1;
            idle.roll_window(T(t));
        }
        assert!(idle.is_quarantined(&0), "clearing requires canary evidence");
    }

    fn drive_window_peers(d: &mut GrayDetector<u32>, n: u64) {
        for g in 1..6u32 {
            for _ in 0..n {
                d.record_request(&g, true, MS(1));
            }
        }
    }

    #[test]
    fn probe_visible_outage_still_fuses_in() {
        let mut d = detector();
        // Target 2 hard-fails probes (classic outage); no request traffic at
        // all. The active stream alone must drive it to quarantine.
        let mut at = 0u64;
        loop {
            for g in 0..6u32 {
                d.record_probe(&g, T(at), g != 2);
            }
            drive_window_peers(&mut d, 20);
            at += 1;
            d.roll_window(T(at));
            if d.is_quarantined(&2) {
                break;
            }
            assert!(at < 10, "probe-dead target must quarantine via fusion");
        }
    }

    #[test]
    fn latency_ring_is_bounded_and_digest_is_stable() {
        let mut d = detector();
        for _ in 0..(LAT_SAMPLE_CAP as u64 + 100) {
            d.record_request(&0, true, MS(1));
        }
        let (mut a, mut b) = (Digest::new(), Digest::new());
        d.fold_digest(&mut a);
        d.fold_digest(&mut b);
        assert_eq!(a.value(), b.value());
        d.roll_window(T(1));
        let mut c = Digest::new();
        d.fold_digest(&mut c);
        assert_ne!(a.value(), c.value(), "roll must move the digest");
    }
}
