//! # canal-cluster
//!
//! The Kubernetes-like multi-tenant cluster substrate the mesh architectures
//! run against. The paper's experiments depend on cluster *shape* — pod,
//! service and node counts, their ratios (≈2 pods per service, ≈15 pods per
//! node in production, §2.2), AZ placement, and lifecycle events — not on
//! kubelet internals, so that is what this crate models:
//!
//! * [`topology`] — tenants, VPCs, AZs, nodes, pods, services; builders that
//!   generate production-shaped clusters; lifecycle operations (create /
//!   remove / scale) that the control-plane experiments replay.
//! * [`dns`] — the customized DNS resolution of §4.2: requests resolve to
//!   healthy gateway backends in the client's AZ first, spilling to other
//!   AZs only when the local ones are all down.
//! * [`probe`] — the health-check framework: periodic probes, k-failure /
//!   m-success hysteresis, and per-target state the §6.1 aggregation
//!   machinery counts.
//! * [`graydetect`] — differential gray-failure detection: active probes
//!   fused with passive per-request evidence (EWMA error rate + latency
//!   quantile vs the peer median) into a flap-damped `Quarantined` verdict
//!   with cooloff-gated canary re-admission.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod dns;
pub mod graydetect;
pub mod probe;
pub mod topology;

pub use dns::{CachingResolver, DnsTarget, DnsView};
pub use graydetect::{GrayDetector, GrayPolicy, GrayVerdict};
pub use probe::{HealthState, ProbeTracker};
pub use topology::{Cluster, ClusterSpec, Pod, Service, Tenant};
