//! Differential and isolation property tests for the compiled matcher.
//!
//! Three tenants share the same deliberately overlapping `10.0.0.0/16`
//! address space (each in its own VPC — the exact scenario §4.2's global
//! service id exists for). Over randomized rule sets and packets:
//!
//! * **differential** — the compiled matcher and the naive scan-all-rules
//!   reference return identical verdicts (L4 and L7), and the verdict
//!   stream digests are stable across a second generation from the same
//!   seed;
//! * **isolation** — removing every *other* tenant from the spec changes
//!   no verdict: no packet or request from tenant A ever matches tenant
//!   B's policy, overlapping addresses notwithstanding.

// The shared generators/drivers are test code even though they are not
// themselves `#[test]` fns, so clippy's allow-panic-in-tests does not
// reach them.
#![allow(clippy::panic)]

use canal_net::{TenantId, VpcId};
use canal_policy::{
    reference_l4_verdict, reference_l7_match, reference_l7_verdict, Cidr, CompiledPolicySet,
    CompiledTenant, L4Ctx, L7Ctx, PolicyRule, PolicySpec, PolicyVerdict, SniMatch, TenantPolicy,
};
use canal_sim::{Digest, SimRng};

const TENANTS: u32 = 3;
const RULES_PER_TENANT: usize = 48;
const PACKETS: usize = 2000;

const METHODS: &[&str] = &["GET", "POST", "PUT", "DELETE", "PATCH"];
const PATHS: &[&str] = &["/", "/api", "/api/v1", "/api/v1/users", "/admin", "/admin/keys", "/health"];
const SNIS: &[&str] = &["svc.example.com", "a.svc.example.com", "example.com", "other.net"];
const HEADERS: &[(&str, &str)] = &[
    ("x-team", "infra"),
    ("x-team", "payments"),
    ("x-trace", "1"),
    ("authorization", "bearer"),
];

/// One random rule; every dimension independently constrained or wildcard.
fn random_rule(rng: &mut SimRng) -> PolicyRule {
    let mut r = if rng.chance(0.5) { PolicyRule::allow() } else { PolicyRule::deny() };
    if rng.chance(0.6) {
        // Sub-blocks of the shared 10.0.0.0/16, various widths.
        let prefix_len = 18 + rng.index(13) as u8; // /18..=/30
        let mask = u32::MAX << (32 - prefix_len);
        let base = (0x0A00_0000 | (rng.u64() as u32 & 0x0000_FFFF)) & mask;
        r = r.with_source_cidr(Cidr::new(base, prefix_len));
    }
    if rng.chance(0.5) {
        let lo = rng.int_range(1, 9000) as u16;
        let hi = lo + rng.int_range(0, 1000) as u16;
        r = r.with_ports(lo, hi);
    }
    if rng.chance(0.3) {
        let ids: Vec<u64> = (0..1 + rng.index(3)).map(|_| rng.int_range(100, 110)).collect();
        r = r.with_identities(&ids);
    }
    if rng.chance(0.3) {
        r = r.with_method(METHODS[rng.index(METHODS.len())]);
    }
    if rng.chance(0.4) {
        r = r.with_path_prefix(PATHS[rng.index(PATHS.len())]);
    }
    if rng.chance(0.2) {
        r = if rng.chance(0.5) {
            r.with_sni(SniMatch::Exact(SNIS[rng.index(SNIS.len())].to_string()))
        } else {
            r.with_sni(SniMatch::Suffix(".example.com".to_string()))
        };
    }
    while rng.chance(0.25) && r.headers.len() < 3 {
        let (name, value) = HEADERS[rng.index(HEADERS.len())];
        let value = if rng.chance(0.5) { Some(value) } else { None };
        r = r.with_header(name, value);
    }
    r
}

/// A multi-tenant spec over the shared /16, from one seed.
fn random_spec(rng: &mut SimRng) -> PolicySpec {
    let tenants = (1..=TENANTS)
        .map(|t| TenantPolicy {
            tenant: TenantId(t),
            vpc: VpcId(t),
            rules: (0..RULES_PER_TENANT).map(|_| random_rule(rng)).collect(),
            default_action: if rng.chance(0.5) { PolicyVerdict::Allow } else { PolicyVerdict::Deny },
        })
        .collect();
    PolicySpec { version: 1, tenants }
}

/// One random packet/request context, biased into the shared /16 so
/// tenant CIDRs genuinely collide.
fn random_ctx(rng: &mut SimRng) -> (L4Ctx, &'static str, &'static str, Option<&'static str>, usize) {
    let tenant = 1 + rng.index(TENANTS as usize) as u32;
    let src_ip = if rng.chance(0.9) {
        0x0A00_0000 | (rng.u64() as u32 & 0x0000_FFFF)
    } else {
        rng.u64() as u32
    };
    let l4 = L4Ctx {
        tenant: TenantId(tenant),
        vpc: VpcId(tenant),
        src_ip,
        dst_port: rng.int_range(1, 10000) as u16,
        identity: rng.int_range(98, 112),
    };
    let method = METHODS[rng.index(METHODS.len())];
    let path = PATHS[rng.index(PATHS.len())];
    let sni = if rng.chance(0.6) { Some(SNIS[rng.index(SNIS.len())]) } else { None };
    let headers = rng.index(HEADERS.len() + 1);
    (l4, method, path, sni, headers)
}

/// Run the verdict stream for one seed, folding everything into a digest.
fn verdict_stream_digest(seed: u64) -> u64 {
    let mut rng = SimRng::seed(seed);
    let spec = random_spec(&mut rng);
    let compiled = match CompiledPolicySet::compile(&spec) {
        Ok(c) => c,
        Err(e) => panic!("random spec must validate: {e}"),
    };
    let mut d = Digest::new();
    compiled.fold_digest(&mut d);
    for _ in 0..PACKETS {
        let (l4, method, path, sni, hdrs) = random_ctx(&mut rng);
        let l7 = L7Ctx { method, path, sni, headers: &HEADERS[..hdrs] };
        let tp = spec
            .tenants
            .iter()
            .find(|tp| tp.tenant == l4.tenant)
            .unwrap_or_else(|| panic!("tenant missing"));

        let want_l4 = reference_l4_verdict(tp, &l4);
        let got_l4 = compiled.l4_verdict(&l4);
        assert_eq!(got_l4, want_l4, "L4 divergence at {l4:?}");

        let want = reference_l7_match(tp, &l4, &l7);
        let got = compiled.l7_match(&l4, &l7);
        assert_eq!(got, want, "L7 match divergence at {l4:?} {method} {path} {sni:?}");
        assert_eq!(
            compiled.l7_verdict(&l4, &l7),
            reference_l7_verdict(tp, &l4, &l7)
        );

        d.write_u64(match got_l4 {
            canal_policy::L4Verdict::Allow => 1,
            canal_policy::L4Verdict::Deny => 2,
            canal_policy::L4Verdict::NeedsL7 => 3,
        });
        d.write_u64(got.map_or(u64::MAX, |i| i as u64));
    }
    d.value()
}

#[test]
fn compiled_matches_reference_and_is_digest_stable() {
    for seed in [11, 42, 1007] {
        let a = verdict_stream_digest(seed);
        let b = verdict_stream_digest(seed);
        assert_eq!(a, b, "verdict stream not digest-stable for seed {seed}");
    }
}

#[test]
fn no_cross_tenant_match_over_overlapping_vpc_spaces() {
    for seed in [7, 99, 2024] {
        let mut rng = SimRng::seed(seed);
        let spec = random_spec(&mut rng);
        let full = match CompiledPolicySet::compile(&spec) {
            Ok(c) => c,
            Err(e) => panic!("random spec must validate: {e}"),
        };
        // Each tenant compiled alone: if any packet's verdict differs from
        // the full multi-tenant compile, another tenant's rules leaked in.
        let alone: Vec<CompiledTenant> = spec
            .tenants
            .iter()
            .map(|tp| match CompiledTenant::compile(tp) {
                Ok(c) => c,
                Err(e) => panic!("tenant must compile: {e}"),
            })
            .collect();
        let mut cross_matches = 0u64;
        for _ in 0..PACKETS {
            let (l4, method, path, sni, hdrs) = random_ctx(&mut rng);
            let l7 = L7Ctx { method, path, sni, headers: &HEADERS[..hdrs] };
            let solo = &alone[(l4.tenant.0 - 1) as usize];
            if full.l4_verdict(&l4) != solo.l4_verdict(&l4)
                || full.l7_match(&l4, &l7) != solo.l7_match(&l4, &l7)
                || full.l7_verdict(&l4, &l7) != solo.l7_verdict(&l4, &l7)
            {
                cross_matches += 1;
            }
        }
        assert_eq!(cross_matches, 0, "cross-tenant policy leakage for seed {seed}");
    }
}

#[test]
fn unknown_tenant_never_reaches_any_rule() {
    let mut rng = SimRng::seed(5);
    let spec = random_spec(&mut rng);
    let full = match CompiledPolicySet::compile(&spec) {
        Ok(c) => c,
        Err(e) => panic!("random spec must validate: {e}"),
    };
    for _ in 0..200 {
        let (mut l4, method, path, sni, hdrs) = random_ctx(&mut rng);
        l4.tenant = TenantId(999);
        let l7 = L7Ctx { method, path, sni, headers: &HEADERS[..hdrs] };
        assert_eq!(full.l4_verdict(&l4), canal_policy::L4Verdict::Deny);
        assert_eq!(full.l7_match(&l4, &l7), None);
        assert_eq!(full.l7_verdict(&l4, &l7), PolicyVerdict::Deny);
    }
}
