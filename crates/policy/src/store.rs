//! The bounded policy-version archive.
//!
//! The rollout controller's rollback targets must be materializable: when
//! a canary NACKs version *v*, the controller rolls the fleet back to the
//! last *converged* version, and the gateway needs that spec's compiled
//! form again. [`PolicyStore`] keeps the most recent
//! [`POLICY_RETAIN_CAP`] specs keyed by version, evicting the oldest and
//! counting evictions, so memory stays flat no matter how many pushes a
//! region sees.

use crate::spec::PolicySpec;
use canal_sim::Digest;
use std::collections::BTreeMap;

/// How many policy versions the archive retains; older entries are
/// evicted oldest-first.
pub const POLICY_RETAIN_CAP: usize = 16;

/// Bounded archive of pushed policy specs, keyed by version.
#[derive(Debug, Default)]
pub struct PolicyStore {
    by_version: BTreeMap<u64, PolicySpec>,
    evicted: u64,
}

impl PolicyStore {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a pushed spec under its version, evicting the oldest entry
    /// once [`POLICY_RETAIN_CAP`] is exceeded.
    pub fn record(&mut self, spec: PolicySpec) {
        self.by_version.insert(spec.version, spec);
        while self.by_version.len() > POLICY_RETAIN_CAP {
            if self.by_version.pop_first().is_none() {
                break;
            }
            self.evicted += 1;
        }
    }

    /// The spec pushed under `version`, if still retained.
    pub fn get(&self, version: u64) -> Option<&PolicySpec> {
        self.by_version.get(&version)
    }

    /// The most recent retained spec.
    pub fn latest(&self) -> Option<&PolicySpec> {
        self.by_version.values().next_back()
    }

    /// Number of retained specs.
    pub fn len(&self) -> usize {
        self.by_version.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.by_version.is_empty()
    }

    /// How many specs have been evicted since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Fold the archive into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.by_version.len() as u64).write_u64(self.evicted);
        for spec in self.by_version.values() {
            spec.fold_digest(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(v: u64) -> PolicySpec {
        PolicySpec { version: v, tenants: Vec::new() }
    }

    #[test]
    fn retains_at_most_the_cap_and_counts_evictions() {
        let mut store = PolicyStore::new();
        for v in 1..=(POLICY_RETAIN_CAP as u64 + 4) {
            store.record(spec(v));
        }
        assert_eq!(store.len(), POLICY_RETAIN_CAP);
        assert_eq!(store.evicted(), 4);
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(POLICY_RETAIN_CAP as u64 + 4).is_some());
        assert_eq!(store.latest().map(|s| s.version), Some(POLICY_RETAIN_CAP as u64 + 4));
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = PolicyStore::new();
        a.record(spec(1));
        let mut b = PolicyStore::new();
        b.record(spec(1));
        let mut da = Digest::new();
        a.fold_digest(&mut da);
        let mut db = Digest::new();
        b.fold_digest(&mut db);
        assert_eq!(da.value(), db.value());
        b.record(spec(2));
        let mut dc = Digest::new();
        b.fold_digest(&mut dc);
        assert_ne!(da.value(), dc.value());
    }
}
