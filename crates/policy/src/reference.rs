//! The naive scan-all-rules matcher: the executable specification the
//! compiled form is differential-tested against.
//!
//! Every function here walks the rule list in order and returns on the
//! first match — O(rules × predicates) per lookup, which is exactly the
//! cost the compiled tables exist to avoid. The property tests (and the
//! `policy` experiment's differential pass) require bit-identical verdicts
//! between this and [`CompiledTenant`](crate::compile::CompiledTenant)
//! over randomized rule sets, so any compiler bug shows up as a verdict
//! divergence, not a silent policy hole.

use crate::compile::L4Verdict;
use crate::spec::{HeaderPredicate, L4Ctx, L7Ctx, PolicyRule, PolicyVerdict, SniMatch, TenantPolicy};

/// Whether the rule's L4 predicates admit the flow.
fn l4_matches(r: &PolicyRule, ctx: &L4Ctx) -> bool {
    if let Some(c) = r.source_cidr {
        if !c.contains(ctx.src_ip) {
            return false;
        }
    }
    if let Some(p) = r.dest_ports {
        if ctx.dst_port < p.lo || ctx.dst_port > p.hi {
            return false;
        }
    }
    if !r.source_identities.is_empty() && !r.source_identities.contains(&ctx.identity) {
        return false;
    }
    true
}

/// Whether one header predicate is satisfied by some request header
/// (names case-insensitive, values exact).
fn header_holds(pred: &HeaderPredicate, headers: &[(&str, &str)]) -> bool {
    headers.iter().any(|&(name, value)| {
        name.eq_ignore_ascii_case(&pred.name)
            && pred.value.as_deref().is_none_or(|want| value == want)
    })
}

/// Whether the rule's L7 predicates admit the request.
fn l7_matches(r: &PolicyRule, l7: &L7Ctx<'_>) -> bool {
    if !r.methods.is_empty() && !r.methods.iter().any(|m| m == l7.method) {
        return false;
    }
    if !r.path_prefix.is_empty() && !l7.path.starts_with(&r.path_prefix) {
        return false;
    }
    let sni_holds = match &r.sni {
        None => true,
        Some(SniMatch::Exact(want)) => l7.sni == Some(want.as_str()),
        // Label-boundary semantics: the suffix is stored with its leading
        // dot, so `ends_with` cannot match a partial label.
        Some(SniMatch::Suffix(suffix)) => {
            l7.sni.is_some_and(|name| name.ends_with(suffix.as_str()))
        }
    };
    if !sni_holds {
        return false;
    }
    r.headers.iter().all(|p| header_holds(p, l7.headers))
}

/// First rule matching the full L4+L7 context, scanning in order.
pub fn reference_l7_match(tp: &TenantPolicy, l4: &L4Ctx, l7: &L7Ctx<'_>) -> Option<usize> {
    tp.rules
        .iter()
        .position(|r| l4_matches(r, l4) && l7_matches(r, l7))
}

/// Verdict under full context: first match wins, else the default.
pub fn reference_l7_verdict(tp: &TenantPolicy, l4: &L4Ctx, l7: &L7Ctx<'_>) -> PolicyVerdict {
    match reference_l7_match(tp, l4, l7) {
        Some(i) => tp.rules[i].action,
        None => tp.default_action,
    }
}

/// What the node L4 path can conclude by scanning: the first rule whose
/// L4 predicates admit the flow decides — or defers, if it also carries
/// L7 predicates.
pub fn reference_l4_verdict(tp: &TenantPolicy, ctx: &L4Ctx) -> L4Verdict {
    for r in &tp.rules {
        if !l4_matches(r, ctx) {
            continue;
        }
        if r.has_l7_predicates() {
            return L4Verdict::NeedsL7;
        }
        return match r.action {
            PolicyVerdict::Allow => L4Verdict::Allow,
            PolicyVerdict::Deny => L4Verdict::Deny,
        };
    }
    match tp.default_action {
        PolicyVerdict::Allow => L4Verdict::Allow,
        PolicyVerdict::Deny => L4Verdict::Deny,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Cidr;
    use canal_net::{TenantId, VpcId};

    #[test]
    fn reference_agrees_with_compiled_on_a_hand_case() {
        let tp = TenantPolicy {
            tenant: TenantId(1),
            vpc: VpcId(1),
            rules: vec![
                PolicyRule::deny().with_source_cidr(Cidr::new(0x0A00_C800, 24)),
                PolicyRule::deny().with_method("DELETE").with_path_prefix("/admin"),
                PolicyRule::allow(),
            ],
            default_action: PolicyVerdict::Deny,
        };
        let compiled = crate::compile::CompiledTenant::compile(&tp).unwrap();
        let ctxs = [
            (0x0A00_C801u32, 80u16),
            (0x0A00_0001, 80),
            (0x0B00_0001, 443),
        ];
        let reqs = [("GET", "/api"), ("DELETE", "/admin/x"), ("DELETE", "/api")];
        for &(ip, port) in &ctxs {
            let l4 = L4Ctx { tenant: TenantId(1), vpc: VpcId(1), src_ip: ip, dst_port: port, identity: 0 };
            assert_eq!(reference_l4_verdict(&tp, &l4), compiled.l4_verdict(&l4));
            for &(m, p) in &reqs {
                let l7 = L7Ctx::new(m, p);
                assert_eq!(reference_l7_match(&tp, &l4, &l7), compiled.l7_match(&l4, &l7));
                assert_eq!(reference_l7_verdict(&tp, &l4, &l7), compiled.l7_verdict(&l4, &l7));
            }
        }
    }
}
