//! The compiled flat match structure the datapath evaluates.
//!
//! Compilation turns one tenant's ordered rule list into per-dimension
//! lookup tables, each mapping a request attribute to a bitmask of
//! candidate rules:
//!
//! * source IP, destination port and workload identity — disjoint-interval
//!   segment tables ([`IntervalTable`]): the rule ranges are cut into
//!   non-overlapping segments once at compile time, so a lookup is one
//!   binary search over the segment boundaries.
//! * HTTP method and SNI — exact-match maps, plus a label-boundary suffix
//!   map for wildcard SNI ([`SniTable`]).
//! * path prefix — a byte trie whose nodes carry ancestor-cumulative rule
//!   sets ([`PathTrie`]): the deepest node reached on a walk already holds
//!   every rule whose prefix covers the path.
//! * header predicates — fixed slots ([`MAX_HEADER_PREDICATES`]); slot `j`
//!   auto-admits every rule with at most `j` predicates, so rules with
//!   fewer predicates than the maximum impose no constraint there.
//!
//! A verdict is the AND of the dimension masks followed by
//! first-set-bit (first-match-wins), so per-request cost is O(log n)
//! searches plus O(n/64) word operations — never a per-rule scan. The top
//! level of [`CompiledPolicySet`] is keyed by [`TenantId`]: a packet
//! selects its own tenant's table before any rule bit is consulted, which
//! makes cross-tenant matches structurally impossible even when VPC
//! address spaces overlap.

use crate::spec::{
    validate_tenant, verdict_tag, L4Ctx, L7Ctx, PolicyRejection, PolicySpec, PolicyVerdict,
    SniMatch, TenantPolicy,
};
use canal_net::TenantId;
use canal_sim::Digest;
use std::collections::BTreeMap;

/// What the node L4 path can conclude without seeing the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4Verdict {
    /// No candidate rule needs L7 context; the flow is admitted.
    Allow,
    /// No candidate rule needs L7 context; the flow is rejected.
    Deny,
    /// The first candidate rule carries L7 predicates — the verdict must
    /// be deferred to the gateway L7 path.
    NeedsL7,
}

/// A fixed-width bitmask over one tenant's rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    /// 64-bit words, lowest rule index in bit 0 of word 0.
    words: Vec<u64>,
    /// Number of valid bits (the tenant's rule count).
    bits: usize,
}

impl RuleSet {
    /// All-zero mask over `bits` rules.
    pub fn empty(bits: usize) -> Self {
        RuleSet { words: vec![0; bits.div_ceil(64)], bits }
    }

    /// All-ones mask over `bits` rules (tail bits kept clear).
    pub fn full(bits: usize) -> Self {
        let mut s = RuleSet { words: vec![u64::MAX; bits.div_ceil(64)], bits };
        let tail = bits % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        if i < self.bits {
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.bits && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// OR another mask in.
    pub fn or_with(&mut self, other: &RuleSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// AND another mask in.
    pub fn and_with(&mut self, other: &RuleSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Lowest set bit — the first-match-wins winner.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Number of 64-bit words (the per-AND cost unit).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Fold the mask into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.bits as u64);
        for &w in &self.words {
            d.write_u64(w);
        }
    }
}

/// Disjoint-interval segment table: rule ranges cut into non-overlapping
/// segments at compile time, looked up with one binary search.
#[derive(Debug, Clone)]
struct IntervalTable {
    /// Segment start keys, ascending; `bounds[0] == 0` always.
    bounds: Vec<u64>,
    /// Candidate rules per segment, parallel to `bounds`.
    segs: Vec<RuleSet>,
}

impl IntervalTable {
    /// Build from per-rule inclusive ranges; an empty range list means the
    /// rule matches any key in this dimension.
    fn build(n: usize, per_rule: &[Vec<(u64, u64)>]) -> IntervalTable {
        let mut cuts: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        cuts.insert(0);
        for ranges in per_rule {
            for &(lo, hi) in ranges {
                cuts.insert(lo);
                if hi < u64::MAX {
                    cuts.insert(hi + 1);
                }
            }
        }
        let bounds: Vec<u64> = cuts.into_iter().collect();
        let mut segs = vec![RuleSet::empty(n); bounds.len()];
        for (i, ranges) in per_rule.iter().enumerate() {
            if ranges.is_empty() {
                for seg in &mut segs {
                    seg.set(i);
                }
                continue;
            }
            for &(lo, hi) in ranges {
                if lo > hi {
                    continue;
                }
                let mut s = bounds.partition_point(|b| *b <= lo).saturating_sub(1);
                while s < bounds.len() && bounds[s] <= hi {
                    segs[s].set(i);
                    s += 1;
                }
            }
        }
        IntervalTable { bounds, segs }
    }

    /// The candidate set for one key: binary search over segment starts.
    fn lookup(&self, key: u64) -> &RuleSet {
        let idx = self.bounds.partition_point(|b| *b <= key).saturating_sub(1);
        &self.segs[idx]
    }

    /// Comparisons one lookup costs: `ceil(log2(segments))`.
    fn search_ops(&self) -> u64 {
        u64::from((self.bounds.len().max(1) as u64).ilog2()) + 1
    }

    fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.bounds.len() as u64);
        for &b in &self.bounds {
            d.write_u64(b);
        }
        for s in &self.segs {
            s.fold_digest(d);
        }
    }
}

/// Exact-match dimension table (HTTP method): `any` admits rules without a
/// constraint here, the map admits rules keyed by token.
#[derive(Debug, Clone)]
struct MapTable {
    any: RuleSet,
    exact: BTreeMap<String, RuleSet>,
}

impl MapTable {
    fn mask(&self, key: &str) -> RuleSet {
        let mut m = self.any.clone();
        if let Some(e) = self.exact.get(key) {
            m.or_with(e);
        }
        m
    }

    fn search_ops(&self) -> u64 {
        u64::from((self.exact.len().max(1) as u64).ilog2()) + 1
    }

    fn fold_digest(&self, d: &mut Digest) {
        self.any.fold_digest(d);
        d.write_u64(self.exact.len() as u64);
        for (k, v) in &self.exact {
            d.write_str(k);
            v.fold_digest(d);
        }
    }
}

/// SNI dimension: exact server names plus label-boundary wildcard
/// suffixes (`.example.com` matches `a.example.com`, not `example.com`).
#[derive(Debug, Clone)]
struct SniTable {
    any: RuleSet,
    exact: BTreeMap<String, RuleSet>,
    suffix: BTreeMap<String, RuleSet>,
}

impl SniTable {
    fn mask(&self, sni: Option<&str>) -> RuleSet {
        let mut m = self.any.clone();
        if let Some(name) = sni {
            if let Some(e) = self.exact.get(name) {
                m.or_with(e);
            }
            if !self.suffix.is_empty() {
                for (i, c) in name.char_indices() {
                    if c == '.' {
                        if let Some(s) = self.suffix.get(&name[i..]) {
                            m.or_with(s);
                        }
                    }
                }
            }
        }
        m
    }

    /// One exact probe plus one probe per label boundary (bounded by the
    /// name length; budgeted here at the DNS label max of 8 boundaries).
    fn search_ops(&self) -> u64 {
        let per = u64::from(((self.exact.len() + self.suffix.len()).max(1) as u64).ilog2()) + 1;
        per * 9
    }

    fn fold_digest(&self, d: &mut Digest) {
        self.any.fold_digest(d);
        d.write_u64(self.exact.len() as u64);
        for (k, v) in &self.exact {
            d.write_str(k);
            v.fold_digest(d);
        }
        d.write_u64(self.suffix.len() as u64);
        for (k, v) in &self.suffix {
            d.write_str(k);
            v.fold_digest(d);
        }
    }
}

/// One path-trie node: byte-labelled children plus the ancestor-cumulative
/// candidate set (every rule whose prefix covers paths through this node).
#[derive(Debug, Clone)]
struct PathNode {
    children: BTreeMap<u8, usize>,
    cum: RuleSet,
}

/// Path-prefix byte trie; the deepest node reached on a walk already
/// holds the full candidate set, so no backtracking is needed.
#[derive(Debug, Clone)]
struct PathTrie {
    nodes: Vec<PathNode>,
}

impl PathTrie {
    /// Build from `(rule index, prefix)` pairs; an empty prefix matches
    /// every path (lands in the root's cumulative set).
    fn build(n: usize, prefixes: &[(usize, &str)]) -> PathTrie {
        let mut nodes = vec![PathNode { children: BTreeMap::new(), cum: RuleSet::empty(n) }];
        for &(i, prefix) in prefixes {
            let mut cur = 0usize;
            for &b in prefix.as_bytes() {
                let next = match nodes[cur].children.get(&b) {
                    Some(&c) => c,
                    None => {
                        let c = nodes.len();
                        nodes.push(PathNode { children: BTreeMap::new(), cum: RuleSet::empty(n) });
                        nodes[cur].children.insert(b, c);
                        c
                    }
                };
                cur = next;
            }
            nodes[cur].cum.set(i);
        }
        // Children are always created after their parent, so an in-order
        // pass pushes ancestor sets down in one sweep.
        for i in 0..nodes.len() {
            let parent = nodes[i].cum.clone();
            let kids: Vec<usize> = nodes[i].children.values().copied().collect();
            for k in kids {
                nodes[k].cum.or_with(&parent);
            }
        }
        PathTrie { nodes }
    }

    fn lookup(&self, path: &str) -> &RuleSet {
        let mut cur = 0usize;
        for &b in path.as_bytes() {
            match self.nodes[cur].children.get(&b) {
                Some(&c) => cur = c,
                None => break,
            }
        }
        &self.nodes[cur].cum
    }

    /// A walk costs at most one map probe per prefix byte.
    fn search_ops(&self) -> u64 {
        crate::spec::MAX_PATH_PREFIX_BYTES as u64
    }

    fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            d.write_u64(node.children.len() as u64);
            for (&b, &c) in &node.children {
                d.write_u64(b as u64).write_u64(c as u64);
            }
            node.cum.fold_digest(d);
        }
    }
}

/// One header-predicate slot: `auto` admits rules with fewer predicates
/// than this slot's index; the maps admit rules whose slot predicate is
/// satisfied by some request header.
#[derive(Debug, Clone)]
struct HeaderSlot {
    auto: RuleSet,
    /// Presence-only predicates, keyed by lowercase header name.
    present: BTreeMap<String, RuleSet>,
    /// Name+value predicates, keyed by (lowercase name, value).
    exact: BTreeMap<(String, String), RuleSet>,
}

impl HeaderSlot {
    fn mask(&self, headers: &[(&str, &str)]) -> RuleSet {
        let mut m = self.auto.clone();
        for &(name, value) in headers {
            let lower = name.to_ascii_lowercase();
            if let Some(p) = self.present.get(&lower) {
                m.or_with(p);
            }
            if let Some(e) = self.exact.get(&(lower, value.to_string())) {
                m.or_with(e);
            }
        }
        m
    }

    fn search_ops(&self) -> u64 {
        u64::from(((self.present.len() + self.exact.len()).max(1) as u64).ilog2()) + 1
    }

    fn fold_digest(&self, d: &mut Digest) {
        self.auto.fold_digest(d);
        d.write_u64(self.present.len() as u64);
        for (k, v) in &self.present {
            d.write_str(k);
            v.fold_digest(d);
        }
        d.write_u64(self.exact.len() as u64);
        for ((k, val), v) in &self.exact {
            d.write_str(k).write_str(val);
            v.fold_digest(d);
        }
    }
}

/// One tenant's rules compiled into flat dimension tables.
#[derive(Debug, Clone)]
pub struct CompiledTenant {
    /// Rule count.
    n: usize,
    /// Per-rule verdicts, indexed by rule position.
    actions: Vec<PolicyVerdict>,
    /// Rules carrying L7 predicates (undecidable on the node L4 path).
    l7_rules: RuleSet,
    src: IntervalTable,
    ports: IntervalTable,
    idents: IntervalTable,
    methods: MapTable,
    path: PathTrie,
    sni: SniTable,
    headers: Vec<HeaderSlot>,
    default_action: PolicyVerdict,
}

impl CompiledTenant {
    /// The compiled form of a rule-free policy: every lookup yields
    /// `default_action`. Infallible, unlike [`CompiledTenant::compile`].
    pub fn empty(default_action: PolicyVerdict) -> CompiledTenant {
        CompiledTenant {
            n: 0,
            actions: Vec::new(),
            l7_rules: RuleSet::empty(0),
            src: IntervalTable::build(0, &[]),
            ports: IntervalTable::build(0, &[]),
            idents: IntervalTable::build(0, &[]),
            methods: MapTable { any: RuleSet::empty(0), exact: BTreeMap::new() },
            path: PathTrie::build(0, &[]),
            sni: SniTable {
                any: RuleSet::empty(0),
                exact: BTreeMap::new(),
                suffix: BTreeMap::new(),
            },
            headers: Vec::new(),
            default_action,
        }
    }

    /// Compile one tenant policy; validation failures reject the whole
    /// spec (the caller NACKs, nothing is partially applied).
    pub fn compile(tp: &TenantPolicy) -> Result<CompiledTenant, PolicyRejection> {
        validate_tenant(tp)?;
        let n = tp.rules.len();
        let mut actions = Vec::with_capacity(n);
        let mut l7_rules = RuleSet::empty(n);
        let mut src_ranges = Vec::with_capacity(n);
        let mut port_ranges = Vec::with_capacity(n);
        let mut ident_ranges = Vec::with_capacity(n);
        let mut method_any = RuleSet::empty(n);
        let mut method_exact: BTreeMap<String, RuleSet> = BTreeMap::new();
        let mut prefixes: Vec<(usize, &str)> = Vec::new();
        let mut sni_any = RuleSet::empty(n);
        let mut sni_exact: BTreeMap<String, RuleSet> = BTreeMap::new();
        let mut sni_suffix: BTreeMap<String, RuleSet> = BTreeMap::new();
        let mut slots: Vec<HeaderSlot> = (0..crate::spec::MAX_HEADER_PREDICATES)
            .map(|_| HeaderSlot {
                auto: RuleSet::empty(n),
                present: BTreeMap::new(),
                exact: BTreeMap::new(),
            })
            .collect();

        for (i, r) in tp.rules.iter().enumerate() {
            actions.push(r.action);
            if r.has_l7_predicates() {
                l7_rules.set(i);
            }
            src_ranges.push(match r.source_cidr {
                Some(c) => {
                    let (lo, hi) = c.range();
                    vec![(lo as u64, hi as u64)]
                }
                None => Vec::new(),
            });
            port_ranges.push(match r.dest_ports {
                Some(p) => vec![(p.lo as u64, p.hi as u64)],
                None => Vec::new(),
            });
            ident_ranges.push(r.source_identities.iter().map(|&id| (id, id)).collect());
            if r.methods.is_empty() {
                method_any.set(i);
            } else {
                for m in &r.methods {
                    method_exact.entry(m.clone()).or_insert_with(|| RuleSet::empty(n)).set(i);
                }
            }
            prefixes.push((i, r.path_prefix.as_str()));
            match &r.sni {
                None => sni_any.set(i),
                Some(SniMatch::Exact(s)) => {
                    sni_exact.entry(s.clone()).or_insert_with(|| RuleSet::empty(n)).set(i);
                }
                Some(SniMatch::Suffix(s)) => {
                    sni_suffix.entry(s.clone()).or_insert_with(|| RuleSet::empty(n)).set(i);
                }
            }
            // Canonical predicate order makes the slot assignment (and the
            // digest) independent of how the operator listed headers.
            let mut preds: Vec<(String, Option<&String>)> = r
                .headers
                .iter()
                .map(|h| (h.name.to_ascii_lowercase(), h.value.as_ref()))
                .collect();
            preds.sort();
            for (j, slot) in slots.iter_mut().enumerate() {
                match preds.get(j) {
                    None => slot.auto.set(i),
                    Some((name, None)) => {
                        slot.present
                            .entry(name.clone())
                            .or_insert_with(|| RuleSet::empty(n))
                            .set(i);
                    }
                    Some((name, Some(v))) => {
                        slot.exact
                            .entry((name.clone(), (*v).clone()))
                            .or_insert_with(|| RuleSet::empty(n))
                            .set(i);
                    }
                }
            }
        }

        Ok(CompiledTenant {
            n,
            actions,
            l7_rules,
            src: IntervalTable::build(n, &src_ranges),
            ports: IntervalTable::build(n, &port_ranges),
            idents: IntervalTable::build(n, &ident_ranges),
            methods: MapTable { any: method_any, exact: method_exact },
            path: PathTrie::build(n, &prefixes),
            sni: SniTable { any: sni_any, exact: sni_exact, suffix: sni_suffix },
            headers: slots,
            default_action: tp.default_action,
        })
    }

    /// Candidate mask from the L4 dimensions alone.
    fn l4_mask(&self, ctx: &L4Ctx) -> RuleSet {
        let mut m = self.src.lookup(ctx.src_ip as u64).clone();
        m.and_with(self.ports.lookup(ctx.dst_port as u64));
        m.and_with(self.idents.lookup(ctx.identity));
        m
    }

    /// The node L4 path's verdict. The full L7 match mask is always a
    /// subset of the L4 mask (L7 dimensions only narrow it), so an empty
    /// L4 candidate set means the default verdict is final.
    pub fn l4_verdict(&self, ctx: &L4Ctx) -> L4Verdict {
        match self.l4_mask(ctx).first_set() {
            None => match self.default_action {
                PolicyVerdict::Allow => L4Verdict::Allow,
                PolicyVerdict::Deny => L4Verdict::Deny,
            },
            Some(i) if self.l7_rules.contains(i) => L4Verdict::NeedsL7,
            Some(i) => match self.actions[i] {
                PolicyVerdict::Allow => L4Verdict::Allow,
                PolicyVerdict::Deny => L4Verdict::Deny,
            },
        }
    }

    /// Index of the first matching rule under full L4+L7 context.
    pub fn l7_match(&self, l4: &L4Ctx, l7: &L7Ctx<'_>) -> Option<usize> {
        let mut m = self.l4_mask(l4);
        m.and_with(&self.methods.mask(l7.method));
        m.and_with(self.path.lookup(l7.path));
        m.and_with(&self.sni.mask(l7.sni));
        for slot in &self.headers {
            m.and_with(&slot.mask(l7.headers));
        }
        m.first_set()
    }

    /// The gateway L7 path's verdict.
    pub fn l7_verdict(&self, l4: &L4Ctx, l7: &L7Ctx<'_>) -> PolicyVerdict {
        match self.l7_match(l4, l7) {
            Some(i) => self.actions[i],
            None => self.default_action,
        }
    }

    /// Number of rules compiled in.
    pub fn rule_count(&self) -> usize {
        self.n
    }

    /// Deterministic per-lookup cost bound: binary-search comparisons per
    /// dimension plus the bitmask word operations — compare against the
    /// reference matcher's O(rules) scan.
    pub fn lookup_ops(&self) -> u64 {
        let searches = self.src.search_ops()
            + self.ports.search_ops()
            + self.idents.search_ops()
            + self.methods.search_ops()
            + self.path.search_ops()
            + self.sni.search_ops()
            + self.headers.iter().map(HeaderSlot::search_ops).sum::<u64>();
        let dims = 6 + self.headers.len() as u64;
        searches + dims * self.l7_rules.word_count().max(1) as u64
    }

    /// Fold every compiled table into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.n as u64);
        for &a in &self.actions {
            d.write_u64(verdict_tag(a));
        }
        self.l7_rules.fold_digest(d);
        self.src.fold_digest(d);
        self.ports.fold_digest(d);
        self.idents.fold_digest(d);
        self.methods.fold_digest(d);
        self.path.fold_digest(d);
        self.sni.fold_digest(d);
        d.write_u64(self.headers.len() as u64);
        for slot in &self.headers {
            slot.fold_digest(d);
        }
        d.write_u64(verdict_tag(self.default_action));
    }
}

/// A whole compiled spec: per-tenant tables keyed by [`TenantId`]. A
/// lookup selects the caller's tenant first, so no rule bit of another
/// tenant is ever consulted — isolation is structural.
#[derive(Debug, Clone)]
pub struct CompiledPolicySet {
    version: u64,
    tenants: BTreeMap<TenantId, CompiledTenant>,
}

impl CompiledPolicySet {
    /// Validate and compile a full spec; any rejection NACKs the whole
    /// push.
    pub fn compile(spec: &PolicySpec) -> Result<CompiledPolicySet, PolicyRejection> {
        let mut tenants = BTreeMap::new();
        for tp in &spec.tenants {
            if tenants.contains_key(&tp.tenant) {
                return Err(PolicyRejection::DuplicateTenant(tp.tenant));
            }
            tenants.insert(tp.tenant, CompiledTenant::compile(tp)?);
        }
        Ok(CompiledPolicySet { version: spec.version, tenants })
    }

    /// An empty set at version 0 (deny-all for every tenant).
    pub fn empty() -> CompiledPolicySet {
        CompiledPolicySet { version: 0, tenants: BTreeMap::new() }
    }

    /// The spec version this was compiled from.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// One tenant's compiled table.
    pub fn tenant(&self, t: TenantId) -> Option<&CompiledTenant> {
        self.tenants.get(&t)
    }

    /// Total rules across tenants.
    pub fn rule_count(&self) -> usize {
        self.tenants.values().map(CompiledTenant::rule_count).sum()
    }

    /// Node L4 verdict; a tenant with no policy is denied (zero trust).
    pub fn l4_verdict(&self, ctx: &L4Ctx) -> L4Verdict {
        match self.tenants.get(&ctx.tenant) {
            Some(t) => t.l4_verdict(ctx),
            None => L4Verdict::Deny,
        }
    }

    /// Gateway L7 match; `None` when no rule of the caller's tenant
    /// matches (or the tenant has no policy).
    pub fn l7_match(&self, l4: &L4Ctx, l7: &L7Ctx<'_>) -> Option<usize> {
        self.tenants.get(&l4.tenant).and_then(|t| t.l7_match(l4, l7))
    }

    /// Gateway L7 verdict; a tenant with no policy is denied (zero trust).
    pub fn l7_verdict(&self, l4: &L4Ctx, l7: &L7Ctx<'_>) -> PolicyVerdict {
        match self.tenants.get(&l4.tenant) {
            Some(t) => t.l7_verdict(l4, l7),
            None => PolicyVerdict::Deny,
        }
    }

    /// Fold every tenant table into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.version).write_u64(self.tenants.len() as u64);
        for (t, c) in &self.tenants {
            d.write_u64(t.0 as u64);
            c.fold_digest(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Cidr, PolicyRule, SniMatch};
    use canal_net::VpcId;

    fn l4(tenant: u32, src_ip: u32, dst_port: u16, identity: u64) -> L4Ctx {
        L4Ctx { tenant: TenantId(tenant), vpc: VpcId(tenant), src_ip, dst_port, identity }
    }

    fn tenant_policy(rules: Vec<PolicyRule>) -> TenantPolicy {
        TenantPolicy {
            tenant: TenantId(1),
            vpc: VpcId(1),
            rules,
            default_action: PolicyVerdict::Deny,
        }
    }

    #[test]
    fn ruleset_first_set_and_tail_masking() {
        let mut s = RuleSet::empty(70);
        assert_eq!(s.first_set(), None);
        s.set(65);
        s.set(3);
        assert_eq!(s.first_set(), Some(3));
        assert!(s.contains(65));
        let f = RuleSet::full(70);
        assert!(f.contains(69));
        assert!(!f.contains(70));
    }

    #[test]
    fn l4_only_rules_decide_on_the_node_path() {
        let tp = tenant_policy(vec![
            PolicyRule::deny().with_source_cidr(Cidr::new(0x0A00_C800, 24)), // 10.0.200.0/24
            PolicyRule::allow(),
        ]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.l4_verdict(&l4(1, 0x0A00_C805, 80, 0)), L4Verdict::Deny);
        assert_eq!(c.l4_verdict(&l4(1, 0x0A00_0105, 80, 0)), L4Verdict::Allow);
    }

    #[test]
    fn l7_rules_defer_the_node_path() {
        let tp = tenant_policy(vec![
            PolicyRule::deny().with_method("DELETE").with_path_prefix("/admin"),
            PolicyRule::allow(),
        ]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        // Rule 0 is an L4 candidate for every flow, so L4 must defer.
        assert_eq!(c.l4_verdict(&l4(1, 1, 80, 0)), L4Verdict::NeedsL7);
        assert_eq!(
            c.l7_verdict(&l4(1, 1, 80, 0), &L7Ctx::new("DELETE", "/admin/users")),
            PolicyVerdict::Deny
        );
        assert_eq!(
            c.l7_verdict(&l4(1, 1, 80, 0), &L7Ctx::new("GET", "/admin/users")),
            PolicyVerdict::Allow
        );
        assert_eq!(
            c.l7_verdict(&l4(1, 1, 80, 0), &L7Ctx::new("DELETE", "/api")),
            PolicyVerdict::Allow
        );
    }

    #[test]
    fn first_match_wins_over_later_rules() {
        let tp = tenant_policy(vec![
            PolicyRule::allow().with_ports(80, 80),
            PolicyRule::deny().with_ports(1, 1024),
        ]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.l4_verdict(&l4(1, 1, 80, 0)), L4Verdict::Allow);
        assert_eq!(c.l4_verdict(&l4(1, 1, 443, 0)), L4Verdict::Deny);
        assert_eq!(c.l4_verdict(&l4(1, 1, 2048, 0)), L4Verdict::Deny, "default deny");
    }

    #[test]
    fn sni_suffix_matches_on_label_boundaries_only() {
        let tp = tenant_policy(vec![
            PolicyRule::allow().with_sni(SniMatch::Suffix(".example.com".to_string())),
        ]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        let ctx = l4(1, 1, 443, 0);
        let l7 = |sni: &'static str| L7Ctx { method: "GET", path: "/", sni: Some(sni), headers: &[] };
        assert_eq!(c.l7_verdict(&ctx, &l7("a.example.com")), PolicyVerdict::Allow);
        assert_eq!(c.l7_verdict(&ctx, &l7("b.a.example.com")), PolicyVerdict::Allow);
        assert_eq!(c.l7_verdict(&ctx, &l7("example.com")), PolicyVerdict::Deny);
        assert_eq!(c.l7_verdict(&ctx, &l7("evilexample.com")), PolicyVerdict::Deny);
    }

    #[test]
    fn header_predicates_all_must_hold() {
        let tp = tenant_policy(vec![PolicyRule::allow()
            .with_header("x-team", Some("infra"))
            .with_header("x-trace", None)]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        let ctx = l4(1, 1, 80, 0);
        let verdict = |h: &[(&str, &str)]| {
            c.l7_verdict(&ctx, &L7Ctx { method: "GET", path: "/", sni: None, headers: h })
        };
        assert_eq!(verdict(&[("X-Team", "infra"), ("X-Trace", "1")]), PolicyVerdict::Allow);
        assert_eq!(verdict(&[("X-Team", "infra")]), PolicyVerdict::Deny);
        assert_eq!(verdict(&[("X-Team", "other"), ("X-Trace", "1")]), PolicyVerdict::Deny);
    }

    #[test]
    fn identity_dimension_gates_rules() {
        let tp = tenant_policy(vec![PolicyRule::allow().with_identities(&[100, 200])]);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(c.l4_verdict(&l4(1, 1, 80, 100)), L4Verdict::Allow);
        assert_eq!(c.l4_verdict(&l4(1, 1, 80, 200)), L4Verdict::Allow);
        assert_eq!(c.l4_verdict(&l4(1, 1, 80, 150)), L4Verdict::Deny);
    }

    #[test]
    fn unknown_tenant_is_denied() {
        let spec = PolicySpec { version: 1, tenants: vec![tenant_policy(vec![PolicyRule::allow()])] };
        let set = CompiledPolicySet::compile(&spec).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(set.l4_verdict(&l4(1, 1, 80, 0)), L4Verdict::Allow);
        assert_eq!(set.l4_verdict(&l4(9, 1, 80, 0)), L4Verdict::Deny);
        assert_eq!(
            set.l7_verdict(&l4(9, 1, 80, 0), &L7Ctx::new("GET", "/")),
            PolicyVerdict::Deny
        );
    }

    #[test]
    fn compile_digest_is_stable_and_content_sensitive() {
        let spec = PolicySpec {
            version: 3,
            tenants: vec![tenant_policy(vec![
                PolicyRule::deny().with_path_prefix("/admin"),
                PolicyRule::allow(),
            ])],
        };
        let a = CompiledPolicySet::compile(&spec).unwrap_or_else(|e| panic!("{e}"));
        let b = CompiledPolicySet::compile(&spec).unwrap_or_else(|e| panic!("{e}"));
        let mut da = Digest::new();
        a.fold_digest(&mut da);
        let mut db = Digest::new();
        b.fold_digest(&mut db);
        assert_eq!(da.value(), db.value());

        let mut spec2 = spec.clone();
        spec2.tenants[0].rules[0].path_prefix = "/api".to_string();
        let c = CompiledPolicySet::compile(&spec2).unwrap_or_else(|e| panic!("{e}"));
        let mut dc = Digest::new();
        c.fold_digest(&mut dc);
        assert_ne!(da.value(), dc.value());
    }

    #[test]
    fn lookup_ops_stay_logarithmic_in_rule_count() {
        let mut rules = Vec::new();
        for i in 0..1024u32 {
            rules.push(
                PolicyRule::allow()
                    .with_source_cidr(Cidr::new(0x0A00_0000 | (i << 8), 24))
                    .with_ports(1000, 1000 + (i % 64) as u16),
            );
        }
        let tp = tenant_policy(rules);
        let c = CompiledTenant::compile(&tp).unwrap_or_else(|e| panic!("{e}"));
        // Reference cost is one predicate check per rule; compiled cost is
        // binary searches plus word ops and must be well under that.
        assert!(c.lookup_ops() < 1024 / 2, "lookup_ops = {}", c.lookup_ops());
    }
}
