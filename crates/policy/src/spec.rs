//! The declarative policy model and its semantic validation.
//!
//! A [`PolicySpec`] is the unit the control plane versions and distributes:
//! one [`TenantPolicy`] per tenant, each an ordered list of [`PolicyRule`]s
//! with a default verdict (first match wins, mirroring the mesh's authz
//! semantics). [`validate`] is the semantic gate the gateway's
//! `ActivePolicy` runs before committing — a spec that fails it is NACKed
//! upstream, never applied (fail-static).

use canal_net::{TenantId, VpcId};
use canal_sim::Digest;
use std::fmt;

/// Hard cap on rules per tenant: bounds compiled-table memory and is a
/// semantic-rejection trigger, not a silent truncation.
pub const MAX_RULES_PER_TENANT: usize = 4096;
/// Hard cap on a path-prefix predicate, bytes. Together with
/// [`MAX_RULES_PER_TENANT`] this bounds the compiled path trie.
pub const MAX_PATH_PREFIX_BYTES: usize = 128;
/// Hard cap on header predicates per rule (the compiled form gives each
/// predicate a fixed slot).
pub const MAX_HEADER_PREDICATES: usize = 4;

/// Allow or deny a flow/request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Admit.
    Allow,
    /// Reject.
    Deny,
}

/// A source-address CIDR block over the tenant's (possibly overlapping)
/// VPC address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    /// Network base address (host bits must be zero).
    pub base: u32,
    /// Prefix length, `0..=32`.
    pub prefix_len: u8,
}

impl Cidr {
    /// Construct (not validated; see [`Cidr::is_canonical`]).
    pub const fn new(base: u32, prefix_len: u8) -> Self {
        Cidr { base, prefix_len }
    }

    /// The network mask.
    pub const fn mask(self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else if self.prefix_len >= 32 {
            u32::MAX
        } else {
            u32::MAX << (32 - self.prefix_len)
        }
    }

    /// Whether the prefix length is in range and no host bit is set.
    pub const fn is_canonical(self) -> bool {
        self.prefix_len <= 32 && (self.base & !self.mask()) == 0
    }

    /// Inclusive address range `[first, last]` the block covers.
    pub const fn range(self) -> (u32, u32) {
        (self.base, self.base | !self.mask())
    }

    /// Whether `ip` falls inside the block.
    pub const fn contains(self, ip: u32) -> bool {
        (ip & self.mask()) == self.base
    }
}

/// An inclusive destination-port range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRange {
    /// First port.
    pub lo: u16,
    /// Last port (inclusive). `lo > hi` is semantically invalid.
    pub hi: u16,
}

/// An SNI predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SniMatch {
    /// Exact server-name match.
    Exact(String),
    /// Wildcard suffix match: `Suffix(".example.com")` matches
    /// `a.example.com` but not `example.com` itself.
    Suffix(String),
}

/// One header predicate: some request header with this name must be
/// present, and when `value` is set, at least one of that header's values
/// must equal it exactly. Names compare case-insensitively (compiled to
/// lowercase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderPredicate {
    /// Header name.
    pub name: String,
    /// Required value (`None` = presence alone suffices).
    pub value: Option<String>,
}

/// One policy rule. Every predicate left empty/`None` matches anything;
/// a rule with only L4 predicates can be decided entirely on the node L4
/// path, while L7 predicates defer the verdict to the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    /// Source-address constraint.
    pub source_cidr: Option<Cidr>,
    /// Destination-port constraint.
    pub dest_ports: Option<PortRange>,
    /// Verified workload identities this rule applies to (empty = any).
    pub source_identities: Vec<u64>,
    /// HTTP method constraints (empty = any; tokens match exactly).
    pub methods: Vec<String>,
    /// Path-prefix constraint (empty = any).
    pub path_prefix: String,
    /// SNI constraint.
    pub sni: Option<SniMatch>,
    /// Header predicates (all must hold).
    pub headers: Vec<HeaderPredicate>,
    /// Verdict when the rule matches.
    pub action: PolicyVerdict,
}

impl PolicyRule {
    /// A match-everything rule with the given verdict.
    pub fn any(action: PolicyVerdict) -> Self {
        PolicyRule {
            source_cidr: None,
            dest_ports: None,
            source_identities: Vec::new(),
            methods: Vec::new(),
            path_prefix: String::new(),
            sni: None,
            headers: Vec::new(),
            action,
        }
    }

    /// A match-everything allow rule.
    pub fn allow() -> Self {
        Self::any(PolicyVerdict::Allow)
    }

    /// A match-everything deny rule.
    pub fn deny() -> Self {
        Self::any(PolicyVerdict::Deny)
    }

    /// Builder: constrain the source CIDR.
    pub fn with_source_cidr(mut self, cidr: Cidr) -> Self {
        self.source_cidr = Some(cidr);
        self
    }

    /// Builder: constrain the destination-port range (inclusive).
    pub fn with_ports(mut self, lo: u16, hi: u16) -> Self {
        self.dest_ports = Some(PortRange { lo, hi });
        self
    }

    /// Builder: constrain the verified source identities.
    pub fn with_identities(mut self, ids: &[u64]) -> Self {
        self.source_identities = ids.to_vec();
        self
    }

    /// Builder: add a method constraint.
    pub fn with_method(mut self, method: &str) -> Self {
        self.methods.push(method.to_string());
        self
    }

    /// Builder: constrain the path prefix.
    pub fn with_path_prefix(mut self, prefix: &str) -> Self {
        self.path_prefix = prefix.to_string();
        self
    }

    /// Builder: constrain the SNI.
    pub fn with_sni(mut self, sni: SniMatch) -> Self {
        self.sni = Some(sni);
        self
    }

    /// Builder: add a header predicate.
    pub fn with_header(mut self, name: &str, value: Option<&str>) -> Self {
        self.headers.push(HeaderPredicate {
            name: name.to_string(),
            value: value.map(str::to_string),
        });
        self
    }

    /// Whether the rule carries any L7 predicate (method/path/SNI/header) —
    /// such a rule cannot be decided on the node L4 path.
    pub fn has_l7_predicates(&self) -> bool {
        !self.methods.is_empty()
            || !self.path_prefix.is_empty()
            || self.sni.is_some()
            || !self.headers.is_empty()
    }

    /// Fold the rule content into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        match self.source_cidr {
            None => {
                d.write_u64(0);
            }
            Some(c) => {
                d.write_u64(1).write_u64(c.base as u64).write_u64(c.prefix_len as u64);
            }
        }
        match self.dest_ports {
            None => {
                d.write_u64(0);
            }
            Some(p) => {
                d.write_u64(1).write_u64(p.lo as u64).write_u64(p.hi as u64);
            }
        }
        d.write_u64(self.source_identities.len() as u64);
        for &id in &self.source_identities {
            d.write_u64(id);
        }
        d.write_u64(self.methods.len() as u64);
        for m in &self.methods {
            d.write_str(m);
        }
        d.write_str(&self.path_prefix);
        match &self.sni {
            None => {
                d.write_u64(0);
            }
            Some(SniMatch::Exact(s)) => {
                d.write_u64(1).write_str(s);
            }
            Some(SniMatch::Suffix(s)) => {
                d.write_u64(2).write_str(s);
            }
        }
        d.write_u64(self.headers.len() as u64);
        for h in &self.headers {
            d.write_str(&h.name);
            match &h.value {
                None => {
                    d.write_u64(0);
                }
                Some(v) => {
                    d.write_u64(1).write_str(v);
                }
            }
        }
        d.write_u64(verdict_tag(self.action));
    }
}

/// Digest tag for a verdict.
pub(crate) fn verdict_tag(v: PolicyVerdict) -> u64 {
    match v {
        PolicyVerdict::Allow => 1,
        PolicyVerdict::Deny => 2,
    }
}

/// One tenant's ordered rule list plus default verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The tenant's VPC (address spaces of different VPCs may overlap —
    /// carried for bookkeeping; matching is keyed by `tenant`).
    pub vpc: VpcId,
    /// Ordered rules, first match wins.
    pub rules: Vec<PolicyRule>,
    /// Verdict when no rule matches (zero-trust default is deny).
    pub default_action: PolicyVerdict,
}

impl TenantPolicy {
    /// An empty default-deny policy for a tenant.
    pub fn default_deny(tenant: TenantId, vpc: VpcId) -> Self {
        TenantPolicy {
            tenant,
            vpc,
            rules: Vec::new(),
            default_action: PolicyVerdict::Deny,
        }
    }

    /// Fold the tenant policy into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.tenant.0 as u64)
            .write_u64(self.vpc.0 as u64)
            .write_u64(self.rules.len() as u64);
        for r in &self.rules {
            r.fold_digest(d);
        }
        d.write_u64(verdict_tag(self.default_action));
    }
}

/// A versioned multi-tenant policy push: the unit the control plane
/// distributes and the rollout controller canaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicySpec {
    /// Monotone version from `VersionedConfigStore`.
    pub version: u64,
    /// Per-tenant policies.
    pub tenants: Vec<TenantPolicy>,
}

impl PolicySpec {
    /// Fold the spec into a digest (content- and order-sensitive).
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.version).write_u64(self.tenants.len() as u64);
        for t in &self.tenants {
            t.fold_digest(d);
        }
    }
}

/// Why a pushed spec was rejected instead of compiled — each variant is a
/// NACK the data plane reports upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyRejection {
    /// Two tenant policies name the same tenant.
    DuplicateTenant(TenantId),
    /// A tenant exceeds [`MAX_RULES_PER_TENANT`].
    TooManyRules {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule count.
        count: usize,
    },
    /// A port range with `lo > hi` can never match — an operator error,
    /// not an empty set by intent.
    InvertedPortRange {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// A CIDR with host bits set below the mask, or a prefix over 32.
    BadCidr {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// A path prefix over [`MAX_PATH_PREFIX_BYTES`].
    PathPrefixTooLong {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// More than [`MAX_HEADER_PREDICATES`] header predicates on one rule.
    TooManyHeaderPredicates {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// A header predicate with an empty name.
    EmptyHeaderName {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// An empty method token.
    EmptyMethod {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
    /// An empty SNI pattern.
    EmptySni {
        /// Offending tenant.
        tenant: TenantId,
        /// Rule index.
        rule: usize,
    },
}

impl fmt::Display for PolicyRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyRejection::DuplicateTenant(t) => write!(f, "duplicate tenant policy for {t}"),
            PolicyRejection::TooManyRules { tenant, count } => {
                write!(f, "{tenant}: {count} rules over the {MAX_RULES_PER_TENANT} cap")
            }
            PolicyRejection::InvertedPortRange { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: inverted port range")
            }
            PolicyRejection::BadCidr { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: non-canonical CIDR")
            }
            PolicyRejection::PathPrefixTooLong { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: path prefix over {MAX_PATH_PREFIX_BYTES} bytes")
            }
            PolicyRejection::TooManyHeaderPredicates { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: over {MAX_HEADER_PREDICATES} header predicates")
            }
            PolicyRejection::EmptyHeaderName { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: empty header name")
            }
            PolicyRejection::EmptyMethod { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: empty method token")
            }
            PolicyRejection::EmptySni { tenant, rule } => {
                write!(f, "{tenant} rule {rule}: empty SNI pattern")
            }
        }
    }
}

/// Validate one tenant's rules (shared by [`validate`] and the per-tenant
/// compiler).
pub fn validate_tenant(tp: &TenantPolicy) -> Result<(), PolicyRejection> {
    if tp.rules.len() > MAX_RULES_PER_TENANT {
        return Err(PolicyRejection::TooManyRules {
            tenant: tp.tenant,
            count: tp.rules.len(),
        });
    }
    for (i, r) in tp.rules.iter().enumerate() {
        if let Some(c) = r.source_cidr {
            if !c.is_canonical() {
                return Err(PolicyRejection::BadCidr { tenant: tp.tenant, rule: i });
            }
        }
        if let Some(p) = r.dest_ports {
            if p.lo > p.hi {
                return Err(PolicyRejection::InvertedPortRange { tenant: tp.tenant, rule: i });
            }
        }
        if r.path_prefix.len() > MAX_PATH_PREFIX_BYTES {
            return Err(PolicyRejection::PathPrefixTooLong { tenant: tp.tenant, rule: i });
        }
        if r.headers.len() > MAX_HEADER_PREDICATES {
            return Err(PolicyRejection::TooManyHeaderPredicates { tenant: tp.tenant, rule: i });
        }
        if r.headers.iter().any(|h| h.name.is_empty()) {
            return Err(PolicyRejection::EmptyHeaderName { tenant: tp.tenant, rule: i });
        }
        if r.methods.iter().any(|m| m.is_empty()) {
            return Err(PolicyRejection::EmptyMethod { tenant: tp.tenant, rule: i });
        }
        match &r.sni {
            Some(SniMatch::Exact(s)) | Some(SniMatch::Suffix(s)) if s.is_empty() => {
                return Err(PolicyRejection::EmptySni { tenant: tp.tenant, rule: i });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Semantic validation of a whole spec: the gate `ActivePolicy` runs
/// before committing. Pure — rejection means NACK, never partial apply.
pub fn validate(spec: &PolicySpec) -> Result<(), PolicyRejection> {
    let mut seen = std::collections::BTreeSet::new();
    for tp in &spec.tenants {
        if !seen.insert(tp.tenant) {
            return Err(PolicyRejection::DuplicateTenant(tp.tenant));
        }
        validate_tenant(tp)?;
    }
    Ok(())
}

/// The L4 flow context both datapaths evaluate: who is sending what where,
/// as established by the vSwitch (tenant/VPC) and the mTLS layer
/// (identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L4Ctx {
    /// Tenant the flow belongs to (from the VXLAN VNI).
    pub tenant: TenantId,
    /// The tenant VPC the source address is scoped to.
    pub vpc: VpcId,
    /// Source IPv4 address (big-endian u32, VPC-scoped).
    pub src_ip: u32,
    /// Destination port.
    pub dst_port: u16,
    /// Verified workload identity (0 = unverified).
    pub identity: u64,
}

/// The L7 request context the gateway evaluates on top of [`L4Ctx`].
#[derive(Debug, Clone, Copy)]
pub struct L7Ctx<'a> {
    /// HTTP method token.
    pub method: &'a str,
    /// Request path (query already stripped by the caller).
    pub path: &'a str,
    /// TLS SNI, when the connection carried one.
    pub sni: Option<&'a str>,
    /// Request headers as `(name, value)` pairs.
    pub headers: &'a [(&'a str, &'a str)],
}

impl<'a> L7Ctx<'a> {
    /// A minimal context: method and path only.
    pub fn new(method: &'a str, path: &'a str) -> Self {
        L7Ctx {
            method,
            path,
            sni: None,
            headers: &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1() -> TenantId {
        TenantId(1)
    }

    #[test]
    fn cidr_canonical_and_range() {
        let c = Cidr::new(0x0A00_0000, 16); // 10.0.0.0/16
        assert!(c.is_canonical());
        assert_eq!(c.range(), (0x0A00_0000, 0x0A00_FFFF));
        assert!(c.contains(0x0A00_1234));
        assert!(!c.contains(0x0A01_0000));
        assert!(!Cidr::new(0x0A00_0001, 16).is_canonical(), "host bits set");
        assert!(!Cidr::new(0, 33).is_canonical());
        assert!(Cidr::new(0, 0).is_canonical(), "whole space");
        assert_eq!(Cidr::new(0, 0).range(), (0, u32::MAX));
    }

    #[test]
    fn validation_rejects_semantic_poison() {
        let mut tp = TenantPolicy::default_deny(t1(), VpcId(1));
        tp.rules.push(PolicyRule::allow().with_ports(443, 80));
        let spec = PolicySpec { version: 1, tenants: vec![tp] };
        assert_eq!(
            validate(&spec),
            Err(PolicyRejection::InvertedPortRange { tenant: t1(), rule: 0 })
        );
    }

    #[test]
    fn validation_rejects_duplicate_tenant_and_bad_cidr() {
        let a = TenantPolicy::default_deny(t1(), VpcId(1));
        let b = TenantPolicy::default_deny(t1(), VpcId(2));
        let spec = PolicySpec { version: 1, tenants: vec![a.clone(), b] };
        assert_eq!(validate(&spec), Err(PolicyRejection::DuplicateTenant(t1())));

        let mut bad = a;
        bad.rules.push(PolicyRule::allow().with_source_cidr(Cidr::new(0x0A00_0001, 24)));
        let spec = PolicySpec { version: 1, tenants: vec![bad] };
        assert_eq!(validate(&spec), Err(PolicyRejection::BadCidr { tenant: t1(), rule: 0 }));
    }

    #[test]
    fn validation_enforces_caps() {
        let mut tp = TenantPolicy::default_deny(t1(), VpcId(1));
        let mut r = PolicyRule::allow();
        for i in 0..=MAX_HEADER_PREDICATES {
            r = r.with_header(&format!("x-h{i}"), None);
        }
        tp.rules.push(r);
        assert_eq!(
            validate_tenant(&tp),
            Err(PolicyRejection::TooManyHeaderPredicates { tenant: t1(), rule: 0 })
        );

        let mut long = TenantPolicy::default_deny(t1(), VpcId(1));
        long.rules
            .push(PolicyRule::allow().with_path_prefix(&"a".repeat(MAX_PATH_PREFIX_BYTES + 1)));
        assert_eq!(
            validate_tenant(&long),
            Err(PolicyRejection::PathPrefixTooLong { tenant: t1(), rule: 0 })
        );
    }

    #[test]
    fn digest_is_content_sensitive() {
        let mut a = PolicySpec { version: 1, tenants: Vec::new() };
        let mut tp = TenantPolicy::default_deny(t1(), VpcId(1));
        tp.rules.push(PolicyRule::allow().with_path_prefix("/api"));
        a.tenants.push(tp);
        let mut b = a.clone();
        let mut da = Digest::new();
        a.fold_digest(&mut da);
        let mut db = Digest::new();
        b.fold_digest(&mut db);
        assert_eq!(da.value(), db.value());
        b.tenants[0].rules[0].action = PolicyVerdict::Deny;
        let mut dc = Digest::new();
        b.fold_digest(&mut dc);
        assert_ne!(da.value(), dc.value());
    }
}
