//! # canal-policy
//!
//! The multi-tenant network-policy plane (DESIGN.md §14): tenant-scoped
//! L4–L7 policy specs compiled into a flat match structure the datapath can
//! evaluate in O(log n) per lookup, with no per-rule scan.
//!
//! * [`spec`] — the declarative model: [`PolicyRule`]s over source CIDR,
//!   destination-port range, verified workload identity, HTTP method, path
//!   prefix, SNI and header predicates, grouped per tenant into a versioned
//!   [`PolicySpec`], plus semantic validation ([`validate`]) whose
//!   rejections the gateway NACKs instead of applying.
//! * [`compile`] — the compiled form: per-dimension disjoint-interval
//!   tables (binary search over segment boundaries), a path-prefix byte
//!   trie and exact-match maps, each yielding a per-rule bitmask; a verdict
//!   is the AND of the dimension masks and the first set bit
//!   (first-match-wins). The top level is keyed by [`TenantId`], so a
//!   packet can never reach another tenant's rules — isolation is
//!   structural, not filtered.
//! * [`reference`] — the naive scan-all-rules matcher the differential
//!   property tests compare against bit for bit.
//! * [`store`] — the bounded version archive the rollout controller's
//!   rollback targets are materialized from.
//!
//! Everything is deterministic: no wall clocks, no ambient randomness, and
//! every stateful struct folds into a [`canal_sim::Digest`].
//!
//! [`TenantId`]: canal_net::TenantId
//! [`validate`]: spec::validate

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod reference;
pub mod spec;
pub mod store;

pub use compile::{CompiledPolicySet, CompiledTenant, L4Verdict, RuleSet};
pub use reference::{reference_l4_verdict, reference_l7_match, reference_l7_verdict};
pub use spec::{
    validate, Cidr, HeaderPredicate, L4Ctx, L7Ctx, PolicyRejection, PolicyRule, PolicySpec,
    PolicyVerdict, PortRange, SniMatch, TenantPolicy, MAX_HEADER_PREDICATES,
    MAX_PATH_PREFIX_BYTES, MAX_RULES_PER_TENANT,
};
pub use store::{PolicyStore, POLICY_RETAIN_CAP};
