//! Datapath resilience: deadlines, retries, hedging, outlier ejection,
//! DNS degradation (§4.2 / Fig. 8).
//!
//! The paper's availability story is that Canal's *datapath* masks faults
//! in O(retry) time while the control plane's detection/push loop is still
//! catching up. This module is that layer: a [`ResilientDispatcher`] wraps
//! a single dispatch attempt (normally `Gateway::handle_request_avoiding`)
//! in a per-request deadline, capped exponential backoff with
//! deterministic jitter, optional hedged retries steered away from the
//! backend that just failed, a per-backend outlier-ejection circuit
//! breaker ([`OutlierDetector`]), and graceful degradation onto the
//! `canal_cluster::dns` failover path when a whole backend is ejected.
//!
//! Every knob lives in [`ResilienceConfig`] so sidecar/ambient baselines
//! can run the *same fault plan* with their own policies. All randomness
//! (jitter) comes from a caller-supplied `SimRng` — the dispatcher never
//! seeds its own, per the determinism contract.
//!
//! Retries happen in *virtual time*: the dispatcher advances a local
//! attempt clock by the backoff/hedge interval and hands it to the attempt
//! closure, so a chaos run can overlay ground-truth fault state at the
//! exact instant of each attempt.

use crate::certs::CertFault;
use crate::gateway::{BackendId, GatewayError, GatewayServed};
use canal_cluster::dns::DnsView;
use canal_net::VpcAddr;
use canal_sim::{Digest, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Tunable resilience policy. Each field is one knob so baselines compare
/// under identical fault plans.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Total per-request budget; attempts stop once it is exhausted.
    pub request_deadline: SimDuration,
    /// Maximum attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// First retry backoff; doubles each attempt.
    pub base_backoff: SimDuration,
    /// Backoff cap.
    pub max_backoff: SimDuration,
    /// Jitter fraction `j` in `[0, 1)`: each backoff is scaled by a
    /// deterministic draw from `[1-j, 1]`.
    pub jitter: f64,
    /// Hedge delay: when set and shorter than the backoff, the retry fires
    /// after this long instead (against a different backend), trading
    /// duplicate work for tail latency.
    pub hedge_after: Option<SimDuration>,
    /// Whether the per-backend outlier-ejection circuit breaker runs.
    pub outlier_ejection: bool,
    /// Consecutive failures that trip ejection.
    pub eject_consecutive_failures: u32,
    /// Size of the sliding outcome window per backend.
    pub eject_window: u32,
    /// Minimum success rate over a full window; below it the backend is
    /// ejected even without a consecutive-failure burst.
    pub eject_min_success_rate: f64,
    /// How long an ejected backend stays out before probing again.
    pub ejection_duration: SimDuration,
    /// Whether ejections are published to the DNS failover path
    /// ([`ResilientDispatcher::sync_dns`]).
    pub dns_failover: bool,
}

impl ResilienceConfig {
    /// Canal's paper-default policy: tight deadline, fast retries with
    /// hedging, ejection wired into DNS failover.
    pub fn paper_canal() -> Self {
        ResilienceConfig {
            request_deadline: SimDuration::from_secs(1),
            max_attempts: 6,
            base_backoff: SimDuration::from_millis(10),
            max_backoff: SimDuration::from_millis(160),
            jitter: 0.5,
            hedge_after: Some(SimDuration::from_millis(30)),
            outlier_ejection: true,
            eject_consecutive_failures: 5,
            eject_window: 20,
            eject_min_success_rate: 0.5,
            ejection_duration: SimDuration::from_secs(10),
            dns_failover: true,
        }
    }

    /// Ambient-style baseline: retries with backoff but no hedging, no
    /// outlier ejection, no DNS degradation — recovery waits on the
    /// control plane.
    pub fn ambient_baseline() -> Self {
        ResilienceConfig {
            hedge_after: None,
            outlier_ejection: false,
            dns_failover: false,
            ..Self::paper_canal()
        }
    }

    /// Sidecar-style baseline: a single attempt per request; masking a
    /// fault requires the control plane to detect it and push new config.
    pub fn sidecar_baseline() -> Self {
        ResilienceConfig {
            max_attempts: 1,
            ..Self::ambient_baseline()
        }
    }

    /// Everything off (one attempt, no breaker) — the null policy.
    pub fn disabled() -> Self {
        ResilienceConfig {
            max_attempts: 1,
            hedge_after: None,
            outlier_ejection: false,
            dns_failover: false,
            ..Self::paper_canal()
        }
    }
}

/// Per-backend sliding-window circuit breaker (consecutive-failure and
/// success-rate trips, timed ejection).
#[derive(Debug, Clone, Default)]
pub struct OutlierDetector {
    window: VecDeque<bool>,
    consecutive_failures: u32,
    ejected_until: Option<SimTime>,
    ejections: u64,
}

impl OutlierDetector {
    /// Whether the backend is currently ejected.
    pub fn is_ejected(&self, now: SimTime) -> bool {
        self.ejected_until.is_some_and(|until| now < until)
    }

    /// Times this backend has been ejected.
    pub fn ejections(&self) -> u64 {
        self.ejections
    }

    fn push_outcome(&mut self, ok: bool, window: u32) {
        self.window.push_back(ok);
        while self.window.len() > window as usize {
            self.window.pop_front();
        }
    }

    fn record_success(&mut self, cfg: &ResilienceConfig) {
        self.consecutive_failures = 0;
        self.push_outcome(true, cfg.eject_window);
    }

    /// Record a failure; returns true when this trips a fresh ejection.
    fn record_failure(&mut self, now: SimTime, cfg: &ResilienceConfig) -> bool {
        self.consecutive_failures += 1;
        self.push_outcome(false, cfg.eject_window);
        if self.is_ejected(now) {
            return false;
        }
        let burst = self.consecutive_failures >= cfg.eject_consecutive_failures;
        let full = self.window.len() >= cfg.eject_window as usize;
        let rate_ok = if full {
            let ok = self.window.iter().filter(|&&b| b).count() as f64;
            ok / self.window.len() as f64 >= cfg.eject_min_success_rate
        } else {
            true
        };
        if burst || !rate_ok {
            self.ejected_until = Some(now + cfg.ejection_duration);
            self.ejections += 1;
            self.consecutive_failures = 0;
            self.window.clear();
            true
        } else {
            false
        }
    }
}

/// Why one dispatch attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptError {
    /// The gateway refused the request outright (nothing reached a
    /// backend, so no breaker bookkeeping applies).
    Rejected(GatewayError),
    /// The attempt reached this backend and the backend failed it (crash,
    /// packet loss, timeout) — feeds the backend's outlier detector.
    BackendFailure(BackendId),
    /// The backend refused the connection because it is *draining* (planned
    /// failover, see [`crate::drain`]). Steered away exactly like a
    /// failure, but it is **not** outlier evidence: a planned drain is the
    /// operator's choice, and counting its refusals would let every
    /// maintenance window trip an ejection storm across the fleet.
    BackendDraining(BackendId),
    /// The mTLS handshake for the attempt failed on certificate lifecycle
    /// grounds (typed via [`CertFault::try_from`] on the `MtlsError`).
    /// Expiry is retryable-after-refresh — one retry, representing the
    /// workload re-fetching its cert; revocation is terminal and is *not*
    /// retry fuel.
    Handshake(CertFault),
}

impl From<CertFault> for AttemptError {
    fn from(f: CertFault) -> Self {
        AttemptError::Handshake(f)
    }
}

/// The result of a resilient dispatch: what was served (if anything) and
/// how hard the dispatcher had to work for it.
#[derive(Debug, Clone, Copy)]
pub struct DispatchOutcome {
    /// The successful attempt, if one landed before the deadline.
    pub served: Option<GatewayServed>,
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Virtual time at which the final attempt resolved.
    pub completed_at: SimTime,
    /// Whether a hedge fired (retry accelerated below the backoff).
    pub hedged: bool,
    /// Whether the request died on its deadline rather than max-attempts.
    pub deadline_exceeded: bool,
}

/// Lifetime counters for the dispatcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceStats {
    /// Requests dispatched.
    pub requests: u64,
    /// Total attempts (≥ requests; the ratio is retry amplification).
    pub attempts: u64,
    /// Retries (attempts beyond the first per request).
    pub retries: u64,
    /// Hedged retries (fired early on the hedge timer).
    pub hedges: u64,
    /// Requests that ultimately succeeded.
    pub successes: u64,
    /// Requests that ultimately failed.
    pub failures: u64,
    /// Failures caused by deadline exhaustion.
    pub deadline_exceeded: u64,
    /// Circuit-breaker ejections tripped.
    pub ejections: u64,
    /// DNS health transitions published via [`ResilientDispatcher::sync_dns`].
    pub dns_flips: u64,
    /// Requests terminated by a retry-budget rejection from the overload
    /// layer (the rejection is terminal — no further retries fire).
    pub budget_rejected: u64,
    /// Expired-certificate handshake failures that triggered the single
    /// refresh-then-retry (each is one re-issuance round trip).
    pub cert_refreshes: u64,
    /// Requests terminated by a revoked certificate (terminal — revocation
    /// is not retry fuel).
    pub cert_revoked: u64,
    /// Connection refusals from *draining* backends. Steered around like
    /// failures but exempt from outlier-ejection evidence.
    pub drain_refusals: u64,
}

/// Point-in-time snapshot of the dispatcher's work counters, for
/// experiments that report resilience behavior without reaching into
/// [`ResilienceStats`] internals. Deltas between two snapshots are
/// per-window counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounters {
    /// Requests dispatched.
    pub requests: u64,
    /// Attempts made (requests + retries + hedges).
    pub attempts: u64,
    /// Hedged retries fired early on the hedge timer.
    pub hedges_fired: u64,
    /// Circuit-breaker ejections tripped.
    pub ejections: u64,
    /// DNS health flips published.
    pub dns_flips: u64,
    /// Requests that died on their deadline.
    pub deadline_misses: u64,
    /// Requests terminated by retry-budget rejection.
    pub budget_rejected: u64,
    /// Expired-cert refresh retries fired.
    pub cert_refreshes: u64,
    /// Requests terminated by revoked certificates.
    pub cert_revoked: u64,
    /// Draining-backend refusals steered around (never outlier evidence).
    pub drain_refusals: u64,
}

impl DispatchCounters {
    /// The counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &DispatchCounters) -> DispatchCounters {
        DispatchCounters {
            requests: self.requests - earlier.requests,
            attempts: self.attempts - earlier.attempts,
            hedges_fired: self.hedges_fired - earlier.hedges_fired,
            ejections: self.ejections - earlier.ejections,
            dns_flips: self.dns_flips - earlier.dns_flips,
            deadline_misses: self.deadline_misses - earlier.deadline_misses,
            budget_rejected: self.budget_rejected - earlier.budget_rejected,
            cert_refreshes: self.cert_refreshes - earlier.cert_refreshes,
            cert_revoked: self.cert_revoked - earlier.cert_revoked,
            drain_refusals: self.drain_refusals - earlier.drain_refusals,
        }
    }

    /// Attempts per request — the retry-amplification factor.
    pub fn amplification(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.attempts as f64 / self.requests as f64
        }
    }
}

/// The resilient request path: wraps per-attempt dispatch in deadlines,
/// retries, hedging and outlier ejection.
pub struct ResilientDispatcher {
    cfg: ResilienceConfig,
    rng: SimRng,
    // lint:allow(bounded-state) reason=one detector per backend in the registered topology
    detectors: BTreeMap<BackendId, OutlierDetector>,
    // lint:allow(bounded-state) reason=one health bit per backend in the registered topology
    dns_health: BTreeMap<BackendId, bool>,
    stats: ResilienceStats,
}

impl ResilientDispatcher {
    /// Build a dispatcher. `rng` is the caller's seeded stream (jitter
    /// draws); the dispatcher never constructs randomness of its own.
    pub fn new(cfg: ResilienceConfig, rng: SimRng) -> Self {
        ResilientDispatcher {
            cfg,
            rng,
            detectors: BTreeMap::new(),
            dns_health: BTreeMap::new(),
            stats: ResilienceStats::default(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> ResilienceConfig {
        self.cfg
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// Snapshot the work counters (see [`DispatchCounters`]).
    pub fn counters(&self) -> DispatchCounters {
        DispatchCounters {
            requests: self.stats.requests,
            attempts: self.stats.attempts,
            hedges_fired: self.stats.hedges,
            ejections: self.stats.ejections,
            dns_flips: self.stats.dns_flips,
            deadline_misses: self.stats.deadline_exceeded,
            budget_rejected: self.stats.budget_rejected,
            cert_refreshes: self.stats.cert_refreshes,
            cert_revoked: self.stats.cert_revoked,
            drain_refusals: self.stats.drain_refusals,
        }
    }

    /// Whether a backend is currently ejected by its circuit breaker.
    pub fn is_ejected(&self, now: SimTime, backend: BackendId) -> bool {
        self.detectors
            .get(&backend)
            .is_some_and(|d| d.is_ejected(now))
    }

    /// All currently-ejected backends.
    pub fn ejected_backends(&self, now: SimTime) -> Vec<BackendId> {
        self.detectors
            .iter()
            .filter(|(_, d)| d.is_ejected(now))
            .map(|(&b, _)| b)
            .collect()
    }

    fn backoff_before_attempt(&mut self, attempt: u32) -> (SimDuration, bool) {
        // attempt is the index of the attempt about to be made (2nd, 3rd…).
        let exp = attempt.saturating_sub(2).min(16);
        let mut backoff = self.cfg.base_backoff.times(1u64 << exp);
        if backoff > self.cfg.max_backoff {
            backoff = self.cfg.max_backoff;
        }
        let jittered = backoff.scale(self.rng.uniform(1.0 - self.cfg.jitter, 1.0));
        match self.cfg.hedge_after {
            Some(h) if h < jittered => (h, true),
            _ => (jittered, false),
        }
    }

    /// Dispatch one request resiliently. `attempt` is called once per
    /// attempt with the virtual attempt time and the backends to avoid
    /// (currently-ejected ones plus backends that already failed this
    /// request); it normally wraps `Gateway::handle_request_avoiding`.
    pub fn dispatch(
        &mut self,
        now: SimTime,
        mut attempt: impl FnMut(SimTime, &BTreeSet<BackendId>) -> Result<GatewayServed, AttemptError>,
    ) -> DispatchOutcome {
        self.stats.requests += 1;
        let deadline = now + self.cfg.request_deadline;
        let mut avoid: BTreeSet<BackendId> = if self.cfg.outlier_ejection {
            self.ejected_backends(now).into_iter().collect()
        } else {
            BTreeSet::new()
        };
        let mut t = now;
        let mut attempts = 0u32;
        let mut hedged = false;
        let mut refreshed_cert = false;
        let mut failed_here: BTreeSet<BackendId> = BTreeSet::new();
        loop {
            attempts += 1;
            self.stats.attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
            }
            match attempt(t, &avoid) {
                Ok(served) => {
                    if self.cfg.outlier_ejection {
                        self.detectors
                            .entry(served.backend)
                            .or_default()
                            .record_success(&self.cfg);
                    }
                    self.stats.successes += 1;
                    return DispatchOutcome {
                        served: Some(served),
                        attempts,
                        completed_at: t,
                        hedged,
                        deadline_exceeded: false,
                    };
                }
                Err(AttemptError::BackendFailure(b)) => {
                    if self.cfg.outlier_ejection {
                        let det = self.detectors.entry(b).or_default();
                        if det.record_failure(t, &self.cfg) {
                            self.stats.ejections += 1;
                        }
                    }
                    let was_avoided = avoid.contains(&b);
                    failed_here.insert(b);
                    // Steer the next attempt elsewhere (different backend,
                    // and — since shards span zones — often a different AZ).
                    avoid.insert(b);
                    if was_avoided {
                        // The balancer handed us a backend we were already
                        // avoiding: the avoid list covers its whole pool, so
                        // it has started ignoring it. Ejections must yield to
                        // availability — fall back to avoiding only what this
                        // request has actually seen fail, so the next attempt
                        // can reach pool members blocked solely by a stale
                        // ejection.
                        avoid = failed_here.clone();
                    }
                }
                Err(AttemptError::BackendDraining(b)) => {
                    // Planned drain: steer away exactly like a failure, but
                    // feed *nothing* to the outlier detector — refusals the
                    // operator ordered are not evidence of a sick backend,
                    // and counting them would turn every planned failover
                    // into an ejection storm.
                    self.stats.drain_refusals += 1;
                    let was_avoided = avoid.contains(&b);
                    failed_here.insert(b);
                    avoid.insert(b);
                    if was_avoided {
                        avoid = failed_here.clone();
                    }
                }
                Err(AttemptError::Handshake(CertFault::Revoked)) => {
                    // Revocation is terminal by construction: the serial
                    // stays revoked no matter how often we retry, so the
                    // failure must not become retry fuel for the budget.
                    self.stats.failures += 1;
                    self.stats.cert_revoked += 1;
                    return DispatchOutcome {
                        served: None,
                        attempts,
                        completed_at: t,
                        hedged,
                        deadline_exceeded: false,
                    };
                }
                Err(AttemptError::Handshake(CertFault::Expired)) => {
                    // Retryable-after-refresh: allow exactly one retry,
                    // standing in for the workload fetching a re-issued
                    // cert. A second expiry means re-issuance itself is
                    // broken — hammering the CA cannot fix that.
                    if refreshed_cert {
                        self.stats.failures += 1;
                        return DispatchOutcome {
                            served: None,
                            attempts,
                            completed_at: t,
                            hedged,
                            deadline_exceeded: false,
                        };
                    }
                    refreshed_cert = true;
                    self.stats.cert_refreshes += 1;
                }
                Err(AttemptError::Rejected(GatewayError::UnknownService)) => {
                    // No placement anywhere: retrying cannot help.
                    self.stats.failures += 1;
                    return DispatchOutcome {
                        served: None,
                        attempts,
                        completed_at: t,
                        hedged,
                        deadline_exceeded: false,
                    };
                }
                Err(AttemptError::Rejected(GatewayError::RetryBudgetExhausted)) => {
                    // The overload layer refused this attempt's *budget*:
                    // retrying is exactly what it forbade. The rejection
                    // counts against the request, not as fuel for more
                    // attempts — this is what kills retry storms.
                    self.stats.failures += 1;
                    self.stats.budget_rejected += 1;
                    return DispatchOutcome {
                        served: None,
                        attempts,
                        completed_at: t,
                        hedged,
                        deadline_exceeded: false,
                    };
                }
                Err(AttemptError::Rejected(GatewayError::Unavailable)) if !avoid.is_empty() => {
                    // Every non-avoided backend is (detected) down: degrade
                    // gracefully — drop the steer and let the gateway
                    // fail-open over whatever it still considers alive.
                    avoid.clear();
                }
                Err(AttemptError::Rejected(_)) => {
                    // Throttled / exhausted / unavailable with nothing to
                    // un-avoid: back off and retry until the budget dies.
                }
            }
            if attempts >= self.cfg.max_attempts {
                break;
            }
            let (wait, is_hedge) = self.backoff_before_attempt(attempts + 1);
            let next = t + wait;
            if next > deadline {
                self.stats.failures += 1;
                self.stats.deadline_exceeded += 1;
                return DispatchOutcome {
                    served: None,
                    attempts,
                    completed_at: deadline,
                    hedged,
                    deadline_exceeded: true,
                };
            }
            if is_hedge {
                self.stats.hedges += 1;
                hedged = true;
            }
            t = next;
        }
        self.stats.failures += 1;
        DispatchOutcome {
            served: None,
            attempts,
            completed_at: t,
            hedged,
            deadline_exceeded: false,
        }
    }

    /// Publish breaker state onto the DNS failover path: for each backend
    /// with an address, flip its `DnsView` health record whenever its
    /// ejection state changed since the last sync. No-op unless
    /// `dns_failover` is enabled. Returns the number of flips.
    pub fn sync_dns(
        &mut self,
        now: SimTime,
        view: &mut DnsView,
        name: &str,
        addr_of: &BTreeMap<BackendId, VpcAddr>,
    ) -> u32 {
        if !self.cfg.dns_failover {
            return 0;
        }
        let mut flips = 0;
        for (&backend, &addr) in addr_of {
            let healthy = !self.is_ejected(now, backend);
            let prev = self.dns_health.get(&backend).copied().unwrap_or(true);
            if healthy != prev && view.set_health(name, addr, healthy) {
                self.dns_health.insert(backend, healthy);
                self.stats.dns_flips += 1;
                flips += 1;
            }
        }
        flips
    }

    /// Fold the dispatcher state into a digest: the jitter `rng` stream,
    /// every backend's `detectors` breaker (window, failure streak,
    /// ejection timer), the published `dns_health` bits, and the lifetime
    /// `stats` counters.
    pub fn fold_digest(&self, d: &mut Digest) {
        self.rng.fold_digest(d);
        d.write_u64(self.detectors.len() as u64);
        for (&b, det) in &self.detectors {
            d.write_u64(b as u64).write_u64(det.window.len() as u64);
            for &ok in &det.window {
                d.write_u64(ok as u64);
            }
            d.write_u64(det.consecutive_failures as u64)
                .write_u64(det.ejected_until.map_or(u64::MAX, |t| t.as_nanos()))
                .write_u64(det.ejections);
        }
        d.write_u64(self.dns_health.len() as u64);
        for (&b, &healthy) in &self.dns_health {
            d.write_u64(b as u64).write_u64(healthy as u64);
        }
        d.write_u64(self.stats.requests)
            .write_u64(self.stats.attempts)
            .write_u64(self.stats.retries)
            .write_u64(self.stats.hedges)
            .write_u64(self.stats.successes)
            .write_u64(self.stats.failures)
            .write_u64(self.stats.deadline_exceeded)
            .write_u64(self.stats.ejections)
            .write_u64(self.stats.dns_flips)
            .write_u64(self.stats.budget_rejected)
            .write_u64(self.stats.cert_refreshes)
            .write_u64(self.stats.cert_revoked)
            .write_u64(self.stats.drain_refusals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(backend: BackendId, at: SimTime) -> GatewayServed {
        GatewayServed {
            backend,
            replica: 0,
            finish: at,
            redirect_hops: 0,
        }
    }

    fn dispatcher(cfg: ResilienceConfig) -> ResilientDispatcher {
        ResilientDispatcher::new(cfg, SimRng::seed(7))
    }

    #[test]
    fn first_attempt_success_is_zero_overhead() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let out = d.dispatch(SimTime::ZERO, |t, avoid| {
            assert!(avoid.is_empty());
            Ok(served(1, t))
        });
        assert_eq!(out.attempts, 1);
        assert!(out.served.is_some());
        assert_eq!(out.completed_at, SimTime::ZERO);
        assert_eq!(d.stats().retries, 0);
    }

    #[test]
    fn retry_steers_away_from_failed_backend() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let out = d.dispatch(SimTime::ZERO, |t, avoid| {
            if avoid.contains(&1) {
                Ok(served(2, t))
            } else {
                Err(AttemptError::BackendFailure(1))
            }
        });
        assert_eq!(out.attempts, 2);
        assert_eq!(out.served.unwrap().backend, 2);
        assert!(out.completed_at > SimTime::ZERO, "retry took virtual time");
        assert!(
            out.completed_at <= SimTime::ZERO + SimDuration::from_millis(30),
            "hedge caps the retry delay"
        );
    }

    #[test]
    fn sidecar_baseline_never_retries() {
        let mut d = dispatcher(ResilienceConfig::sidecar_baseline());
        let out = d.dispatch(SimTime::ZERO, |_, _| {
            Err(AttemptError::BackendFailure(1))
        });
        assert_eq!(out.attempts, 1);
        assert!(out.served.is_none());
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn consecutive_failures_trip_ejection_and_time_out() {
        let cfg = ResilienceConfig::paper_canal();
        let mut d = dispatcher(cfg);
        for i in 0..cfg.eject_consecutive_failures {
            let now = SimTime::from_millis(i as u64);
            // Single-attempt probe against backend 9 that always fails.
            let mut first = true;
            d.dispatch(now, |_, _| {
                if first {
                    first = false;
                    Err(AttemptError::BackendFailure(9))
                } else {
                    Ok(served(0, now))
                }
            });
        }
        let now = SimTime::from_millis(10);
        assert!(d.is_ejected(now, 9));
        assert_eq!(d.ejected_backends(now), vec![9]);
        assert_eq!(d.stats().ejections, 1);
        // After the ejection duration the backend is probe-able again.
        let later = now + cfg.ejection_duration + SimDuration::from_secs(1);
        assert!(!d.is_ejected(later, 9));
    }

    #[test]
    fn ejected_backends_prepopulate_avoid_set() {
        let cfg = ResilienceConfig::paper_canal();
        let mut d = dispatcher(cfg);
        for _ in 0..cfg.eject_consecutive_failures {
            d.dispatch(SimTime::ZERO, |_, avoid| {
                if avoid.contains(&3) {
                    Err(AttemptError::Rejected(GatewayError::Unavailable))
                } else {
                    Err(AttemptError::BackendFailure(3))
                }
            });
        }
        assert!(d.is_ejected(SimTime::ZERO, 3));
        let out = d.dispatch(SimTime::from_millis(1), |t, avoid| {
            assert!(avoid.contains(&3), "breaker pre-steers away");
            Ok(served(4, t))
        });
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn unavailable_with_steer_degrades_to_fail_open() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let mut cleared = false;
        let out = d.dispatch(SimTime::ZERO, |t, avoid| {
            if avoid.is_empty() && cleared {
                return Ok(served(5, t));
            }
            if avoid.is_empty() {
                return Err(AttemptError::BackendFailure(5));
            }
            cleared = true;
            Err(AttemptError::Rejected(GatewayError::Unavailable))
        });
        assert_eq!(
            out.served.unwrap().backend,
            5,
            "steer dropped, fail-open served"
        );
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn deadline_bounds_the_retry_budget() {
        let cfg = ResilienceConfig {
            request_deadline: SimDuration::from_millis(25),
            max_attempts: 100,
            hedge_after: None,
            ..ResilienceConfig::paper_canal()
        };
        let mut d = dispatcher(cfg);
        let out = d.dispatch(SimTime::ZERO, |_, _| {
            Err(AttemptError::BackendFailure(1))
        });
        assert!(out.deadline_exceeded);
        assert!(out.attempts < 100);
        assert_eq!(out.completed_at, SimTime::ZERO + cfg.request_deadline);
        assert_eq!(d.stats().deadline_exceeded, 1);
    }

    #[test]
    fn unknown_service_is_terminal() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let out = d.dispatch(SimTime::ZERO, |_, _| {
            Err(AttemptError::Rejected(GatewayError::UnknownService))
        });
        assert_eq!(out.attempts, 1);
        assert!(!out.deadline_exceeded);
    }

    #[test]
    fn budget_rejection_is_terminal() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let mut calls = 0;
        let out = d.dispatch(SimTime::ZERO, |_, _| {
            calls += 1;
            if calls == 1 {
                Err(AttemptError::BackendFailure(1))
            } else {
                // The overload layer refuses the retry's budget: the
                // dispatcher must stop, not back off and hammer again.
                Err(AttemptError::Rejected(GatewayError::RetryBudgetExhausted))
            }
        });
        assert_eq!(out.attempts, 2);
        assert!(out.served.is_none());
        assert!(!out.deadline_exceeded);
        assert_eq!(d.stats().budget_rejected, 1);
        assert_eq!(d.counters().budget_rejected, 1);
    }

    #[test]
    fn revoked_cert_is_terminal_not_retry_fuel() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let out = d.dispatch(SimTime::ZERO, |_, _| {
            Err(AttemptError::Handshake(CertFault::Revoked))
        });
        assert_eq!(out.attempts, 1, "no retries on revocation");
        assert!(out.served.is_none());
        assert_eq!(d.stats().cert_revoked, 1);
        assert_eq!(d.stats().retries, 0);
        assert_eq!(d.counters().cert_revoked, 1);
    }

    #[test]
    fn expired_cert_retries_once_after_refresh() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        let mut calls = 0;
        let out = d.dispatch(SimTime::ZERO, |t, _| {
            calls += 1;
            if calls == 1 {
                Err(AttemptError::Handshake(CertFault::Expired))
            } else {
                Ok(served(1, t))
            }
        });
        assert_eq!(out.attempts, 2, "one refresh retry");
        assert!(out.served.is_some());
        assert_eq!(d.stats().cert_refreshes, 1);

        // A second expiry after the refresh is terminal.
        let out = d.dispatch(SimTime::from_secs(1), |_, _| {
            Err(AttemptError::Handshake(CertFault::Expired))
        });
        assert_eq!(out.attempts, 2, "refresh retried once, then stopped");
        assert!(out.served.is_none());
        assert_eq!(d.stats().cert_refreshes, 2);
        assert_eq!(d.counters().cert_refreshes, 2);
    }

    #[test]
    fn draining_refusals_steer_away_without_outlier_evidence() {
        let cfg = ResilienceConfig::paper_canal();
        let mut d = dispatcher(cfg);
        // Far more drain refusals than the ejection threshold: backend 7 is
        // draining, every first attempt hits it, retries land on 8.
        for i in 0..(cfg.eject_consecutive_failures * 4) {
            let now = SimTime::from_millis(i as u64);
            let out = d.dispatch(now, |t, avoid| {
                if avoid.contains(&7) {
                    Ok(served(8, t))
                } else {
                    Err(AttemptError::BackendDraining(7))
                }
            });
            assert_eq!(out.served.unwrap().backend, 8, "steered to the replacement");
            assert_eq!(out.attempts, 2);
        }
        // The regression: planned-drain refusals must never trip ejection.
        assert!(!d.is_ejected(SimTime::from_secs(1), 7));
        assert_eq!(d.stats().ejections, 0);
        assert_eq!(d.stats().drain_refusals, (cfg.eject_consecutive_failures * 4) as u64);
        assert_eq!(d.counters().drain_refusals, d.stats().drain_refusals);
        // Contrast: the same volume of *real* failures does trip it.
        let mut real = dispatcher(cfg);
        for i in 0..cfg.eject_consecutive_failures {
            let now = SimTime::from_millis(i as u64);
            real.dispatch(now, |t, avoid| {
                if avoid.contains(&7) {
                    Ok(served(8, t))
                } else {
                    Err(AttemptError::BackendFailure(7))
                }
            });
        }
        assert!(real.is_ejected(SimTime::from_millis(10), 7));
    }

    #[test]
    fn counters_snapshot_and_delta() {
        let mut d = dispatcher(ResilienceConfig::paper_canal());
        d.dispatch(SimTime::ZERO, |t, _| Ok(served(1, t)));
        let snap = d.counters();
        assert_eq!((snap.requests, snap.attempts), (1, 1));
        assert!((snap.amplification() - 1.0).abs() < 1e-9);
        let mut first = true;
        d.dispatch(SimTime::from_secs(1), |t, _| {
            if first {
                first = false;
                Err(AttemptError::BackendFailure(2))
            } else {
                Ok(served(3, t))
            }
        });
        let delta = d.counters().since(&snap);
        assert_eq!((delta.requests, delta.attempts), (1, 2));
        assert!(delta.amplification() > 1.5);
    }

    #[test]
    fn same_seed_same_backoff_schedule() {
        let run = |seed: u64| -> Vec<u64> {
            let mut d = ResilientDispatcher::new(
                ResilienceConfig {
                    hedge_after: None,
                    ..ResilienceConfig::paper_canal()
                },
                SimRng::seed(seed),
            );
            let mut times = Vec::new();
            d.dispatch(SimTime::ZERO, |t, _| {
                times.push(t.as_nanos());
                Err(AttemptError::BackendFailure(1))
            });
            times
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "jitter is seed-sensitive");
    }

    #[test]
    fn sync_dns_publishes_ejections_and_recovery() {
        use canal_net::{VpcAddr, VpcId};
        let cfg = ResilienceConfig::paper_canal();
        let mut d = dispatcher(cfg);
        let mut view = DnsView::new();
        let addr = VpcAddr::new(VpcId(1), 10, 0, 0, 1);
        view.add("svc", canal_net::AzId(0), addr);
        let addrs: BTreeMap<BackendId, VpcAddr> = [(3, addr)].into_iter().collect();
        for _ in 0..cfg.eject_consecutive_failures {
            d.dispatch(SimTime::ZERO, |_, _| Err(AttemptError::BackendFailure(3)));
        }
        let t1 = SimTime::from_millis(1);
        assert_eq!(d.sync_dns(t1, &mut view, "svc", &addrs), 1);
        assert!(view.resolve("svc", canal_net::AzId(0)).is_none(), "ejected");
        // Re-sync without change: no flip.
        assert_eq!(d.sync_dns(t1, &mut view, "svc", &addrs), 0);
        let t2 = t1 + cfg.ejection_duration + SimDuration::from_secs(1);
        assert_eq!(d.sync_dns(t2, &mut view, "svc", &addrs), 1);
        assert!(view.resolve("svc", canal_net::AzId(0)).is_some(), "recovered");
        assert_eq!(d.stats().dns_flips, 2);
    }
}
