//! Fail-static network-policy state at the gateway.
//!
//! [`ActivePolicy`] mirrors [`ActiveConfig`](crate::config::ActiveConfig)
//! exactly, but for the policy plane: a pushed
//! [`PolicySpec`](canal_policy::PolicySpec) is first **staged**, then
//! `commit_staged` runs semantic validation *and compilation* atomically —
//! a spec that fails either is rejected with a [`PolicyPushRejection`]
//! (NACKed upstream by the data plane) and the gateway keeps enforcing the
//! last committed compiled set unchanged. A poisoned policy push can
//! therefore never widen or narrow enforcement beyond the canary that
//! NACKed it.

use canal_policy::{CompiledPolicySet, PolicyRejection, PolicySpec};
use canal_sim::{Digest, SimTime};

/// Why a staged policy push was rejected instead of committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyPushRejection {
    /// Semantic validation / compilation failed.
    Spec(PolicyRejection),
    /// The staged version is not newer than the running one. Anything
    /// older is a replay and must not regress enforcement.
    StaleVersion {
        /// Version of the staged spec.
        staged: u64,
        /// Version currently enforced.
        running: u64,
    },
    /// Nothing is staged.
    NothingStaged,
    /// The push carries a controller epoch below the highest this gateway
    /// has observed: a zombie incarnation's push, fenced before any
    /// version or content check.
    StaleEpoch {
        /// Epoch the push carried.
        pushed: u64,
        /// Highest controller epoch this gateway has observed.
        floor: u64,
    },
}

impl std::fmt::Display for PolicyPushRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyPushRejection::Spec(r) => write!(f, "invalid policy: {r}"),
            PolicyPushRejection::StaleVersion { staged, running } => {
                write!(f, "stale policy version {staged} (running {running})")
            }
            PolicyPushRejection::NothingStaged => write!(f, "nothing staged"),
            PolicyPushRejection::StaleEpoch { pushed, floor } => {
                write!(f, "fenced policy push from stale controller epoch {pushed} (floor {floor})")
            }
        }
    }
}

/// The `{running, staged}` policy pair a gateway enforces from.
///
/// Invariants (DESIGN.md §14, mirroring §11's config contract):
/// * `running` only ever advances to a spec that validated *and* compiled,
///   atomically — the served spec and its compiled tables never diverge.
/// * Rejection leaves `running` untouched and clears `staged` (fail-static).
/// * The running version is strictly monotone across commits.
#[derive(Debug, Clone, Default)]
pub struct ActivePolicy {
    running: Option<(PolicySpec, CompiledPolicySet)>,
    staged: Option<PolicySpec>,
    committed_at: Option<SimTime>,
    commits: u64,
    rejections: u64,
    /// Highest controller epoch observed on any push or probe; lower
    /// epochs are fenced ([`PolicyPushRejection::StaleEpoch`]).
    epoch_floor: u64,
    /// Pushes fenced for carrying a stale epoch.
    fenced_pushes: u64,
}

impl ActivePolicy {
    /// Empty pair: nothing running, nothing staged. With no committed
    /// policy the compiled set is empty, which denies every tenant
    /// (zero trust) — gate enforcement on `running_version().is_some()`
    /// if open-until-first-policy is wanted.
    pub fn new() -> Self {
        ActivePolicy::default()
    }

    /// Stage a pushed spec without applying it. Enforcement is unaffected
    /// until [`Self::commit_staged`] validates, compiles and swaps it in.
    /// Staging twice replaces the previous staged spec (last push wins).
    pub fn stage(&mut self, spec: PolicySpec) {
        self.staged = Some(spec);
    }

    /// Observe a controller incarnation's epoch (probes and pushes). The
    /// floor is monotone; returns true if it advanced.
    pub fn observe_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.epoch_floor {
            self.epoch_floor = epoch;
            return true;
        }
        false
    }

    /// Epoch-fenced stage: refuse the push if its epoch is below the
    /// observed floor, else raise the floor and stage.
    pub fn stage_fenced(
        &mut self,
        spec: PolicySpec,
        epoch: u64,
    ) -> Result<(), PolicyPushRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(PolicyPushRejection::StaleEpoch {
                pushed: epoch,
                floor: self.epoch_floor,
            });
        }
        self.observe_epoch(epoch);
        self.stage(spec);
        Ok(())
    }

    /// Epoch-fenced [`Self::roll_back_to`]: rollbacks bypass version
    /// monotonicity, so they are exactly the push the fence must stop.
    pub fn roll_back_to_fenced(
        &mut self,
        now: SimTime,
        spec: PolicySpec,
        epoch: u64,
    ) -> Result<u64, PolicyPushRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(PolicyPushRejection::StaleEpoch {
                pushed: epoch,
                floor: self.epoch_floor,
            });
        }
        self.observe_epoch(epoch);
        self.roll_back_to(now, spec)
    }

    /// Highest controller epoch this gateway has observed.
    pub fn epoch_floor(&self) -> u64 {
        self.epoch_floor
    }

    /// Pushes fenced for carrying a stale controller epoch.
    pub fn fenced_pushes(&self) -> u64 {
        self.fenced_pushes
    }

    /// Atomically commit the staged spec if it validates and compiles,
    /// else reject it and keep enforcing the running set. Either way
    /// `staged` is cleared. Returns the committed version, or the
    /// rejection the data plane should NACK with.
    pub fn commit_staged(&mut self, now: SimTime) -> Result<u64, PolicyPushRejection> {
        let Some(spec) = self.staged.take() else {
            return Err(PolicyPushRejection::NothingStaged);
        };
        if let Some((run, _)) = &self.running {
            if spec.version <= run.version {
                self.rejections += 1;
                return Err(PolicyPushRejection::StaleVersion {
                    staged: spec.version,
                    running: run.version,
                });
            }
        }
        match CompiledPolicySet::compile(&spec) {
            Ok(compiled) => {
                let v = spec.version;
                self.running = Some((spec, compiled));
                self.committed_at = Some(now);
                self.commits += 1;
                Ok(v)
            }
            Err(rej) => {
                self.rejections += 1;
                Err(PolicyPushRejection::Spec(rej))
            }
        }
    }

    /// Roll back to an explicit last-known-good spec, bypassing the
    /// version-monotonicity check (a rollback deliberately re-runs an
    /// older version). Compilation still applies: a rollback target that
    /// no longer compiles is refused, keeping fail-static intact.
    pub fn roll_back_to(
        &mut self,
        now: SimTime,
        spec: PolicySpec,
    ) -> Result<u64, PolicyPushRejection> {
        let compiled = CompiledPolicySet::compile(&spec).map_err(PolicyPushRejection::Spec)?;
        let v = spec.version;
        self.staged = None;
        self.running = Some((spec, compiled));
        self.committed_at = Some(now);
        self.commits += 1;
        Ok(v)
    }

    /// The spec currently being enforced (last committed), if any.
    pub fn running_spec(&self) -> Option<&PolicySpec> {
        self.running.as_ref().map(|(s, _)| s)
    }

    /// The compiled tables the datapath evaluates, if any policy has ever
    /// committed.
    pub fn compiled(&self) -> Option<&CompiledPolicySet> {
        self.running.as_ref().map(|(_, c)| c)
    }

    /// The staged-but-uncommitted spec, if any.
    pub fn staged(&self) -> Option<&PolicySpec> {
        self.staged.as_ref()
    }

    /// Version being enforced, if any policy has ever committed.
    pub fn running_version(&self) -> Option<u64> {
        self.running.as_ref().map(|(s, _)| s.version)
    }

    /// When the running policy committed.
    pub fn committed_at(&self) -> Option<SimTime> {
        self.committed_at
    }

    /// Successful commits (including rollbacks).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Rejected staged specs — each one corresponds to a NACK upstream.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Fold the whole `{running, staged}` pair into a digest: the running
    /// version, spec and compiled tables, the uncommitted `staged` spec,
    /// `committed_at`, and the commit/rejection counts.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.running_version().unwrap_or(0));
        d.write_u64(self.commits);
        d.write_u64(self.rejections);
        if let Some((spec, compiled)) = &self.running {
            spec.fold_digest(d);
            compiled.fold_digest(d);
        }
        match &self.staged {
            None => {
                d.write_u64(0);
            }
            Some(s) => {
                d.write_u64(1);
                s.fold_digest(d);
            }
        }
        d.write_u64(self.committed_at.map_or(u64::MAX, |t| t.as_nanos()));
        d.write_u64(self.epoch_floor);
        d.write_u64(self.fenced_pushes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{TenantId, VpcId};
    use canal_policy::{L4Ctx, L4Verdict, PolicyRule, TenantPolicy};

    fn spec(version: u64, rules: Vec<PolicyRule>) -> PolicySpec {
        PolicySpec {
            version,
            tenants: vec![TenantPolicy {
                tenant: TenantId(1),
                vpc: VpcId(1),
                rules,
                default_action: canal_policy::PolicyVerdict::Deny,
            }],
        }
    }

    fn ctx() -> L4Ctx {
        L4Ctx { tenant: TenantId(1), vpc: VpcId(1), src_ip: 1, dst_port: 80, identity: 0 }
    }

    #[test]
    fn commit_swaps_spec_and_compiled_atomically() {
        let mut ap = ActivePolicy::new();
        assert!(ap.compiled().is_none());
        ap.stage(spec(1, vec![PolicyRule::allow()]));
        assert!(ap.running_spec().is_none(), "staging does not enforce");
        assert_eq!(ap.commit_staged(SimTime::from_secs(1)), Ok(1));
        assert_eq!(ap.running_version(), Some(1));
        let compiled = ap.compiled().unwrap();
        assert_eq!(compiled.l4_verdict(&ctx()), L4Verdict::Allow);
        assert!(ap.staged().is_none());
    }

    #[test]
    fn poisoned_policy_rejected_fail_static() {
        let mut ap = ActivePolicy::new();
        ap.stage(spec(1, vec![PolicyRule::allow()]));
        ap.commit_staged(SimTime::ZERO).ok();
        // Inverted port range: semantically invalid → NACK, keep enforcing v1.
        ap.stage(spec(2, vec![PolicyRule::deny().with_ports(443, 80)]));
        let r = ap.commit_staged(SimTime::from_secs(5));
        assert!(matches!(r, Err(PolicyPushRejection::Spec(_))));
        assert_eq!(ap.running_version(), Some(1), "fail-static: v1 still enforced");
        assert_eq!(ap.compiled().unwrap().l4_verdict(&ctx()), L4Verdict::Allow);
        assert!(ap.staged().is_none(), "poisoned staged spec discarded");
        assert_eq!(ap.rejections(), 1);
        assert_eq!(ap.commits(), 1);
    }

    #[test]
    fn stale_version_rejected() {
        let mut ap = ActivePolicy::new();
        ap.stage(spec(5, vec![PolicyRule::allow()]));
        ap.commit_staged(SimTime::ZERO).ok();
        ap.stage(spec(5, vec![PolicyRule::deny()]));
        assert_eq!(
            ap.commit_staged(SimTime::from_secs(1)),
            Err(PolicyPushRejection::StaleVersion { staged: 5, running: 5 })
        );
        assert_eq!(
            ap.commit_staged(SimTime::from_secs(2)),
            Err(PolicyPushRejection::NothingStaged)
        );
    }

    #[test]
    fn rollback_reinstates_older_version_but_still_compiles() {
        let mut ap = ActivePolicy::new();
        ap.stage(spec(1, vec![PolicyRule::allow()]));
        ap.commit_staged(SimTime::ZERO).ok();
        ap.stage(spec(2, vec![PolicyRule::deny()]));
        ap.commit_staged(SimTime::from_secs(1)).ok();
        assert_eq!(ap.roll_back_to(SimTime::from_secs(2), spec(1, vec![PolicyRule::allow()])), Ok(1));
        assert_eq!(ap.running_version(), Some(1));
        let bad = ap.roll_back_to(
            SimTime::from_secs(3),
            spec(0, vec![PolicyRule::allow().with_ports(9, 1)]),
        );
        assert!(bad.is_err());
        assert_eq!(ap.running_version(), Some(1), "bad rollback target refused");
    }

    #[test]
    fn stale_epoch_policy_push_is_fenced() {
        let mut ap = ActivePolicy::new();
        assert!(ap.stage_fenced(spec(1, vec![PolicyRule::allow()]), 1).is_ok());
        ap.commit_staged(SimTime::ZERO).ok();
        ap.observe_epoch(2);
        let r = ap.stage_fenced(spec(2, vec![PolicyRule::deny()]), 1);
        assert_eq!(r, Err(PolicyPushRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ap.running_version(), Some(1), "fail-static under fencing");
        assert!(ap.staged().is_none());
        let rb = ap.roll_back_to_fenced(SimTime::from_secs(1), spec(1, vec![PolicyRule::allow()]), 1);
        assert_eq!(rb, Err(PolicyPushRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ap.fenced_pushes(), 2);
        assert!(ap.stage_fenced(spec(2, vec![PolicyRule::deny()]), 2).is_ok());
        assert_eq!(ap.commit_staged(SimTime::from_secs(2)), Ok(2));
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = ActivePolicy::new();
        a.stage(spec(1, vec![PolicyRule::allow()]));
        a.commit_staged(SimTime::ZERO).ok();
        let mut b = ActivePolicy::new();
        b.stage(spec(1, vec![PolicyRule::allow()]));
        b.commit_staged(SimTime::ZERO).ok();
        let mut da = Digest::new();
        a.fold_digest(&mut da);
        let mut db = Digest::new();
        b.fold_digest(&mut db);
        assert_eq!(da.value(), db.value());
        b.stage(spec(2, vec![PolicyRule::deny()]));
        let mut dc = Digest::new();
        b.fold_digest(&mut dc);
        assert_ne!(da.value(), dc.value(), "staged spec is part of the state");
    }
}
