//! Multi-level health-check aggregation (§6.1, Tables 6/7).
//!
//! The consolidated gateway multiplies health-check sources: a service sits
//! on several backends, each backend has several replicas, each replica
//! several cores — and naively *every core* probes *every app of every
//! service* it hosts. Apps shared between services are probed once per
//! service on top. The result is probe traffic up to 515× the app traffic
//! (Table 6).
//!
//! The paper's three aggregation levels, implemented here:
//!
//! 1. **Service-level** — per backend, services with overlapping app sets
//!    have their checks merged: probe the *union* of apps once.
//! 2. **Core-level** — one core per replica is elected to probe; the rest
//!    query its results locally.
//! 3. **Replica-level** — a dedicated gateway-wide health-check proxy
//!    probes each app once; replicas query the proxy for results.

use canal_sim::SimDuration;
use std::collections::BTreeSet;

/// One service's probe targets (app/pod ids) on a backend.
#[derive(Debug, Clone)]
pub struct ServiceProbes {
    /// The apps (pods) this service health-checks.
    pub apps: Vec<u32>,
}

/// One gateway backend's probing population.
#[derive(Debug, Clone)]
pub struct BackendProbes {
    /// Replicas (VMs) in this backend.
    pub replicas: usize,
    /// Cores per replica.
    pub cores_per_replica: usize,
    /// Services configured on this backend.
    pub services: Vec<ServiceProbes>,
}

impl BackendProbes {
    fn union_apps(&self) -> usize {
        self.services
            .iter()
            .flat_map(|s| s.apps.iter().copied())
            .collect::<BTreeSet<u32>>()
            .len()
    }

    fn total_app_refs(&self) -> usize {
        self.services.iter().map(|s| s.apps.len()).sum()
    }
}

/// A full health-check plan for (a slice of) the gateway.
#[derive(Debug, Clone)]
pub struct HealthCheckPlan {
    /// Probe period.
    pub interval: SimDuration,
    /// Backends and what they probe.
    pub backends: Vec<BackendProbes>,
}

impl HealthCheckPlan {
    /// Probes per second with **no aggregation**: every core of every
    /// replica probes every app reference of every service.
    pub fn base_rps(&self) -> f64 {
        let per_interval: usize = self
            .backends
            .iter()
            .map(|b| b.total_app_refs() * b.replicas * b.cores_per_replica)
            .sum();
        per_interval as f64 / self.interval.as_secs_f64()
    }

    /// After **service-level** aggregation: overlapping apps across services
    /// on the same backend are probed once (union), still from every core.
    pub fn after_service_agg(&self) -> f64 {
        let per_interval: usize = self
            .backends
            .iter()
            .map(|b| b.union_apps() * b.replicas * b.cores_per_replica)
            .sum();
        per_interval as f64 / self.interval.as_secs_f64()
    }

    /// After **core-level** aggregation on top: one elected core per replica
    /// probes; other cores query locally (not network probes).
    pub fn after_core_agg(&self) -> f64 {
        let per_interval: usize = self
            .backends
            .iter()
            .map(|b| b.union_apps() * b.replicas)
            .sum();
        per_interval as f64 / self.interval.as_secs_f64()
    }

    /// After **replica-level** aggregation on top: the dedicated
    /// health-check proxy probes each app once for the whole gateway and
    /// serves the result to every replica of every backend. (Table 7's
    /// Case1 column — 10817 base probes collapsing to 18/s — only adds up
    /// with gateway-global dedup: 18/s × 5 s ≈ the ~92-app union, not the
    /// per-backend sum.)
    pub fn after_replica_agg(&self) -> f64 {
        let global: BTreeSet<u32> = self
            .backends
            .iter()
            .flat_map(|b| b.services.iter().flat_map(|s| s.apps.iter().copied()))
            .collect();
        global.len() as f64 / self.interval.as_secs_f64()
    }

    /// Total reduction fraction (Table 7's final column).
    pub fn reduction(&self) -> f64 {
        let base = self.base_rps();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.after_replica_agg() / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> HealthCheckPlan {
        // Two backends; services A(1,2,3) and B(3,4) share app 3 on
        // backend 0 — the paper's aggregation example.
        HealthCheckPlan {
            interval: SimDuration::from_secs(5),
            backends: vec![
                BackendProbes {
                    replicas: 4,
                    cores_per_replica: 8,
                    services: vec![
                        ServiceProbes { apps: vec![1, 2, 3] },
                        ServiceProbes { apps: vec![3, 4] },
                    ],
                },
                BackendProbes {
                    replicas: 2,
                    cores_per_replica: 8,
                    services: vec![ServiceProbes { apps: vec![5, 6] }],
                },
            ],
        }
    }

    #[test]
    fn base_counts_every_core_and_every_app_ref() {
        let p = plan();
        // Backend0: 5 app refs × 4 replicas × 8 cores = 160;
        // Backend1: 2 × 2 × 8 = 32. Total 192 per 5s = 38.4/s.
        assert!((p.base_rps() - 38.4).abs() < 1e-9);
    }

    #[test]
    fn service_agg_merges_shared_apps() {
        let p = plan();
        // Backend0 union = {1,2,3,4} = 4 × 32 cores = 128; backend1 = 32.
        // 160 per 5s = 32/s.
        assert!((p.after_service_agg() - 32.0).abs() < 1e-9);
        assert!(p.after_service_agg() < p.base_rps());
    }

    #[test]
    fn core_agg_divides_by_core_count() {
        let p = plan();
        // (4×4 + 2×2) = 20 per 5s = 4/s.
        assert!((p.after_core_agg() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn replica_agg_probes_each_app_once_globally() {
        let p = plan();
        // Global union {1,2,3,4} ∪ {5,6} = 6 apps per 5s = 1.2/s.
        assert!((p.after_replica_agg() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn replica_agg_dedupes_across_backends() {
        // The same service (same apps) on two backends is probed once by
        // the gateway-wide health-check proxy.
        let b = BackendProbes {
            replicas: 2,
            cores_per_replica: 2,
            services: vec![ServiceProbes { apps: vec![1, 2, 3] }],
        };
        let p = HealthCheckPlan {
            interval: SimDuration::from_secs(5),
            backends: vec![b.clone(), b],
        };
        assert!((p.after_replica_agg() - 0.6).abs() < 1e-9); // 3 apps / 5s
    }

    #[test]
    fn aggregation_is_monotone() {
        let p = plan();
        assert!(p.base_rps() >= p.after_service_agg());
        assert!(p.after_service_agg() >= p.after_core_agg());
        assert!(p.after_core_agg() >= p.after_replica_agg());
    }

    #[test]
    fn production_scale_hits_paper_reduction() {
        // A production-shaped case: 6 backends × 8 replicas × 16 cores,
        // 40 services × 6 apps with heavy sharing.
        let services: Vec<ServiceProbes> = (0..40)
            .map(|s| ServiceProbes {
                apps: (0..6).map(|a| (s * 3 + a) % 60).collect(),
            })
            .collect();
        let p = HealthCheckPlan {
            interval: SimDuration::from_secs(5),
            backends: (0..6)
                .map(|_| BackendProbes {
                    replicas: 8,
                    cores_per_replica: 16,
                    services: services.clone(),
                })
                .collect(),
        };
        // Table 7: minimum 99.6% reduction.
        assert!(p.reduction() > 0.996, "{}", p.reduction());
    }

    #[test]
    fn no_sharing_means_service_agg_is_free() {
        // Disjoint app sets: service-level aggregation changes nothing.
        let p = HealthCheckPlan {
            interval: SimDuration::from_secs(5),
            backends: vec![BackendProbes {
                replicas: 2,
                cores_per_replica: 2,
                services: vec![
                    ServiceProbes { apps: vec![1, 2] },
                    ServiceProbes { apps: vec![3, 4] },
                ],
            }],
        };
        assert_eq!(p.base_rps(), p.after_service_agg());
    }

    #[test]
    fn empty_plan_is_zero() {
        let p = HealthCheckPlan {
            interval: SimDuration::from_secs(5),
            backends: vec![],
        };
        assert_eq!(p.base_rps(), 0.0);
        assert_eq!(p.reduction(), 0.0);
    }
}
