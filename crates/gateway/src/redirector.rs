//! The Beamer-style redirector behind LB disaggregation (§4.4, App. C,
//! Fig. 26).
//!
//! The router's ECMP hash breaks session consistency whenever the replica
//! list changes. The fix: every replica runs a *redirector* holding a
//! fixed-size per-service bucket table. A flow's bucket never changes
//! (fixed bucket count); each bucket stores a priority-ordered *replica
//! chain*:
//!
//! * a SYN (new flow) is served by the chain head — the newest/preferred
//!   replica;
//! * a non-SYN packet walks the chain until it finds the replica that owns
//!   the flow (session state), redirecting hop by hop.
//!
//! The paper's modifications to Beamer: chains longer than 2 (consecutive
//! scale events), per-service tables indexed by the global service id, and
//! eBPF execution (a cost constant, not a logic change).

use canal_net::{bucket_of, FiveTuple, GlobalServiceId};
use canal_sim::Digest;
use std::collections::BTreeMap;

/// Where a packet ended up and how many chain redirections it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Replica index chosen.
    pub replica: usize,
    /// Chain hops beyond the first lookup (0 = served where it landed).
    pub redirect_hops: usize,
}

/// A per-service bucket table.
#[derive(Debug, Clone)]
pub struct BucketTable {
    buckets: Vec<Vec<usize>>,
    max_chain: usize,
}

impl BucketTable {
    /// Table with `n_buckets` buckets spread over `replicas`, allowing
    /// chains up to `max_chain` long (paper: > 2).
    pub fn new(n_buckets: usize, replicas: &[usize], max_chain: usize) -> Self {
        assert!(n_buckets > 0 && !replicas.is_empty() && max_chain >= 2);
        let buckets = (0..n_buckets)
            .map(|b| vec![replicas[b % replicas.len()]])
            .collect();
        BucketTable { buckets, max_chain }
    }

    /// Number of buckets (fixed for the table's lifetime).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the table has no buckets (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The chain of a bucket (head = highest priority).
    pub fn chain(&self, bucket: usize) -> &[usize] {
        &self.buckets[bucket]
    }

    /// Prepend `replacement` in every bucket whose head is `leaving` — the
    /// Beamer take-offline step: new flows go to the replacement while
    /// established flows chain back to `leaving` until they age out.
    pub fn replica_going_offline(&mut self, leaving: usize, replacement: usize) {
        assert_ne!(leaving, replacement);
        for chain in &mut self.buckets {
            if chain.first() == Some(&leaving) {
                chain.insert(0, replacement);
                chain.truncate(self.max_chain);
            }
        }
    }

    /// Finish an offline: drop `leaving` from all chains (its flows have
    /// aged out; see [`crate::sandbox`] for the drain timing).
    pub fn replica_removed(&mut self, leaving: usize) {
        for chain in &mut self.buckets {
            chain.retain(|&r| r != leaving);
        }
        // A bucket must never end up empty; that would be a config error the
        // controller prevents by sequencing replacement before removal.
        debug_assert!(self.buckets.iter().all(|c| !c.is_empty()));
    }

    /// Scale-out: the new replica takes over ~1/(n+1) of buckets by
    /// prepending itself, shifting old heads down the chain.
    pub fn replica_added(&mut self, new_replica: usize, take_every: usize) {
        assert!(take_every > 0);
        for (i, chain) in self.buckets.iter_mut().enumerate() {
            if i % take_every == 0 && chain.first() != Some(&new_replica) {
                chain.insert(0, new_replica);
                chain.truncate(self.max_chain);
            }
        }
    }

    /// Dispatch one packet. `has_flow(replica, tuple)` is the session-state
    /// oracle (the replica's kernel/session table).
    pub fn dispatch<F: Fn(usize, &FiveTuple) -> bool>(
        &self,
        tuple: &FiveTuple,
        syn: bool,
        has_flow: F,
    ) -> DispatchDecision {
        let bucket = bucket_of(tuple, self.buckets.len());
        let chain = &self.buckets[bucket];
        if syn {
            // New flows insert at the head (highest priority).
            return DispatchDecision {
                replica: chain[0],
                redirect_hops: 0,
            };
        }
        // Established flows walk the chain to their owner.
        for (hops, &replica) in chain.iter().enumerate() {
            if has_flow(replica, tuple) {
                return DispatchDecision {
                    replica,
                    redirect_hops: hops,
                };
            }
        }
        // No owner anywhere (e.g. state aged out): treat like a new flow at
        // the head; the replica will RST/re-establish.
        DispatchDecision {
            replica: chain[0],
            redirect_hops: chain.len() - 1,
        }
    }

    /// Longest chain currently in the table (the App. A latency concern).
    pub fn max_chain_in_use(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fold every bucket's chain (`buckets`) and the `max_chain` cap into
    /// a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.buckets.len() as u64);
        for chain in &self.buckets {
            d.write_u64(chain.len() as u64);
            for &r in chain {
                d.write_u64(r as u64);
            }
        }
        d.write_u64(self.max_chain as u64);
    }
}

/// Per-service bucket tables, indexed by global service id (paper mod ii).
#[derive(Debug, Default)]
pub struct Redirector {
    // lint:allow(bounded-state) reason=one table per service installed on this backend; installs happen at registration and scale time
    tables: BTreeMap<GlobalServiceId, BucketTable>,
    dispatches: u64,
    redirected: u64,
}

impl Redirector {
    /// Empty redirector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a service's bucket table.
    pub fn install(&mut self, service: GlobalServiceId, table: BucketTable) {
        self.tables.insert(service, table);
    }

    /// The table of a service.
    pub fn table(&self, service: GlobalServiceId) -> Option<&BucketTable> {
        self.tables.get(&service)
    }

    /// Mutable table access (scale events).
    pub fn table_mut(&mut self, service: GlobalServiceId) -> Option<&mut BucketTable> {
        self.tables.get_mut(&service)
    }

    /// Dispatch a packet for a service. Returns `None` for unknown services
    /// (the packet is dropped and the gateway answers 503 upstream).
    pub fn dispatch<F: Fn(usize, &FiveTuple) -> bool>(
        &mut self,
        service: GlobalServiceId,
        tuple: &FiveTuple,
        syn: bool,
        has_flow: F,
    ) -> Option<DispatchDecision> {
        let table = self.tables.get(&service)?;
        let d = table.dispatch(tuple, syn, has_flow);
        self.dispatches += 1;
        if d.redirect_hops > 0 {
            self.redirected += 1;
        }
        Some(d)
    }

    /// Lifetime counters `(dispatches, redirected)` — the paper's claim that
    /// "the redirection frequency is low" is checked against these.
    pub fn stats(&self) -> (u64, u64) {
        (self.dispatches, self.redirected)
    }

    /// Fold every service's `tables` plus the `dispatches`/`redirected`
    /// counters into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.tables.len() as u64);
        for (svc, table) in &self.tables {
            d.write_u64(svc.0);
            table.fold_digest(d);
        }
        d.write_u64(self.dispatches).write_u64(self.redirected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{Endpoint, ServiceId, TenantId, VpcAddr, VpcId};
    use std::collections::HashSet;

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 9, 9), 443),
        )
    }

    fn gs() -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(1))
    }

    #[test]
    fn syn_goes_to_chain_head() {
        let t = BucketTable::new(64, &[0, 1, 2], 4);
        let d = t.dispatch(&tuple(1000), true, |_, _| false);
        let head = t.chain(bucket_of(&tuple(1000), 64))[0];
        assert_eq!(d.replica, head);
        assert_eq!(d.redirect_hops, 0);
    }

    #[test]
    fn established_flow_found_via_chain_walk() {
        // The Fig. 26 case: IP2 going offline, IP3 prepended. An established
        // flow owned by IP2 must still reach IP2 with one redirect hop.
        let mut t = BucketTable::new(64, &[2], 4); // all buckets head = 2
        t.replica_going_offline(2, 3);
        let tup = tuple(4242);
        let d = t.dispatch(&tup, false, |replica, _| replica == 2);
        assert_eq!(d.replica, 2);
        assert_eq!(d.redirect_hops, 1);
        // A new flow (SYN) lands on the replacement.
        let d_new = t.dispatch(&tup, true, |_, _| false);
        assert_eq!(d_new.replica, 3);
    }

    #[test]
    fn drained_replica_can_be_removed() {
        let mut t = BucketTable::new(32, &[2], 4);
        t.replica_going_offline(2, 3);
        // Flows aged out: nothing owns them at 2 anymore.
        t.replica_removed(2);
        for b in 0..t.len() {
            assert!(!t.chain(b).contains(&2));
            assert!(!t.chain(b).is_empty());
        }
        let d = t.dispatch(&tuple(777), false, |_, _| false);
        assert_eq!(d.replica, 3);
    }

    #[test]
    fn consecutive_offline_events_need_long_chains() {
        // The paper's modification: chains > 2 to survive consecutive
        // crashes ("query of death"). Two replicas die back-to-back.
        let mut t = BucketTable::new(16, &[1], 4);
        t.replica_going_offline(1, 2); // chain: [2, 1]
        t.replica_going_offline(2, 3); // chain: [3, 2, 1]
        assert_eq!(t.max_chain_in_use(), 3);
        // A flow still owned by the original replica 1 is reachable.
        let d = t.dispatch(&tuple(5), false, |r, _| r == 1);
        assert_eq!(d.replica, 1);
        assert_eq!(d.redirect_hops, 2);
        // Chains never exceed the cap.
        t.replica_going_offline(3, 4);
        t.replica_going_offline(4, 5);
        assert!(t.max_chain_in_use() <= 4);
    }

    #[test]
    fn scale_out_splits_new_flows_but_keeps_old_ones() {
        let mut t = BucketTable::new(64, &[0, 1], 4);
        t.replica_added(9, 2); // replica 9 takes ~half the buckets
        let mut new_on_9 = 0;
        let mut old_kept = 0;
        for sport in 0..512u16 {
            let tup = tuple(40_000 + sport);
            let new_flow = t.dispatch(&tup, true, |_, _| false);
            if new_flow.replica == 9 {
                new_on_9 += 1;
            }
            // An established flow on replica 0 stays on replica 0.
            let old = t.dispatch(&tup, false, |r, _| r == 0);
            if old.replica == 0 {
                old_kept += 1;
            }
        }
        assert!(new_on_9 > 128, "new replica got {new_on_9}/512 new flows");
        // Every old flow owned by 0 still reaches 0 (if 0 is in its chain).
        assert!(old_kept > 0);
    }

    #[test]
    fn session_consistency_property_across_replica_change() {
        // Property: for any set of established flows pinned to their
        // original owners, a going-offline event never reroutes them.
        let mut t = BucketTable::new(128, &[0, 1, 2], 4);
        // Establish: each flow owned by its original SYN target.
        let owners: Vec<(FiveTuple, usize)> = (0..256u16)
            .map(|i| {
                let tup = tuple(1000 + i);
                let d = t.dispatch(&tup, true, |_, _| false);
                (tup, d.replica)
            })
            .collect();
        t.replica_going_offline(1, 2);
        for (tup, owner) in &owners {
            let d = t.dispatch(tup, false, |r, tpl| {
                // The oracle: only the recorded owner has the flow.
                owners.iter().any(|(t2, o2)| t2 == tpl && *o2 == r)
            });
            assert_eq!(d.replica, *owner, "flow rerouted by scale event");
        }
    }

    #[test]
    fn redirector_routes_per_service() {
        let mut r = Redirector::new();
        r.install(gs(), BucketTable::new(16, &[0, 1], 4));
        let other = GlobalServiceId::compose(TenantId(2), ServiceId(1));
        r.install(other, BucketTable::new(16, &[5, 6], 4));
        let d1 = r.dispatch(gs(), &tuple(1), true, |_, _| false).unwrap();
        let d2 = r.dispatch(other, &tuple(1), true, |_, _| false).unwrap();
        assert!([0, 1].contains(&d1.replica));
        assert!([5, 6].contains(&d2.replica));
        // Unknown service: None.
        let unknown = GlobalServiceId::compose(TenantId(9), ServiceId(9));
        assert!(r.dispatch(unknown, &tuple(1), true, |_, _| false).is_none());
        let (dispatches, redirected) = r.stats();
        assert_eq!(dispatches, 2);
        assert_eq!(redirected, 0);
    }

    #[test]
    fn buckets_cover_all_replicas() {
        let t = BucketTable::new(256, &[0, 1, 2, 3], 4);
        let heads: HashSet<usize> = (0..256).map(|b| t.chain(b)[0]).collect();
        assert_eq!(heads.len(), 4);
    }
}
