//! Session aggregation via VXLAN tunneling (§4.4, Fig. 9).
//!
//! Replica session state lives in memory-constrained SmartNICs: hundreds of
//! thousands of sessions exhaust it while the CPU idles at ~20%. The fix:
//! the aggregator (on the router / programmable chip) encapsulates many user
//! sessions into a few VXLAN tunnels, so the underlying server only tracks
//! *tunnel* sessions. Tunnels are spread across replica cores by giving each
//! tunnel a distinct outer source port hashed by the vSwitch's RSS.
//!
//! This module does the real encapsulation with
//! [`canal_net::vxlan::VxlanFrame`] and accounts the before/after session
//! pressure that Table 5's tunneling savings derive from.

use canal_net::{ecmp::rss_core_for_sport, FiveTuple, Packet, VxlanFrame};
use canal_sim::Digest;
use std::collections::BTreeMap;

/// Tunnel fan-out configuration.
#[derive(Debug, Clone, Copy)]
pub struct TunnelConfig {
    /// Number of tunnels per replica (paper: ≈10× the core count).
    pub tunnels_per_replica: usize,
    /// Replica core count (for RSS spreading checks).
    pub replica_cores: usize,
    /// Base outer source port; tunnel `i` uses `base + i`.
    pub sport_base: u16,
    /// Router IP (outer source).
    pub router_ip: u32,
}

impl TunnelConfig {
    /// The paper's guidance: ~10 tunnels per core.
    pub fn for_cores(replica_cores: usize) -> Self {
        TunnelConfig {
            tunnels_per_replica: replica_cores * 10,
            replica_cores,
            sport_base: 40_000,
            router_ip: 0x0A63_0001, // 10.99.0.1
        }
    }
}

/// Aggregates sessions into tunnels toward one replica.
#[derive(Debug)]
pub struct SessionAggregator {
    cfg: TunnelConfig,
    replica_ip: u32,
    vni: u32,
    /// session five-tuple → tunnel index (sticky).
    session_to_tunnel: BTreeMap<FiveTuple, usize>,
    encapsulated: u64,
}

impl SessionAggregator {
    /// Aggregator toward `replica_ip` on tenant `vni`.
    pub fn new(cfg: TunnelConfig, replica_ip: u32, vni: u32) -> Self {
        assert!(cfg.tunnels_per_replica > 0);
        SessionAggregator {
            cfg,
            replica_ip,
            vni,
            session_to_tunnel: BTreeMap::new(),
            encapsulated: 0,
        }
    }

    fn tunnel_of(&mut self, tuple: &FiveTuple) -> usize {
        if let Some(&t) = self.session_to_tunnel.get(tuple) {
            return t;
        }
        let t = (canal_net::hash_five_tuple(tuple) % self.cfg.tunnels_per_replica as u64) as usize;
        self.session_to_tunnel.insert(*tuple, t);
        t
    }

    /// Encapsulate one packet into its session's tunnel. The returned frame
    /// is byte-encodable; the outer source port selects the RSS core.
    pub fn encapsulate(&mut self, pkt: &Packet) -> VxlanFrame {
        let tunnel = self.tunnel_of(&pkt.tuple);
        self.encapsulated += 1;
        let sport = self.cfg.sport_base + tunnel as u16;
        // Inner bytes: the app payload (headers abstracted by Packet).
        VxlanFrame::new(
            self.cfg.router_ip,
            self.replica_ip,
            sport,
            self.vni,
            pkt.payload.clone(),
        )
    }

    /// Sessions currently tracked by the aggregator (user-visible sessions).
    pub fn user_sessions(&self) -> usize {
        self.session_to_tunnel.len()
    }

    /// Distinct tunnels in use — what the underlying server's session table
    /// actually holds after aggregation.
    pub fn tunnels_in_use(&self) -> usize {
        let mut used: Vec<usize> = self.session_to_tunnel.values().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// The session-table reduction factor achieved so far.
    pub fn reduction_factor(&self) -> f64 {
        let t = self.tunnels_in_use();
        if t == 0 {
            1.0
        } else {
            self.user_sessions() as f64 / t as f64
        }
    }

    /// Packets encapsulated.
    pub fn packets(&self) -> u64 {
        self.encapsulated
    }

    /// Which RSS core a tunnel's packets land on.
    pub fn core_of_tunnel(&self, tunnel: usize) -> usize {
        rss_core_for_sport(self.cfg.sport_base + tunnel as u16, self.cfg.replica_cores)
    }

    /// Session churn: forget a closed session.
    pub fn session_closed(&mut self, tuple: &FiveTuple) -> bool {
        self.session_to_tunnel.remove(tuple).is_some()
    }

    /// Fold the aggregator state into a digest: the config, endpoints, the
    /// `session_to_tunnel` map (session keys hashed through the same
    /// deterministic five-tuple hash the tunnel choice uses), and the
    /// `encapsulated` counter.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.cfg.tunnels_per_replica as u64)
            .write_u64(self.cfg.replica_cores as u64)
            .write_u64(self.cfg.sport_base as u64)
            .write_u64(self.cfg.router_ip as u64)
            .write_u64(self.replica_ip as u64)
            .write_u64(self.vni as u64)
            .write_u64(self.session_to_tunnel.len() as u64);
        for (tuple, &tunnel) in &self.session_to_tunnel {
            d.write_u64(canal_net::hash_five_tuple(tuple))
                .write_u64(tunnel as u64);
        }
        d.write_u64(self.encapsulated);
    }
}

/// Replica-side disaggregation: decode the tunnel frame back into inner
/// bytes (placed before the redirector per §4.4).
pub fn disaggregate(frame_bytes: bytes::Bytes) -> Result<VxlanFrame, canal_net::vxlan::VxlanError> {
    VxlanFrame::decode(frame_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{Endpoint, VpcAddr, VpcId};

    fn pkt(sport: u16) -> Packet {
        Packet::data(
            FiveTuple::tcp(
                Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
                Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 5, 5), 443),
            ),
            format!("payload-{sport}").into_bytes(),
        )
    }

    fn agg() -> SessionAggregator {
        SessionAggregator::new(TunnelConfig::for_cores(4), 0x0A63_0002, 77)
    }

    #[test]
    fn many_sessions_few_tunnels() {
        let mut a = agg();
        for sport in 1000..6000u16 {
            a.encapsulate(&pkt(sport));
        }
        assert_eq!(a.user_sessions(), 5000);
        assert!(a.tunnels_in_use() <= 40, "{}", a.tunnels_in_use());
        assert!(a.reduction_factor() > 100.0);
    }

    #[test]
    fn session_sticks_to_its_tunnel() {
        let mut a = agg();
        let f1 = a.encapsulate(&pkt(1234));
        let f2 = a.encapsulate(&pkt(1234));
        assert_eq!(f1.outer_sport, f2.outer_sport);
        assert_eq!(a.user_sessions(), 1);
        assert_eq!(a.packets(), 2);
    }

    #[test]
    fn encapsulation_round_trips_through_real_bytes() {
        let mut a = agg();
        let p = pkt(4321);
        let frame = a.encapsulate(&p);
        let wire = frame.encode();
        let back = disaggregate(wire).unwrap();
        assert_eq!(back.inner, p.payload);
        assert_eq!(back.vni, 77);
        assert_eq!(back.outer_dst_ip, 0x0A63_0002);
    }

    #[test]
    fn tunnels_spread_across_cores() {
        let a = agg();
        let mut cores: Vec<usize> = (0..40).map(|t| a.core_of_tunnel(t)).collect();
        cores.sort_unstable();
        cores.dedup();
        // 40 tunnels over 4 cores must touch every core.
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn closed_sessions_release_tracking() {
        let mut a = agg();
        let p = pkt(1);
        a.encapsulate(&p);
        assert_eq!(a.user_sessions(), 1);
        assert!(a.session_closed(&p.tuple));
        assert!(!a.session_closed(&p.tuple));
        assert_eq!(a.user_sessions(), 0);
    }

    #[test]
    fn mtu_overhead_is_the_vxlan_constant() {
        let mut a = agg();
        let p = pkt(9);
        let frame = a.encapsulate(&p);
        assert_eq!(
            frame.encoded_len(),
            p.payload.len() + canal_net::VXLAN_OVERHEAD
        );
    }
}
