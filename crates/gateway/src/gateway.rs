//! The assembled mesh gateway.
//!
//! Glues the pieces together the way Fig. 6/Fig. 8 describe: services are
//! shuffle-sharded onto backends across AZs; each backend is a group of
//! replica VMs with bounded session tables; per-service bucket tables keep
//! session consistency; a sandbox handles exceptions; per-window water
//! levels and top-service RPS feed the control plane (root-cause analysis,
//! precise scaling — `canal-control`).

use crate::config::{ActiveConfig, ConfigRejection, ConfigSpec};
use crate::failure::{BackendKey, FailureDomain, PlacementView};
use crate::overload::{
    AttemptKind, ClientId, OverloadConfig, OverloadControl, OverloadSignals,
};
use crate::redirector::{BucketTable, Redirector};
use crate::sandbox::Sandbox;
use crate::sharding::ShuffleShardPlanner;
use canal_net::{FiveTuple, GlobalServiceId, Priority, SessionTable};
use canal_sim::{CpuServer, Digest, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Identifier of a gateway backend.
pub type BackendId = BackendKey;

/// Identifier of a replica within a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReplicaId {
    /// Owning backend.
    pub backend: BackendId,
    /// Index within the backend.
    pub index: usize,
}

/// Gateway deployment parameters.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Availability zones.
    pub azs: usize,
    /// Initial backends per AZ.
    pub backends_per_az: usize,
    /// Replica VMs per backend.
    pub replicas_per_backend: usize,
    /// Cores per replica VM.
    pub cores_per_replica: usize,
    /// Backends a service is placed on per AZ (shuffle-shard size).
    pub shard_size: usize,
    /// Session-table budget per replica (SmartNIC memory).
    pub sessions_per_replica: usize,
    /// Session idle timeout.
    pub session_idle_timeout: SimDuration,
    /// Buckets per per-service bucket table.
    pub buckets: usize,
    /// Max replica-chain length (paper: > 2).
    pub max_chain: usize,
    /// Gateway CPU demand per request (request+response passes).
    pub cpu_per_request: SimDuration,
    /// Backend water-level alert threshold (fraction of CPU).
    pub alert_threshold: f64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            azs: 2,
            backends_per_az: 4,
            replicas_per_backend: 3,
            cores_per_replica: 4,
            shard_size: 2,
            sessions_per_replica: 100_000,
            session_idle_timeout: SimDuration::from_secs(300),
            buckets: 1024,
            max_chain: 4,
            cpu_per_request: SimDuration::from_micros(34),
            alert_threshold: 0.70,
        }
    }
}

/// Why a request failed at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayError {
    /// Service unknown to the gateway.
    UnknownService,
    /// No available backend (all failed).
    Unavailable,
    /// Dropped by a redirector-level throttle.
    Throttled,
    /// Replica session table full.
    SessionsExhausted,
    /// Dropped by the overload layer (queue caps or CoDel shedding).
    OverloadShed,
    /// A retry/hedge rejected because the client's retry budget is dry.
    /// Terminal: retrying a budget rejection is exactly what it forbids.
    RetryBudgetExhausted,
}

/// Successful dispatch summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayServed {
    /// Backend that served the request.
    pub backend: BackendId,
    /// Replica within that backend.
    pub replica: usize,
    /// When the gateway finished processing.
    pub finish: SimTime,
    /// Chain-redirect hops taken.
    pub redirect_hops: usize,
}

struct ReplicaState {
    cpu: CpuServer,
    sessions: SessionTable,
}

struct ServiceWindow {
    requests: u64,
}

/// The mesh gateway.
pub struct Gateway {
    cfg: GatewayConfig,
    placement: PlacementView,
    planner: ShuffleShardPlanner,
    // lint:allow(bounded-state) reason=one entry per replica VM in the deployed topology; grown only by explicit scale operations
    replicas: BTreeMap<(BackendId, usize), ReplicaState>,
    /// Per-backend redirector (per-service bucket tables inside).
    // lint:allow(bounded-state) reason=one redirector per deployed backend; grown only by explicit scale operations
    redirectors: BTreeMap<BackendId, Redirector>,
    /// The sandbox/throttle machinery.
    pub sandbox: Sandbox,
    /// The overload-control pipeline, when enabled.
    overload: Option<OverloadControl>,
    // lint:allow(bounded-state) reason=one entry per deployed backend; grown only by explicit scale operations
    backend_az: BTreeMap<BackendId, canal_net::AzId>,
    next_backend: BackendId,
    /// Per (backend, service) request counts in the current window.
    window: BTreeMap<(BackendId, GlobalServiceId), ServiceWindow>,
    window_start: SimTime,
    errors: u64,
    served: u64,
    /// Known services (everything ever registered/extended here), the
    /// ground truth `ActiveConfig` validation checks routes against.
    // lint:allow(bounded-state) reason=one entry per service ever registered; registration is a control-plane setup operation, not a data-path event
    known_services: std::collections::BTreeSet<GlobalServiceId>,
    /// The version-skew-safe `{running, staged}` config pair.
    active_config: ActiveConfig,
}

/// One backend's water-level report for the control plane.
#[derive(Debug, Clone)]
pub struct WaterLevel {
    /// Which backend.
    pub backend: BackendId,
    /// CPU utilization over the window.
    pub utilization: f64,
    /// Session occupancy (max over replicas).
    pub session_occupancy: f64,
    /// Per-service request counts over the window, descending.
    pub top_services: Vec<(GlobalServiceId, u64)>,
    /// Whether the alert threshold is breached.
    pub alert: bool,
}

impl Gateway {
    /// Build a gateway with `cfg`, creating the initial backend pool.
    pub fn new(cfg: GatewayConfig) -> Self {
        let total = cfg.azs * cfg.backends_per_az;
        let mut gw = Gateway {
            cfg,
            placement: PlacementView::new(),
            planner: ShuffleShardPlanner::new(total, cfg.shard_size, cfg.shard_size - 1),
            replicas: BTreeMap::new(),
            redirectors: BTreeMap::new(),
            sandbox: Sandbox::new(),
            overload: None,
            backend_az: BTreeMap::new(),
            next_backend: 0,
            window: BTreeMap::new(),
            window_start: SimTime::ZERO,
            errors: 0,
            served: 0,
            known_services: std::collections::BTreeSet::new(),
            active_config: ActiveConfig::new(),
        };
        for az in 0..cfg.azs {
            for _ in 0..cfg.backends_per_az {
                gw.create_backend(canal_net::AzId(az as u32));
            }
        }
        gw
    }

    /// The configuration.
    pub fn config(&self) -> GatewayConfig {
        self.cfg
    }

    /// Placement and failure state (for DNS/availability integration).
    pub fn placement(&self) -> &PlacementView {
        &self.placement
    }

    /// Mutable failure injection. Errors if the domain is outside the
    /// registered topology, so fault plans cannot silently drift.
    pub fn fail(&mut self, domain: FailureDomain) -> Result<(), crate::failure::UnknownDomain> {
        self.placement.fail(domain)
    }

    /// Recovery. Errors if the domain is outside the registered topology.
    pub fn recover(&mut self, domain: FailureDomain) -> Result<(), crate::failure::UnknownDomain> {
        self.placement.recover(domain)
    }

    /// Stage a pushed config without applying it (serving continues from
    /// the last committed config until [`Self::commit_staged_config`]).
    pub fn stage_config(&mut self, spec: ConfigSpec) {
        self.active_config.stage(spec);
    }

    /// Validate and atomically commit the staged config against this
    /// gateway's known services. A rejection is the NACK the control plane
    /// records; the gateway keeps serving its last committed config.
    pub fn commit_staged_config(&mut self, now: SimTime) -> Result<u64, ConfigRejection> {
        self.active_config.commit_staged(now, &self.known_services)
    }

    /// Roll back to an explicit last-known-good config (re-validated).
    pub fn roll_back_config(
        &mut self,
        now: SimTime,
        spec: ConfigSpec,
    ) -> Result<u64, ConfigRejection> {
        self.active_config.roll_back_to(now, spec, &self.known_services)
    }

    /// The `{running, staged}` config pair.
    pub fn active_config(&self) -> &ActiveConfig {
        &self.active_config
    }

    fn create_backend(&mut self, az: canal_net::AzId) -> BackendId {
        let id = self.next_backend;
        self.next_backend += 1;
        self.placement
            .add_backend(id, az, self.cfg.replicas_per_backend);
        self.backend_az.insert(id, az);
        for r in 0..self.cfg.replicas_per_backend {
            self.replicas.insert(
                (id, r),
                ReplicaState {
                    cpu: CpuServer::new(self.cfg.cores_per_replica),
                    sessions: SessionTable::new(
                        self.cfg.sessions_per_replica,
                        self.cfg.session_idle_timeout,
                    ),
                },
            );
        }
        self.redirectors.insert(id, Redirector::new());
        id
    }

    /// The `New` scaling operation: spawn a fresh backend in `az` and grow
    /// the shard pool. (Its multi-minute wall-clock cost is modeled by the
    /// control plane, which schedules the completion event.)
    pub fn scale_new_backend(&mut self, az: canal_net::AzId) -> BackendId {
        self.planner.grow_pool(1);
        self.create_backend(az)
    }

    /// Register a tenant service: shuffle-shard it onto backends in each AZ
    /// and install its bucket tables.
    pub fn register_service(&mut self, service: GlobalServiceId, rng: &mut SimRng) -> Vec<BackendId> {
        self.known_services.insert(service);
        let combo = self.planner.assign(service, rng);
        let backends: Vec<BackendId> = combo.iter().map(|&b| b as BackendId).collect();
        for &b in &backends {
            self.placement.place(service, b);
            let replicas: Vec<usize> = (0..self.cfg.replicas_per_backend).collect();
            if let Some(r) = self.redirectors.get_mut(&b) {
                r.install(
                    service,
                    BucketTable::new(self.cfg.buckets, &replicas, self.cfg.max_chain),
                );
            }
        }
        backends
    }

    /// The `Reuse` scaling operation: extend a service onto an existing
    /// low-water backend. Returns false if already placed there.
    pub fn extend_service(&mut self, service: GlobalServiceId, backend: BackendId) -> bool {
        self.known_services.insert(service);
        if self.placement.backends_of(service).contains(&backend) {
            return false;
        }
        if !self.planner.extend(service, backend as usize) {
            // The planner only knows services it assigned; register the
            // extension directly for services placed manually.
        }
        self.placement.place(service, backend);
        let replicas: Vec<usize> = (0..self.cfg.replicas_per_backend).collect();
        if let Some(r) = self.redirectors.get_mut(&backend) {
            r.install(
                service,
                BucketTable::new(self.cfg.buckets, &replicas, self.cfg.max_chain),
            );
        }
        true
    }

    /// Backends of a service.
    pub fn backends_of(&self, service: GlobalServiceId) -> Vec<BackendId> {
        self.placement.backends_of(service).to_vec()
    }

    /// All backends with their AZ.
    pub fn backends(&self) -> Vec<(BackendId, canal_net::AzId)> {
        self.backend_az.iter().map(|(&b, &az)| (b, az)).collect()
    }

    /// Handle one request at the gateway: throttle check → backend choice
    /// (ECMP over the service's available backends) → bucket-table dispatch
    /// → session + CPU accounting.
    pub fn handle_request(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        tuple: &FiveTuple,
        syn: bool,
    ) -> Result<GatewayServed, GatewayError> {
        self.handle_request_avoiding(now, service, tuple, syn, &[])
    }

    /// [`Gateway::handle_request`] with a retry steer: backends listed in
    /// `avoid` (ejected by an outlier detector, or already tried this
    /// request) are skipped *as a preference* — if avoiding them would
    /// leave no backend at all, the gateway degrades gracefully and falls
    /// back to the full available set (fail-open) rather than rejecting a
    /// servable request.
    pub fn handle_request_avoiding(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        tuple: &FiveTuple,
        syn: bool,
        avoid: &[BackendId],
    ) -> Result<GatewayServed, GatewayError> {
        if !self.sandbox.admit(now, service) {
            self.errors += 1;
            return Err(GatewayError::Throttled);
        }
        let placed = self.placement.backends_of(service);
        if placed.is_empty() {
            self.errors += 1;
            return Err(GatewayError::UnknownService);
        }
        let available: Vec<BackendId> = placed
            .iter()
            .copied()
            .filter(|&b| self.placement.backend_available(b))
            .collect();
        if available.is_empty() {
            self.errors += 1;
            return Err(GatewayError::Unavailable);
        }
        let preferred: Vec<BackendId> = available
            .iter()
            .copied()
            .filter(|b| !avoid.contains(b))
            .collect();
        let pool = if preferred.is_empty() { &available } else { &preferred };
        let backend = pool[canal_net::ecmp_select(tuple, pool.len())];
        let live = self.placement.live_replicas(backend);

        // Bucket-table dispatch with the replica session tables as the
        // flow-state oracle.
        let replicas = &self.replicas;
        let decision = self
            .redirectors
            .get_mut(&backend)
            .ok_or(GatewayError::Unavailable)?
            .dispatch(service, tuple, syn, |r, t| {
                replicas
                    .get(&(backend, r))
                    .is_some_and(|st| st.sessions.contains(t))
            })
            .ok_or(GatewayError::UnknownService)?;

        // If the chain head is dead, fall over to any live replica (the
        // short disruption + reconstruction of §4.2).
        let replica = if live.contains(&decision.replica) {
            decision.replica
        } else {
            *live.first().ok_or(GatewayError::Unavailable)?
        };

        let state = self
            .replicas
            .get_mut(&(backend, replica))
            .ok_or(GatewayError::Unavailable)?;
        if syn || !state.sessions.contains(tuple) {
            if state.sessions.establish(*tuple, now).is_err() {
                self.errors += 1;
                return Err(GatewayError::SessionsExhausted);
            }
        } else {
            state.sessions.touch(tuple, now);
        }
        let served = state.cpu.submit(now, self.cfg.cpu_per_request);

        self.window
            .entry((backend, service))
            .or_insert(ServiceWindow { requests: 0 })
            .requests += 1;
        self.served += 1;
        Ok(GatewayServed {
            backend,
            replica,
            finish: served.finish,
            redirect_hops: decision.redirect_hops,
        })
    }

    /// Turn on the overload-control pipeline: subsequent traffic should
    /// enter through [`Gateway::offer_request`] / [`Gateway::pump_overload`]
    /// instead of calling [`Gateway::handle_request`] directly.
    pub fn enable_overload_control(&mut self, cfg: OverloadConfig) {
        self.overload = Some(OverloadControl::new(cfg));
    }

    /// The overload pipeline, if enabled.
    pub fn overload(&self) -> Option<&OverloadControl> {
        self.overload.as_ref()
    }

    /// Mutable access to the overload pipeline (weight overrides, signals).
    pub fn overload_mut(&mut self) -> Option<&mut OverloadControl> {
        self.overload.as_mut()
    }

    /// Offer one request to the overload pipeline: retry-budget admission →
    /// bounded per-tenant queue. Returns a ticket; the dispatch outcome is
    /// delivered by [`Gateway::pump_overload`] once the fair scheduler
    /// grants the request CPU (or sheds it). Requires
    /// [`Gateway::enable_overload_control`] first.
    #[allow(clippy::too_many_arguments, reason = "request metadata is genuinely this wide")]
    pub fn offer_request(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        priority: Priority,
        tuple: &FiveTuple,
        syn: bool,
        client: ClientId,
        kind: AttemptKind,
        bytes: u64,
    ) -> Result<u64, GatewayError> {
        let Some(ov) = self.overload.as_mut() else {
            // Pipeline disabled: nothing can ever pump the ticket out.
            return Err(GatewayError::Unavailable);
        };
        let res = ov.offer(now, service, priority, *tuple, syn, client, kind, bytes);
        if res.is_err() {
            self.errors += 1;
        }
        res
    }

    /// Drain the overload scheduler up to `now`: each granted request is
    /// dispatched through the normal gateway path at its grant time; CoDel
    /// sheds surface as [`GatewayError::OverloadShed`]. Returns
    /// `(ticket, outcome)` pairs in grant order.
    pub fn pump_overload(
        &mut self,
        now: SimTime,
    ) -> Vec<(u64, Result<GatewayServed, GatewayError>)> {
        let Some(mut ov) = self.overload.take() else {
            return Vec::new();
        };
        let started = ov.pump(now);
        let mut out = Vec::with_capacity(started.len());
        for s in started {
            let res = if s.shed {
                self.errors += 1;
                Err(GatewayError::OverloadShed)
            } else {
                self.handle_request_avoiding(s.start, s.pending.service, &s.pending.tuple, s.pending.syn, &[])
            };
            out.push((s.ticket, res));
        }
        self.overload = Some(ov);
        out
    }

    /// When the overload scheduler next has work to grant (schedule a pump
    /// event then). `None` when queues are empty or the pipeline is off.
    pub fn next_overload_wake(&self) -> Option<SimTime> {
        self.overload.as_ref().and_then(|ov| ov.next_wake())
    }

    /// Read and reset the overload telemetry window (queue depth, shed
    /// rate, sojourn p99) for the control plane's monitor.
    pub fn overload_signals(&mut self) -> Option<OverloadSignals> {
        self.overload.as_mut().map(|ov| ov.signals())
    }

    /// Read and reset the monitoring window: per-backend water levels with
    /// top services (the control plane's §4.3 input).
    pub fn water_levels(&mut self, now: SimTime) -> Vec<WaterLevel> {
        let mut out = Vec::new();
        for (&backend, &_az) in self.backend_az.iter() {
            let mut util_sum = 0.0;
            let mut occupancy: f64 = 0.0;
            let mut n = 0;
            for r in 0..self.cfg.replicas_per_backend {
                if let Some(st) = self.replicas.get_mut(&(backend, r)) {
                    util_sum += st.cpu.window_utilization(now);
                    occupancy = occupancy.max(st.sessions.occupancy());
                    n += 1;
                }
            }
            let utilization = if n == 0 { 0.0 } else { util_sum / n as f64 };
            let mut top: Vec<(GlobalServiceId, u64)> = self
                .window
                .iter()
                .filter(|((b, _), _)| *b == backend)
                .map(|((_, s), w)| (*s, w.requests))
                .collect();
            top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            top.truncate(10);
            out.push(WaterLevel {
                backend,
                utilization,
                session_occupancy: occupancy,
                top_services: top,
                alert: utilization > self.cfg.alert_threshold,
            });
        }
        self.window.clear();
        self.window_start = now;
        out
    }

    /// Session count currently live on a backend.
    pub fn backend_sessions(&self, backend: BackendId) -> usize {
        (0..self.cfg.replicas_per_backend)
            .filter_map(|r| self.replicas.get(&(backend, r)))
            .map(|st| st.sessions.len())
            .sum()
    }

    /// Lifetime counters `(served, errors)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.served, self.errors)
    }

    /// One step of a rolling version upgrade (the Fig. 20 nightly
    /// operation): take a single replica of a single backend out, "upgrade"
    /// it, and bring it back. With `replicas_per_backend > 1` every backend
    /// keeps serving throughout. Returns the `(backend, replica)` pairs in
    /// the full rolling order so the caller can pace them (the paper's
    /// region-wide upgrade takes ~4 hours).
    pub fn rolling_upgrade_order(&self) -> Vec<(BackendId, usize)> {
        let mut order = Vec::new();
        for r in 0..self.cfg.replicas_per_backend {
            for &b in self.backend_az.keys() {
                order.push((b, r));
            }
        }
        order
    }

    /// Fold the whole gateway into a digest, delegating to every
    /// subsystem: `placement`, `planner`, per-replica `replicas` state,
    /// per-backend `redirectors`, the `sandbox`, the `overload` pipeline,
    /// `backend_az`, `next_backend`, the `window` counters and
    /// `window_start`, `errors`/`served`, `known_services`, and the
    /// `active_config` pair.
    pub fn fold_digest(&self, d: &mut Digest) {
        self.placement.fold_digest(d);
        self.planner.fold_digest(d);
        d.write_u64(self.replicas.len() as u64);
        for (&(b, r), st) in &self.replicas {
            d.write_u64(b as u64).write_u64(r as u64);
            st.cpu.fold_digest(d);
            d.write_u64(st.sessions.len() as u64);
        }
        d.write_u64(self.redirectors.len() as u64);
        for (&b, red) in &self.redirectors {
            d.write_u64(b as u64);
            red.fold_digest(d);
        }
        self.sandbox.fold_digest(d);
        match &self.overload {
            None => {
                d.write_u64(0);
            }
            Some(ov) => {
                d.write_u64(1);
                ov.fold_digest(d);
            }
        }
        d.write_u64(self.backend_az.len() as u64);
        for (&b, az) in &self.backend_az {
            d.write_u64(b as u64).write_u64(az.0 as u64);
        }
        d.write_u64(self.next_backend as u64);
        d.write_u64(self.window.len() as u64);
        for (&(b, s), w) in &self.window {
            d.write_u64(b as u64).write_u64(s.0).write_u64(w.requests);
        }
        d.write_u64(self.window_start.as_nanos())
            .write_u64(self.errors)
            .write_u64(self.served)
            .write_u64(self.known_services.len() as u64);
        for s in &self.known_services {
            d.write_u64(s.0);
        }
        self.active_config.fold_digest(d);
    }

    /// Execute one upgrade step: fail the replica, migrate its sessions'
    /// ownership implicitly (flows re-establish on siblings via the
    /// redirector), then recover it. Returns whether every service placed
    /// on the backend stayed available during the step.
    pub fn rolling_upgrade_step(&mut self, backend: BackendId, replica: usize) -> bool {
        if self
            .placement
            .fail(crate::failure::FailureDomain::Replica(backend, replica))
            .is_err()
        {
            return false;
        }
        let still_up = self.placement.backend_available(backend);
        // Upgrade happens here (image swap); then the replica rejoins with
        // a cleared session table.
        if let Some(st) = self.replicas.get_mut(&(backend, replica)) {
            st.sessions.expire_idle(SimTime::MAX - SimDuration::from_secs(1));
        }
        let recovered = self
            .placement
            .recover(crate::failure::FailureDomain::Replica(backend, replica))
            .is_ok();
        still_up && recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{Endpoint, ServiceId, TenantId, VpcAddr, VpcId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 2, 2), 443),
        )
    }

    const T: fn(u64) -> SimTime = SimTime::from_millis;

    fn gateway_with_service() -> (Gateway, GlobalServiceId) {
        let mut gw = Gateway::new(GatewayConfig::default());
        let mut rng = SimRng::seed(42);
        let s = svc(1);
        gw.register_service(s, &mut rng);
        (gw, s)
    }

    #[test]
    fn registration_places_on_shard_size_backends() {
        let (gw, s) = gateway_with_service();
        let backends = gw.backends_of(s);
        assert_eq!(backends.len(), gw.config().shard_size);
    }

    #[test]
    fn requests_flow_and_sessions_stick() {
        let (mut gw, s) = gateway_with_service();
        let t1 = tuple(1000);
        let first = gw.handle_request(T(0), s, &t1, true).unwrap();
        // Subsequent packets of the same flow land on the same replica.
        for i in 1..10u64 {
            let again = gw.handle_request(T(i), s, &t1, false).unwrap();
            assert_eq!(again.backend, first.backend);
            assert_eq!(again.replica, first.replica);
        }
        let (served, errors) = gw.stats();
        assert_eq!((served, errors), (10, 0));
    }

    #[test]
    fn unknown_service_rejected() {
        let (mut gw, _) = gateway_with_service();
        assert_eq!(
            gw.handle_request(T(0), svc(99), &tuple(1), true),
            Err(GatewayError::UnknownService)
        );
    }

    #[test]
    fn failure_of_all_service_backends_is_unavailable_but_isolated() {
        let (mut gw, s) = gateway_with_service();
        let mut rng = SimRng::seed(43);
        let other = svc(2);
        gw.register_service(other, &mut rng);
        for b in gw.backends_of(s) {
            gw.fail(FailureDomain::Backend(b)).unwrap();
        }
        assert_eq!(
            gw.handle_request(T(0), s, &tuple(1), true),
            Err(GatewayError::Unavailable)
        );
        // Shuffle sharding: the other service still has at least one
        // backend (combinations differ).
        let other_ok = gw
            .backends_of(other)
            .iter()
            .any(|&b| gw.placement().backend_available(b));
        assert!(other_ok);
    }

    #[test]
    fn replica_failure_falls_over_within_backend() {
        let (mut gw, s) = gateway_with_service();
        let t1 = tuple(7);
        let first = gw.handle_request(T(0), s, &t1, true).unwrap();
        gw.fail(FailureDomain::Replica(first.backend, first.replica)).unwrap();
        // The flow's replica died: the session breaks briefly and is
        // reconstructed on another live replica of the same backend.
        let again = gw.handle_request(T(1), s, &t1, false).unwrap();
        assert_eq!(again.backend, first.backend);
        assert_ne!(again.replica, first.replica);
    }

    #[test]
    fn throttled_service_drops_excess() {
        let (mut gw, s) = gateway_with_service();
        gw.sandbox.throttle(s, 1.0, 1.0);
        assert!(gw.handle_request(T(0), s, &tuple(1), true).is_ok());
        assert_eq!(
            gw.handle_request(T(1), s, &tuple(2), true),
            Err(GatewayError::Throttled)
        );
    }

    #[test]
    fn water_levels_identify_top_service() {
        let (mut gw, s) = gateway_with_service();
        let mut rng = SimRng::seed(44);
        let quiet = svc(3);
        gw.register_service(quiet, &mut rng);
        for i in 0..200u16 {
            gw.handle_request(T(i as u64), s, &tuple(1000 + i), true).unwrap();
        }
        gw.handle_request(T(300), quiet, &tuple(5), true).unwrap();
        let levels = gw.water_levels(T(1000));
        let hot = levels
            .iter()
            .filter(|w| !w.top_services.is_empty())
            .max_by_key(|w| w.top_services[0].1)
            .unwrap();
        assert_eq!(hot.top_services[0].0, s);
        // Window resets after reading.
        let levels2 = gw.water_levels(T(2000));
        assert!(levels2.iter().all(|w| w.top_services.is_empty()));
    }

    #[test]
    fn session_exhaustion_surfaces() {
        let cfg = GatewayConfig {
            sessions_per_replica: 4,
            azs: 1,
            backends_per_az: 1,
            shard_size: 1,
            replicas_per_backend: 1,
            ..GatewayConfig::default()
        };
        let mut gw = Gateway::new(cfg);
        let mut rng = SimRng::seed(45);
        let s = svc(1);
        gw.register_service(s, &mut rng);
        let mut full = 0;
        for i in 0..10u16 {
            if gw.handle_request(T(0), s, &tuple(100 + i), true)
                == Err(GatewayError::SessionsExhausted)
            {
                full += 1;
            }
        }
        assert_eq!(full, 6, "4 admitted, 6 rejected");
    }

    #[test]
    fn rolling_upgrade_never_loses_availability() {
        let (mut gw, s) = gateway_with_service();
        let order = gw.rolling_upgrade_order();
        // 8 backends × 3 replicas by default.
        assert_eq!(order.len(), 8 * 3);
        for (i, (b, r)) in order.into_iter().enumerate() {
            assert!(gw.rolling_upgrade_step(b, r), "step {i} lost a backend");
            // The service keeps serving mid-upgrade.
            let t = tuple(30_000 + i as u16);
            assert!(gw.handle_request(T(i as u64 * 10), s, &t, true).is_ok());
        }
        let (_, errors) = gw.stats();
        assert_eq!(errors, 0);
    }

    #[test]
    fn single_replica_backends_do_blip_during_upgrade() {
        // The inverse guarantee: with one replica per backend, an upgrade
        // step takes the whole backend down — which is why the gateway
        // deploys replicated backends.
        let cfg = GatewayConfig {
            replicas_per_backend: 1,
            ..GatewayConfig::default()
        };
        let mut gw = Gateway::new(cfg);
        let mut rng = SimRng::seed(50);
        gw.register_service(svc(1), &mut rng);
        let (b, r) = gw.rolling_upgrade_order()[0];
        assert!(!gw.rolling_upgrade_step(b, r));
    }

    #[test]
    fn overload_pipeline_dispatches_through_gateway() {
        let (mut gw, s) = gateway_with_service();
        gw.enable_overload_control(OverloadConfig::default());
        let ticket = gw
            .offer_request(
                T(0),
                s,
                Priority::Interactive,
                &tuple(1),
                true,
                1,
                AttemptKind::First,
                256,
            )
            .unwrap();
        let results = gw.pump_overload(T(1));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, ticket);
        assert!(results[0].1.is_ok(), "granted request dispatched");
        let (served, errors) = gw.stats();
        assert_eq!((served, errors), (1, 0));
        let sig = gw.overload_signals().unwrap();
        assert_eq!((sig.offered, sig.started), (1, 1));
    }

    #[test]
    fn offer_without_overload_control_is_unavailable() {
        let (mut gw, s) = gateway_with_service();
        assert_eq!(
            gw.offer_request(
                T(0),
                s,
                Priority::Interactive,
                &tuple(1),
                true,
                1,
                AttemptKind::First,
                256,
            ),
            Err(GatewayError::Unavailable)
        );
        assert!(gw.pump_overload(T(1)).is_empty());
        assert!(gw.next_overload_wake().is_none());
    }

    #[test]
    fn scale_new_backend_then_extend_service() {
        let (mut gw, s) = gateway_with_service();
        let before = gw.backends_of(s).len();
        let nb = gw.scale_new_backend(canal_net::AzId(0));
        assert!(gw.extend_service(s, nb));
        assert!(!gw.extend_service(s, nb), "idempotent");
        assert_eq!(gw.backends_of(s).len(), before + 1);
        // New backend serves traffic for the service.
        let mut landed = false;
        for i in 0..200u16 {
            let r = gw.handle_request(T(i as u64), s, &tuple(2000 + i), true).unwrap();
            landed |= r.backend == nb;
        }
        assert!(landed, "extended backend never selected");
    }
}
