//! Shuffle sharding (§4.2, Fig. 19).
//!
//! Each service is assigned `shard_size` backends out of the AZ's pool such
//! that no two services share the *same combination*. Then a "query of
//! death" that kills every backend of one service still leaves every other
//! service at least one healthy backend (unless the other service's
//! combination is a subset — which the planner avoids by bounding pairwise
//! overlap).

use canal_net::GlobalServiceId;
use canal_sim::{Digest, SimRng};
use std::collections::{BTreeMap, BTreeSet};

/// Assigns backend combinations to services with bounded pairwise overlap.
#[derive(Debug)]
pub struct ShuffleShardPlanner {
    pool_size: usize,
    shard_size: usize,
    max_overlap: usize,
    assignments: BTreeMap<GlobalServiceId, Vec<usize>>,
    used_combos: BTreeSet<Vec<usize>>,
}

impl ShuffleShardPlanner {
    /// Planner over a pool of `pool_size` backends, `shard_size` backends
    /// per service, tolerating at most `max_overlap` shared backends between
    /// any two services' combinations.
    ///
    /// Panics if `shard_size > pool_size` or `max_overlap >= shard_size`
    /// (full overlap would defeat the isolation goal).
    pub fn new(pool_size: usize, shard_size: usize, max_overlap: usize) -> Self {
        assert!(shard_size > 0 && shard_size <= pool_size);
        assert!(max_overlap < shard_size);
        ShuffleShardPlanner {
            pool_size,
            shard_size,
            max_overlap,
            assignments: BTreeMap::new(),
            used_combos: BTreeSet::new(),
        }
    }

    /// Assign a combination to a service. Tries random draws until the
    /// overlap bound holds (with a relaxation fallback after many attempts,
    /// so dense pools still get assignments — uniqueness is always kept).
    pub fn assign(&mut self, service: GlobalServiceId, rng: &mut SimRng) -> Vec<usize> {
        if let Some(existing) = self.assignments.get(&service) {
            return existing.clone();
        }
        let mut allowed_overlap = self.max_overlap;
        loop {
            for _attempt in 0..64 {
                let mut combo = rng.sample_indices(self.pool_size, self.shard_size);
                combo.sort_unstable();
                if self.used_combos.contains(&combo) {
                    continue;
                }
                let worst = self
                    .assignments
                    .values()
                    .map(|other| combo.iter().filter(|b| other.contains(b)).count())
                    .max()
                    .unwrap_or(0);
                if worst <= allowed_overlap {
                    self.used_combos.insert(combo.clone());
                    self.assignments.insert(service, combo.clone());
                    return combo;
                }
            }
            // Pool too dense for the bound: relax by one, never to full
            // overlap (uniqueness still enforced by `used_combos`).
            if allowed_overlap + 1 < self.shard_size {
                allowed_overlap += 1;
            } else {
                // Last resort: any unused combination.
                loop {
                    let mut combo = rng.sample_indices(self.pool_size, self.shard_size);
                    combo.sort_unstable();
                    if !self.used_combos.contains(&combo) {
                        self.used_combos.insert(combo.clone());
                        self.assignments.insert(service, combo.clone());
                        return combo;
                    }
                }
            }
        }
    }

    /// The combination assigned to a service, if any.
    pub fn combination(&self, service: GlobalServiceId) -> Option<&[usize]> {
        self.assignments.get(&service).map(Vec::as_slice)
    }

    /// Grow a service's shard by extra backends (the `Reuse` scaling path
    /// extends a service onto additional low-water backends). Keeps
    /// uniqueness bookkeeping consistent.
    pub fn extend(&mut self, service: GlobalServiceId, backend: usize) -> bool {
        let Some(combo) = self.assignments.get_mut(&service) else {
            return false;
        };
        if combo.contains(&backend) || backend >= self.pool_size {
            return false;
        }
        self.used_combos.remove(combo);
        combo.push(backend);
        combo.sort_unstable();
        self.used_combos.insert(combo.clone());
        true
    }

    /// Register newly created backends (the `New` scaling path grows the
    /// pool).
    pub fn grow_pool(&mut self, additional: usize) {
        self.pool_size += additional;
    }

    /// Current pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of assigned services.
    pub fn service_count(&self) -> usize {
        self.assignments.len()
    }

    /// Largest pairwise overlap among all assigned combinations (Fig. 19's
    /// "no complete overlap" check).
    pub fn max_pairwise_overlap(&self) -> usize {
        let combos: Vec<&Vec<usize>> = self.assignments.values().collect();
        let mut worst = 0;
        for i in 0..combos.len() {
            for j in (i + 1)..combos.len() {
                let overlap = combos[i].iter().filter(|b| combos[j].contains(b)).count();
                worst = worst.max(overlap);
            }
        }
        worst
    }

    /// Services that would be *fully* lost if exactly `failed` backends
    /// died — the blast-radius query behind Fig. 8.
    pub fn services_lost_if(&self, failed: &[usize]) -> Vec<GlobalServiceId> {
        self.assignments
            .iter()
            .filter(|(_, combo)| combo.iter().all(|b| failed.contains(b)))
            .map(|(&s, _)| s)
            .collect()
    }

    /// Fold the planner state into a digest: `pool_size` and the bounds,
    /// every service's combination in `assignments`, and the `used_combos`
    /// uniqueness set (its size — the combos themselves are the assignment
    /// values, already folded).
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.pool_size as u64)
            .write_u64(self.shard_size as u64)
            .write_u64(self.max_overlap as u64)
            .write_u64(self.assignments.len() as u64);
        for (svc, combo) in &self.assignments {
            d.write_u64(svc.0).write_u64(combo.len() as u64);
            for &b in combo {
                d.write_u64(b as u64);
            }
        }
        d.write_u64(self.used_combos.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn gs(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(i / 100), ServiceId(i % 100))
    }

    #[test]
    fn combinations_are_unique() {
        let mut rng = SimRng::seed(1);
        let mut p = ShuffleShardPlanner::new(12, 3, 2);
        let mut seen = BTreeSet::new();
        for i in 0..50 {
            let combo = p.assign(gs(i), &mut rng);
            assert_eq!(combo.len(), 3);
            assert!(seen.insert(combo), "duplicate combination");
        }
        assert_eq!(p.service_count(), 50);
    }

    #[test]
    fn overlap_bound_holds_when_pool_allows() {
        let mut rng = SimRng::seed(2);
        let mut p = ShuffleShardPlanner::new(24, 3, 1);
        for i in 0..12 {
            p.assign(gs(i), &mut rng);
        }
        assert!(p.max_pairwise_overlap() <= 1);
    }

    #[test]
    fn killing_one_services_backends_spares_others() {
        // The Fig. 8 scenario: service A's full combination dies; every
        // other service must retain at least one live backend.
        let mut rng = SimRng::seed(3);
        let mut p = ShuffleShardPlanner::new(12, 3, 2);
        for i in 0..30 {
            p.assign(gs(i), &mut rng);
        }
        let victim_combo = p.combination(gs(0)).unwrap().to_vec();
        let lost = p.services_lost_if(&victim_combo);
        assert_eq!(lost, vec![gs(0)], "only the victim is fully lost");
    }

    #[test]
    fn assignment_is_idempotent() {
        let mut rng = SimRng::seed(4);
        let mut p = ShuffleShardPlanner::new(10, 3, 2);
        let a = p.assign(gs(1), &mut rng);
        let b = p.assign(gs(1), &mut rng);
        assert_eq!(a, b);
        assert_eq!(p.service_count(), 1);
    }

    #[test]
    fn extend_adds_backend_preserving_uniqueness() {
        let mut rng = SimRng::seed(5);
        let mut p = ShuffleShardPlanner::new(10, 3, 2);
        p.assign(gs(1), &mut rng);
        let before = p.combination(gs(1)).unwrap().to_vec();
        let new_backend = (0..10).find(|b| !before.contains(b)).unwrap();
        assert!(p.extend(gs(1), new_backend));
        let after = p.combination(gs(1)).unwrap();
        assert_eq!(after.len(), 4);
        assert!(after.contains(&new_backend));
        // Re-extending with the same backend is a no-op.
        assert!(!p.extend(gs(1), new_backend));
        // Unknown service or out-of-pool backend rejected.
        assert!(!p.extend(gs(99), 0));
        assert!(!p.extend(gs(1), 999));
    }

    #[test]
    fn grow_pool_enables_new_backends() {
        let mut rng = SimRng::seed(6);
        let mut p = ShuffleShardPlanner::new(4, 2, 1);
        p.assign(gs(1), &mut rng);
        assert!(!p.extend(gs(1), 4), "backend 4 not in pool yet");
        p.grow_pool(2);
        assert_eq!(p.pool_size(), 6);
        assert!(p.extend(gs(1), 4));
    }

    #[test]
    fn dense_pool_relaxes_but_stays_unique() {
        // 5 backends choose 3 = 10 combinations; ask for all 10 with a tight
        // overlap bound — the planner must relax yet never duplicate.
        let mut rng = SimRng::seed(7);
        let mut p = ShuffleShardPlanner::new(5, 3, 1);
        let mut seen = BTreeSet::new();
        for i in 0..10 {
            let combo = p.assign(gs(i), &mut rng);
            assert!(seen.insert(combo));
        }
    }
}
