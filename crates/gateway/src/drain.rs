//! Graceful gateway drain: planned failover that loses zero established
//! sessions.
//!
//! Consolidated gateways hold *session state* for every flow they serve, so
//! taking one out for maintenance is not "remove from DNS and wait": new
//! flows must move instantly while established flows keep landing where
//! their state lives. The protocol reuses the Beamer bucket table
//! ([`BucketTable`]):
//!
//! 1. **`begin_drain(leaving, replacement)`** — the leaving gateway stops
//!    accepting new sessions at once: [`BucketTable::replica_going_offline`]
//!    prepends the replacement in every bucket the leaver heads, so SYNs go
//!    to the new owner while non-SYN packets daisy-chain one hop back to the
//!    leaver's session state.
//! 2. **Drain window** — established sessions age out naturally (`close`).
//!    Each forwarded packet is counted as a hand-off; zero sessions are
//!    reset.
//! 3. **Deadline** — at `deadline` any stragglers are force-closed (counted,
//!    never silent) and [`BucketTable::replica_removed`] drops the leaver
//!    from every chain. A drain that finishes early completes as soon as the
//!    leaver's session count reaches zero.
//!
//! The planned-drain invariant the drill gates on: `force_closed == 0` when
//! the drain window exceeds the longest session, and every packet of every
//! established session reaches the session's owner throughout.

use crate::redirector::BucketTable;
use canal_net::{hash_five_tuple, FiveTuple};
use canal_sim::{Digest, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Lifecycle of one gateway in the drain protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPhase {
    /// Serving new and established sessions.
    Active,
    /// No new sessions; established ones forwarded until `deadline`.
    Draining {
        /// When stragglers get force-closed.
        deadline: SimTime,
    },
    /// Fully out: no buckets reference it, no sessions remain.
    Drained,
}

/// Why a session open was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainReject {
    /// The session table is at capacity.
    AtCapacity,
    /// The chosen gateway is past `Draining` into `Drained` (a config race
    /// the caller should retry after the next table push).
    GatewayDrained,
}

/// Why a drain could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainError {
    /// The leaving gateway is unknown.
    UnknownGateway,
    /// The leaving gateway is already draining or drained.
    AlreadyDraining,
    /// The replacement is unknown, equals the leaver, or is itself not
    /// `Active`.
    BadReplacement,
}

/// Session-owning drain coordinator for one service's gateway fleet.
#[derive(Debug)]
pub struct GatewayDrain {
    table: BucketTable,
    sessions: BTreeMap<FiveTuple, usize>,
    max_sessions: usize,
    phases: BTreeMap<usize, DrainPhase>,
    opened: u64,
    closed: u64,
    handed_off: u64,
    force_closed: u64,
    rejected: u64,
}

impl GatewayDrain {
    /// Fleet over `gateways` (all `Active`), with a fixed `n_buckets` table,
    /// chains up to `max_chain`, and at most `max_sessions` concurrent
    /// sessions.
    pub fn new(n_buckets: usize, gateways: &[usize], max_chain: usize, max_sessions: usize) -> Self {
        GatewayDrain {
            table: BucketTable::new(n_buckets, gateways, max_chain),
            sessions: BTreeMap::new(),
            max_sessions,
            phases: gateways.iter().map(|&g| (g, DrainPhase::Active)).collect(),
            opened: 0,
            closed: 0,
            handed_off: 0,
            force_closed: 0,
            rejected: 0,
        }
    }

    /// Open a new session (SYN): dispatched to the bucket head, which the
    /// drain protocol guarantees is never a draining gateway.
    pub fn open(&mut self, tuple: FiveTuple) -> Result<usize, DrainReject> {
        if self.sessions.len() >= self.max_sessions {
            self.rejected += 1;
            return Err(DrainReject::AtCapacity);
        }
        let d = self.table.dispatch(&tuple, true, |_, _| false);
        if self.phases.get(&d.replica) == Some(&DrainPhase::Drained) {
            self.rejected += 1;
            return Err(DrainReject::GatewayDrained);
        }
        self.sessions.insert(tuple, d.replica);
        self.opened += 1;
        Ok(d.replica)
    }

    /// Route one packet of an established session: chain-walks to the
    /// session's owner, counting each daisy-chained forward as a hand-off.
    /// Returns `(owner, redirect_hops)`, or `None` for unknown sessions.
    pub fn packet(&mut self, tuple: &FiveTuple) -> Option<(usize, usize)> {
        let owner = *self.sessions.get(tuple)?;
        let d = self.table.dispatch(tuple, false, |replica, tpl| {
            self.sessions.get(tpl) == Some(&replica)
        });
        debug_assert_eq!(d.replica, owner, "chain walk must find the session owner");
        if d.redirect_hops > 0 {
            self.handed_off += 1;
        }
        Some((d.replica, d.redirect_hops))
    }

    /// Close a session normally.
    pub fn close(&mut self, tuple: &FiveTuple) -> bool {
        let existed = self.sessions.remove(tuple).is_some();
        if existed {
            self.closed += 1;
        }
        existed
    }

    /// Start draining `leaving` onto `replacement`: new sessions move
    /// immediately, established ones get forwarded until they close or the
    /// `grace` deadline force-closes them.
    pub fn begin_drain(
        &mut self,
        now: SimTime,
        leaving: usize,
        replacement: usize,
        grace: SimDuration,
    ) -> Result<(), DrainError> {
        match self.phases.get(&leaving) {
            None => return Err(DrainError::UnknownGateway),
            Some(DrainPhase::Active) => {}
            Some(_) => return Err(DrainError::AlreadyDraining),
        }
        if leaving == replacement || self.phases.get(&replacement) != Some(&DrainPhase::Active) {
            return Err(DrainError::BadReplacement);
        }
        self.table.replica_going_offline(leaving, replacement);
        self.phases.insert(leaving, DrainPhase::Draining { deadline: now + grace });
        Ok(())
    }

    /// Advance drains at `now`: a draining gateway with zero remaining
    /// sessions completes immediately; one past its deadline force-closes
    /// the stragglers first. Returns the gateways that reached `Drained`.
    pub fn tick(&mut self, now: SimTime) -> Vec<usize> {
        let draining: Vec<(usize, SimTime)> = self
            .phases
            .iter()
            .filter_map(|(&g, ph)| match ph {
                DrainPhase::Draining { deadline } => Some((g, *deadline)),
                _ => None,
            })
            .collect();
        let mut finished = Vec::new();
        for (g, deadline) in draining {
            let remaining = self.sessions.values().filter(|&&o| o == g).count();
            if remaining > 0 && now < deadline {
                continue;
            }
            if remaining > 0 {
                // Deadline passed: the stragglers lose their sessions — the
                // accounting the planned-drain invariant gates to zero.
                self.sessions.retain(|_, &mut o| o != g);
                self.force_closed += remaining as u64;
            }
            self.table.replica_removed(g);
            self.phases.insert(g, DrainPhase::Drained);
            finished.push(g);
        }
        finished
    }

    /// Current phase of a gateway.
    pub fn phase(&self, gateway: usize) -> Option<DrainPhase> {
        self.phases.get(&gateway).copied()
    }

    /// Whether a gateway is in its drain window (refusing new sessions
    /// while still owning established ones).
    pub fn is_draining(&self, gateway: usize) -> bool {
        matches!(self.phases.get(&gateway), Some(DrainPhase::Draining { .. }))
    }

    /// Established sessions currently owned by a gateway.
    pub fn sessions_on(&self, gateway: usize) -> usize {
        self.sessions.values().filter(|&&o| o == gateway).count()
    }

    /// Total live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The underlying bucket table (bucket-ownership assertions in tests).
    pub fn table(&self) -> &BucketTable {
        &self.table
    }

    /// Lifetime counters `(opened, closed, handed_off, force_closed,
    /// rejected)`.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (self.opened, self.closed, self.handed_off, self.force_closed, self.rejected)
    }

    /// Fold the drain picture into a digest: the bucket `table`, every live
    /// session in `sessions`, per-gateway `phases`, and the lifetime
    /// counters (`opened`, `closed`, `handed_off`, `force_closed`,
    /// `rejected`).
    pub fn fold_digest(&self, d: &mut Digest) {
        self.table.fold_digest(d);
        d.write_u64(self.sessions.len() as u64);
        for (tuple, &owner) in &self.sessions {
            d.write_u64(hash_five_tuple(tuple)).write_u64(owner as u64);
        }
        d.write_u64(self.phases.len() as u64);
        for (&g, ph) in &self.phases {
            d.write_u64(g as u64);
            match ph {
                DrainPhase::Active => d.write_u64(0),
                DrainPhase::Draining { deadline } => d.write_u64(1).write_u64(deadline.as_nanos()),
                DrainPhase::Drained => d.write_u64(2),
            };
        }
        d.write_u64(self.opened)
            .write_u64(self.closed)
            .write_u64(self.handed_off)
            .write_u64(self.force_closed)
            .write_u64(self.rejected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{Endpoint, VpcAddr, VpcId};

    const T: fn(u64) -> SimTime = SimTime::from_secs;
    const S: fn(u64) -> SimDuration = SimDuration::from_secs;

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 9, 9), 443),
        )
    }

    fn fleet() -> GatewayDrain {
        GatewayDrain::new(64, &[0, 1, 2], 4, 10_000)
    }

    #[test]
    fn drain_moves_new_sessions_and_forwards_established() {
        let mut d = fleet();
        // Establish sessions across the fleet.
        let owners: Vec<(FiveTuple, usize)> = (0..200u16)
            .map(|i| {
                let t = tuple(1000 + i);
                let gw = d.open(t).unwrap();
                (t, gw)
            })
            .collect();
        let on_1: Vec<&(FiveTuple, usize)> = owners.iter().filter(|(_, g)| *g == 1).collect();
        assert!(!on_1.is_empty(), "hash spread should land sessions on gw 1");
        d.begin_drain(T(10), 1, 2, S(30)).unwrap();
        assert!(d.is_draining(1));
        // New sessions never land on the draining gateway.
        for i in 0..200u16 {
            let gw = d.open(tuple(5000 + i)).unwrap();
            assert_ne!(gw, 1, "draining gateway accepted a new session");
        }
        // Established sessions still reach their owner, daisy-chained.
        let before_handoffs = d.stats().2;
        for (t, gw) in &owners {
            let (owner, _) = d.packet(t).unwrap();
            assert_eq!(owner, *gw, "established session rerouted mid-drain");
        }
        let handed = d.stats().2 - before_handoffs;
        assert!(handed >= on_1.len() as u64, "gw-1 packets must daisy-chain");
    }

    #[test]
    fn drain_completes_early_when_sessions_close() {
        let mut d = fleet();
        let ts: Vec<FiveTuple> = (0..100u16).map(|i| tuple(1000 + i)).collect();
        for t in &ts {
            d.open(*t).unwrap();
        }
        d.begin_drain(T(0), 0, 1, S(60)).unwrap();
        assert!(d.tick(T(1)).is_empty(), "sessions still open");
        for t in &ts {
            d.close(t);
        }
        assert_eq!(d.tick(T(2)), vec![0], "zero sessions: drain completes early");
        assert_eq!(d.phase(0), Some(DrainPhase::Drained));
        assert_eq!(d.stats().3, 0, "no force-closes on a clean drain");
        // The drained gateway is out of every chain.
        for b in 0..d.table().len() {
            assert!(!d.table().chain(b).contains(&0));
        }
    }

    #[test]
    fn deadline_force_closes_stragglers_and_counts_them() {
        let mut d = fleet();
        let mut on_0 = 0u64;
        for i in 0..100u16 {
            if d.open(tuple(1000 + i)).unwrap() == 0 {
                on_0 += 1;
            }
        }
        assert!(on_0 > 0);
        d.begin_drain(T(0), 0, 2, S(30)).unwrap();
        assert!(d.tick(T(29)).is_empty(), "before deadline: keep waiting");
        assert_eq!(d.tick(T(30)), vec![0]);
        assert_eq!(d.stats().3, on_0, "every straggler accounted as force-closed");
        assert_eq!(d.sessions_on(0), 0);
    }

    #[test]
    fn drain_preconditions_are_enforced() {
        let mut d = fleet();
        assert_eq!(d.begin_drain(T(0), 9, 1, S(1)), Err(DrainError::UnknownGateway));
        assert_eq!(d.begin_drain(T(0), 0, 0, S(1)), Err(DrainError::BadReplacement));
        assert_eq!(d.begin_drain(T(0), 0, 9, S(1)), Err(DrainError::BadReplacement));
        d.begin_drain(T(0), 0, 1, S(1)).unwrap();
        assert_eq!(d.begin_drain(T(0), 0, 2, S(1)), Err(DrainError::AlreadyDraining));
        // Draining gateways are not valid replacements.
        assert_eq!(d.begin_drain(T(0), 1, 0, S(1)), Err(DrainError::BadReplacement));
        d.tick(T(1));
        assert_eq!(d.phase(0), Some(DrainPhase::Drained));
        assert_eq!(d.begin_drain(T(2), 1, 0, S(1)), Err(DrainError::BadReplacement));
    }

    #[test]
    fn session_cap_rejects_and_counts() {
        let mut d = GatewayDrain::new(8, &[0, 1], 4, 3);
        for i in 0..3u16 {
            d.open(tuple(i)).unwrap();
        }
        assert_eq!(d.open(tuple(99)), Err(DrainReject::AtCapacity));
        assert_eq!(d.stats().4, 1);
        d.close(&tuple(0));
        assert!(d.open(tuple(99)).is_ok());
    }

    #[test]
    fn digest_tracks_drain_lifecycle() {
        let mut d = fleet();
        for i in 0..50u16 {
            d.open(tuple(i)).unwrap();
        }
        let mut a = Digest::new();
        d.fold_digest(&mut a);
        d.begin_drain(T(0), 1, 2, S(10)).unwrap();
        let mut b = Digest::new();
        d.fold_digest(&mut b);
        assert_ne!(a.value(), b.value(), "begin_drain must move the digest");
        d.tick(T(10));
        let mut c = Digest::new();
        d.fold_digest(&mut c);
        assert_ne!(b.value(), c.value(), "completion must move the digest");
    }
}
