//! Gateway overload control: the proactive layer in front of
//! `handle_request`.
//!
//! Canal's shared multi-tenant gateway makes overload the architecture's
//! biggest blast-radius risk: one surging tenant can starve every other
//! tenant on the same replica, and the sandbox (§6.2 / Fig. 16) only reacts
//! *after* a noisy neighbor is detected. This module is the proactive
//! defense, a pipeline of five stages:
//!
//! ```text
//! request ──▶ retry budget ──▶ bounded per-tenant queue ──▶ DRR scheduler
//!                 │                   │ (slot/byte caps)          │
//!                 ▼                   ▼                           ▼
//!           reject retries      tail-drop excess        CoDel shedder keyed
//!           when exhausted                              on queue sojourn
//!                                                             │
//!                                               brownout: drop optional L7
//!                                               work before dropping requests
//! ```
//!
//! * **Retry budget** ([`RetryBudget`]) — per-client token accrual: first
//!   attempts earn a fraction of a token, retries and hedges spend a whole
//!   one. When the budget is dry, retries are rejected *terminally*
//!   ([`GatewayError::RetryBudgetExhausted`]) — `resilience.rs` treats the
//!   rejection as a stop sign, not a retryable error, so retry storms die at
//!   the door instead of amplifying.
//! * **Fair queues** — one bounded FIFO per (tenant, [`Priority`]) class on
//!   a [`FairCpuServer`], drained by deficit-weighted round-robin. A tenant
//!   surging 20× fills only its own queue; its overflow is tail-dropped at
//!   the caps while other tenants keep their weight share of the cores.
//! * **CoDel shedder** ([`CoDel`]) — adaptive shedding keyed on queue
//!   *sojourn* time (Nichols & Jacobson): when the minimum sojourn stays
//!   above target for an interval, drop at increasing frequency until the
//!   standing queue drains. Sojourn — not queue length — is what tracks
//!   user-visible delay across service-time changes.
//! * **Brownout** ([`BrownoutController`]) — under sustained pressure the
//!   gateway first stops doing *optional* work (observability sampling,
//!   then canary evaluation), shrinking per-request CPU demand, before any
//!   request is dropped.
//!
//! Signals ([`OverloadSignals`]: queue depth, shed rate, sojourn p99) feed
//! `canal-control`'s monitor so precise scaling sees pressure before
//! saturation. Everything runs on simulated time with `BTreeMap`-ordered
//! state and no internal RNG — runs are digest-deterministic.

use crate::gateway::GatewayError;
use canal_net::{FiveTuple, GlobalServiceId, Priority};
use canal_sim::stats::percentile;
use canal_sim::{ClassConfig, ClassId, Digest, FairCpuServer, QueueReject, SimDuration, SimTime};
use canal_telemetry::{HeadSampler, TelemetryCostModel, TelemetryMeter};
use std::collections::BTreeMap;

/// The gateway's hook into the mesh tracing pipeline: a head sampler plus
/// the cost meter its decisions charge into. Attached to an
/// [`OverloadControl`] it closes the brownout loop — when the controller
/// reaches [`BrownoutLevel::NoObservability`] the sampler is shed, sampled
/// jobs stop being charged, and already-provisioned span cost is refunded.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    /// Shared head-sampling decision (consistent with the node proxies).
    pub sampler: HeadSampler,
    /// Per-span CPU/byte prices.
    pub cost: TelemetryCostModel,
    /// Accumulated telemetry spend (and refunds) at this gateway.
    pub meter: TelemetryMeter,
}

impl TelemetrySink {
    /// A sink around an existing sampler with default span prices.
    pub fn new(sampler: HeadSampler) -> Self {
        TelemetrySink {
            sampler,
            cost: TelemetryCostModel::default(),
            meter: TelemetryMeter::default(),
        }
    }
}

/// Identifier of a requesting client (the retry-budget scope: one upstream
/// caller / connection pool, not one TCP flow).
pub type ClientId = u64;

/// What kind of dispatch attempt is knocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptKind {
    /// The first attempt of a request: always budget-admissible, earns
    /// budget for the client.
    First,
    /// A retry after a failure: spends budget.
    Retry,
    /// A hedge (speculative duplicate): spends budget like a retry.
    Hedge,
}

/// Per-client retry-budget accounting (the "retry budgets" defense from the
/// Google SRE book, ch. 22): first attempts earn `ratio` tokens, retries and
/// hedges spend one. A client retrying more than `ratio` of its traffic
/// exhausts its budget and further retries are rejected.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    ratio: f64,
    cap: f64,
    tokens: BTreeMap<ClientId, f64>,
    rejections: u64,
}

impl RetryBudget {
    /// A budget earning `ratio` tokens per first attempt, holding at most
    /// `cap` tokens per client.
    pub fn new(ratio: f64, cap: f64) -> Self {
        assert!(ratio >= 0.0 && cap >= 0.0, "budget parameters must be nonnegative");
        RetryBudget {
            ratio,
            cap,
            tokens: BTreeMap::new(),
            rejections: 0,
        }
    }

    /// Admit or reject one attempt. First attempts always pass (and earn);
    /// retries and hedges pass only if the client has a whole token to spend.
    pub fn admit(&mut self, client: ClientId, kind: AttemptKind) -> bool {
        let tokens = self.tokens.entry(client).or_insert(0.0);
        match kind {
            AttemptKind::First => {
                *tokens = (*tokens + self.ratio).min(self.cap);
                true
            }
            AttemptKind::Retry | AttemptKind::Hedge => {
                if *tokens >= 1.0 {
                    *tokens -= 1.0;
                    true
                } else {
                    self.rejections += 1;
                    false
                }
            }
        }
    }

    /// Current token balance of a client.
    pub fn tokens(&self, client: ClientId) -> f64 {
        self.tokens.get(&client).copied().unwrap_or(0.0)
    }

    /// Lifetime rejections.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

/// CoDel (Controlled Delay) shedding state for one queue class.
///
/// The classic control law: once the per-job sojourn has stayed at or above
/// `target` for a full `interval`, enter the dropping state and shed at
/// `interval / sqrt(count)` spacing — drop frequency rises until the
/// standing queue dissolves. Exits the moment a job's sojourn dips below
/// target.
#[derive(Debug, Clone)]
pub struct CoDel {
    target: SimDuration,
    interval: SimDuration,
    first_above: Option<SimTime>,
    dropping: bool,
    drop_next: SimTime,
    count: u32,
    sheds: u64,
}

impl CoDel {
    /// A shedder with the given sojourn target and control interval.
    pub fn new(target: SimDuration, interval: SimDuration) -> Self {
        CoDel {
            target,
            interval,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            sheds: 0,
        }
    }

    fn control_gap(&self) -> SimDuration {
        self.interval.scale(1.0 / (self.count.max(1) as f64).sqrt())
    }

    /// Observe one dequeued job's sojourn; returns `true` when the job
    /// should be shed instead of served.
    pub fn should_shed(&mut self, now: SimTime, sojourn: SimDuration) -> bool {
        if sojourn < self.target {
            // Below target: leave dropping state, restart the clock.
            self.first_above = None;
            self.dropping = false;
            return false;
        }
        if self.dropping {
            if now >= self.drop_next {
                self.count += 1;
                self.sheds += 1;
                self.drop_next = now + self.control_gap();
                return true;
            }
            return false;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.interval);
                false
            }
            Some(at) if now >= at => {
                // Sojourn has been above target for a whole interval:
                // start dropping. Resume near the previous drop rate if we
                // were dropping recently (the standard fast-restart).
                self.dropping = true;
                self.count = (self.count / 2).max(1);
                self.sheds += 1;
                self.drop_next = now + self.control_gap();
                true
            }
            Some(_) => false,
        }
    }

    /// Whether the shedder is currently in its dropping state.
    pub fn dropping(&self) -> bool {
        self.dropping
    }

    /// Lifetime sheds.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }
}

/// How much optional L7 work the gateway is currently skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BrownoutLevel {
    /// Full service: observability sampling and canary evaluation run.
    #[default]
    Normal,
    /// Observability sampling dropped (cheap, invisible to callers).
    NoObservability,
    /// Canary evaluation dropped too — the last step before requests are.
    NoCanary,
}

impl BrownoutLevel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::NoObservability => "no-observability",
            BrownoutLevel::NoCanary => "no-canary",
        }
    }
}

/// Drives [`BrownoutLevel`] from a smoothed sojourn signal with hysteresis:
/// escalate when the EWMA crosses a stage threshold, de-escalate only when
/// it falls back below the exit threshold (so the level doesn't flap).
#[derive(Debug, Clone)]
pub struct BrownoutController {
    enter_observability: f64,
    enter_canary: f64,
    exit: f64,
    ewma_ms: f64,
    level: BrownoutLevel,
}

impl BrownoutController {
    /// Thresholds are sojourn EWMAs; `exit` must sit below both entries.
    pub fn new(enter_observability: SimDuration, enter_canary: SimDuration, exit: SimDuration) -> Self {
        assert!(exit <= enter_observability && enter_observability <= enter_canary);
        BrownoutController {
            enter_observability: enter_observability.as_millis_f64(),
            enter_canary: enter_canary.as_millis_f64(),
            exit: exit.as_millis_f64(),
            ewma_ms: 0.0,
            level: BrownoutLevel::Normal,
        }
    }

    /// Fold one sojourn observation into the EWMA and update the level.
    pub fn observe(&mut self, sojourn: SimDuration) -> BrownoutLevel {
        const ALPHA: f64 = 0.1;
        self.ewma_ms = ALPHA * sojourn.as_millis_f64() + (1.0 - ALPHA) * self.ewma_ms;
        self.level = if self.ewma_ms >= self.enter_canary {
            BrownoutLevel::NoCanary
        } else if self.ewma_ms >= self.enter_observability {
            self.level.max(BrownoutLevel::NoObservability)
        } else if self.ewma_ms <= self.exit {
            BrownoutLevel::Normal
        } else {
            self.level
        };
        self.level
    }

    /// The current level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// The smoothed sojourn, in milliseconds.
    pub fn ewma_ms(&self) -> f64 {
        self.ewma_ms
    }
}

/// Overload-control policy. Every stage has an enable flag so baseline
/// architectures (plain FIFO, no shedding) run through the same code path.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Cores of the gateway ingress stage the fair scheduler manages.
    pub ingress_cores: usize,
    /// DRR quantum (≈ one typical request's CPU demand).
    pub quantum: SimDuration,
    /// Base per-request CPU demand at the ingress stage.
    pub base_cpu: SimDuration,
    /// Whether queues are per (tenant, priority). When false, all traffic
    /// shares a single FIFO class — the ambient/sidecar baseline shape.
    pub per_tenant: bool,
    /// Default per-class weight.
    pub tenant_weight: u32,
    /// Weight multiplier for [`Priority::Interactive`] classes.
    pub interactive_boost: u32,
    /// Per-class queue slot cap.
    pub max_slots: usize,
    /// Per-class queue byte cap.
    pub max_bytes: u64,
    /// Whether CoDel shedding runs.
    pub codel: bool,
    /// CoDel sojourn target.
    pub codel_target: SimDuration,
    /// CoDel control interval.
    pub codel_interval: SimDuration,
    /// Whether retry-budget admission runs.
    pub retry_budget: bool,
    /// Budget earned per first attempt.
    pub retry_budget_ratio: f64,
    /// Budget cap per client.
    pub retry_budget_cap: f64,
    /// Whether brownout runs.
    pub brownout: bool,
    /// Sojourn EWMA that sheds observability sampling.
    pub brownout_observability: SimDuration,
    /// Sojourn EWMA that sheds canary evaluation too.
    pub brownout_canary: SimDuration,
    /// Sojourn EWMA below which full service resumes.
    pub brownout_exit: SimDuration,
    /// Fraction of `base_cpu` spent on observability sampling.
    pub observability_cpu_frac: f64,
    /// Fraction of `base_cpu` spent on canary evaluation.
    pub canary_cpu_frac: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            ingress_cores: 8,
            quantum: SimDuration::from_micros(50),
            base_cpu: SimDuration::from_micros(34),
            per_tenant: true,
            tenant_weight: 1,
            interactive_boost: 4,
            max_slots: 512,
            max_bytes: 8 << 20,
            codel: true,
            codel_target: SimDuration::from_millis(2),
            codel_interval: SimDuration::from_millis(20),
            retry_budget: true,
            retry_budget_ratio: 0.1,
            retry_budget_cap: 10.0,
            brownout: true,
            brownout_observability: SimDuration::from_micros(800),
            brownout_canary: SimDuration::from_millis(2),
            brownout_exit: SimDuration::from_micros(400),
            observability_cpu_frac: 0.10,
            canary_cpu_frac: 0.15,
        }
    }
}

impl OverloadConfig {
    /// The baseline shape: one shared tail-drop FIFO, no shedding, no
    /// budget, no brownout. What a proxy without overload control does.
    pub fn fifo_baseline() -> Self {
        OverloadConfig {
            per_tenant: false,
            codel: false,
            retry_budget: false,
            brownout: false,
            ..OverloadConfig::default()
        }
    }
}

/// A request parked in an overload queue, waiting for its CPU grant.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    /// The destination service.
    pub service: GlobalServiceId,
    /// The request's five-tuple.
    pub tuple: FiveTuple,
    /// Whether this is a connection-opening packet.
    pub syn: bool,
    /// The requesting client (budget scope).
    pub client: ClientId,
    /// Scheduling class metadata.
    pub priority: Priority,
}

/// One queue decision the scheduler made during a pump: either the request
/// got its CPU grant (dispatch it) or CoDel shed it at dequeue.
#[derive(Debug, Clone, Copy)]
pub struct StartedRequest {
    /// Ticket returned by [`OverloadControl::offer`].
    pub ticket: u64,
    /// The parked request.
    pub pending: PendingRequest,
    /// When the scheduler granted (or shed) it.
    pub start: SimTime,
    /// When its CPU grant completes (start + granted demand).
    pub finish: SimTime,
    /// Queue sojourn time.
    pub sojourn: SimDuration,
    /// Whether CoDel shed it instead of serving.
    pub shed: bool,
}

/// Windowed overload telemetry for the control plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadSignals {
    /// Requests offered this window.
    pub offered: u64,
    /// Requests granted CPU this window.
    pub started: u64,
    /// Tail-drops at the queue caps this window.
    pub shed_caps: u64,
    /// CoDel sheds this window.
    pub shed_codel: u64,
    /// Retry-budget rejections this window.
    pub budget_rejected: u64,
    /// Instantaneous total queue depth.
    pub queue_depth: usize,
    /// Instantaneous total queued bytes.
    pub queued_bytes: u64,
    /// Shed fraction of offered load this window (caps + CoDel).
    pub shed_rate: f64,
    /// P99 queue sojourn this window.
    pub sojourn_p99: SimDuration,
    /// Current brownout level.
    pub brownout: BrownoutLevel,
}

impl OverloadSignals {
    /// Whether any stage is actively relieving pressure.
    pub fn under_pressure(&self) -> bool {
        self.shed_caps + self.shed_codel > 0 || self.brownout > BrownoutLevel::Normal
    }
}

/// The assembled overload-control pipeline. Owned by a `Gateway` (via
/// `enable_overload_control`) or driven standalone in tests.
pub struct OverloadControl {
    cfg: OverloadConfig,
    fair: FairCpuServer,
    codel: BTreeMap<ClassId, CoDel>,
    budget: RetryBudget,
    brownout: BrownoutController,
    pending: BTreeMap<u64, PendingRequest>,
    weight_overrides: BTreeMap<u32, u32>,
    telemetry: Option<TelemetrySink>,
    // Window counters, reset by `signals`.
    win_offered: u64,
    win_started: u64,
    win_shed_caps: u64,
    win_shed_codel: u64,
    win_budget_rejected: u64,
    win_sojourns_ms: Vec<f64>,
    // Lifetime counters.
    total_shed: u64,
}

impl OverloadControl {
    /// Build the pipeline from a policy.
    pub fn new(cfg: OverloadConfig) -> Self {
        OverloadControl {
            cfg,
            fair: FairCpuServer::new(cfg.ingress_cores, cfg.quantum),
            codel: BTreeMap::new(),
            budget: RetryBudget::new(cfg.retry_budget_ratio, cfg.retry_budget_cap),
            brownout: BrownoutController::new(
                cfg.brownout_observability,
                cfg.brownout_canary,
                cfg.brownout_exit,
            ),
            pending: BTreeMap::new(),
            weight_overrides: BTreeMap::new(),
            telemetry: None,
            win_offered: 0,
            win_started: 0,
            win_shed_caps: 0,
            win_shed_codel: 0,
            win_budget_rejected: 0,
            win_sojourns_ms: Vec::new(),
            total_shed: 0,
        }
    }

    /// The active policy.
    pub fn config(&self) -> OverloadConfig {
        self.cfg
    }

    /// Attach the telemetry sink the brownout controller drives. Every
    /// admitted request provisionally charges one L7 span (the always-on
    /// recording that makes tail sampling possible); [`OverloadControl::pump`]
    /// then exports head-sampled spans or — once brownout sheds
    /// observability — refunds the provisional charge instead.
    pub fn attach_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = Some(sink);
    }

    /// The attached sink's meter, if any.
    pub fn telemetry_meter(&self) -> Option<&TelemetryMeter> {
        self.telemetry.as_ref().map(|s| &s.meter)
    }

    /// The attached sink's sampler, if any.
    pub fn telemetry_sampler(&self) -> Option<&HeadSampler> {
        self.telemetry.as_ref().map(|s| &s.sampler)
    }

    /// Override one tenant's scheduling weight (applies to classes created
    /// afterwards and re-registers any existing ones).
    pub fn set_tenant_weight(&mut self, tenant: u32, weight: u32) {
        self.weight_overrides.insert(tenant, weight);
        let existing: Vec<ClassId> = self
            .codel
            .keys()
            .copied()
            .filter(|&c| self.cfg.per_tenant && (c >> 1) as u32 == tenant)
            .collect();
        for class in existing {
            let prio = if class & 1 == 0 {
                Priority::Interactive
            } else {
                Priority::Bulk
            };
            self.fair.add_class(class, self.class_config(tenant, prio));
        }
    }

    fn class_config(&self, tenant: u32, priority: Priority) -> ClassConfig {
        let base = self
            .weight_overrides
            .get(&tenant)
            .copied()
            .unwrap_or(self.cfg.tenant_weight);
        let weight = match priority {
            Priority::Interactive => base * self.cfg.interactive_boost.max(1),
            Priority::Bulk => base,
        };
        ClassConfig {
            weight: weight.max(1),
            max_slots: self.cfg.max_slots,
            max_bytes: self.cfg.max_bytes,
        }
    }

    /// The scheduler class a request maps to.
    pub fn class_of(&self, service: GlobalServiceId, priority: Priority) -> ClassId {
        if self.cfg.per_tenant {
            (u64::from(service.tenant().0) << 1) | priority.bit()
        } else {
            0
        }
    }

    fn ensure_class(&mut self, service: GlobalServiceId, priority: Priority) -> ClassId {
        let class = self.class_of(service, priority);
        if !self.codel.contains_key(&class) {
            let cc = if self.cfg.per_tenant {
                self.class_config(service.tenant().0, priority)
            } else {
                ClassConfig {
                    weight: 1,
                    max_slots: self.cfg.max_slots,
                    max_bytes: self.cfg.max_bytes,
                }
            };
            self.fair.add_class(class, cc);
            self.codel
                .insert(class, CoDel::new(self.cfg.codel_target, self.cfg.codel_interval));
        }
        class
    }

    /// Stand-alone budget admission (the chaos experiment calls this per
    /// attempt without going through the queues). Always admits when the
    /// budget stage is disabled.
    pub fn admit_attempt(&mut self, client: ClientId, kind: AttemptKind) -> bool {
        if !self.cfg.retry_budget {
            return true;
        }
        let ok = self.budget.admit(client, kind);
        if !ok {
            self.win_budget_rejected += 1;
        }
        ok
    }

    /// Offer one request to the pipeline: budget check → class queue with
    /// caps. On success the request is parked and the ticket is returned;
    /// the grant (or CoDel shed) arrives from [`OverloadControl::pump`].
    #[allow(clippy::too_many_arguments, reason = "request metadata is genuinely this wide")]
    pub fn offer(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        priority: Priority,
        tuple: FiveTuple,
        syn: bool,
        client: ClientId,
        kind: AttemptKind,
        bytes: u64,
    ) -> Result<u64, GatewayError> {
        self.win_offered += 1;
        if !self.admit_attempt(client, kind) {
            return Err(GatewayError::RetryBudgetExhausted);
        }
        let class = self.ensure_class(service, priority);
        // Brownout shrinks demand *before* anything is dropped: skip the
        // optional L7 stages first.
        let mut frac = 1.0;
        if self.cfg.brownout {
            let level = self.brownout.level();
            if level >= BrownoutLevel::NoObservability {
                frac -= self.cfg.observability_cpu_frac;
            }
            if level >= BrownoutLevel::NoCanary {
                frac -= self.cfg.canary_cpu_frac;
            }
        }
        let demand = self.cfg.base_cpu.scale(frac);
        match self.fair.offer(now, class, demand, bytes) {
            Ok(ticket) => {
                // Provisional span recording: charged unconditionally so the
                // tail sampler can still retrieve slow/error traces later.
                if let Some(sink) = self.telemetry.as_mut() {
                    sink.meter.charge_record(true, &sink.cost);
                }
                self.pending.insert(
                    ticket,
                    PendingRequest {
                        service,
                        tuple,
                        syn,
                        client,
                        priority,
                    },
                );
                Ok(ticket)
            }
            Err(QueueReject::SlotsFull | QueueReject::BytesFull) => {
                self.win_shed_caps += 1;
                self.total_shed += 1;
                Err(GatewayError::OverloadShed)
            }
            Err(QueueReject::UnknownClass) => Err(GatewayError::UnknownService),
        }
    }

    /// Drain the scheduler up to `now` and classify each granted job:
    /// served, or shed by CoDel at dequeue. The caller dispatches the
    /// non-shed ones (normally through `Gateway::handle_request_avoiding`
    /// at each job's `start` time).
    pub fn pump(&mut self, now: SimTime) -> Vec<StartedRequest> {
        self.fair.advance(now);
        let mut out = Vec::new();
        for job in self.fair.take_started() {
            let Some(pending) = self.pending.remove(&job.ticket) else {
                continue;
            };
            self.win_sojourns_ms.push(job.sojourn.as_millis_f64());
            if self.cfg.brownout {
                self.brownout.observe(job.sojourn);
            }
            // Close the brownout→telemetry loop: the "drop observability
            // sampling" stage actually stops span export and refunds the
            // provisional record charge, shrinking telemetry CPU *before*
            // any request is dropped.
            if let Some(sink) = self.telemetry.as_mut() {
                sink.sampler
                    .set_shed(self.cfg.brownout && self.brownout.level() >= BrownoutLevel::NoObservability);
                if sink.sampler.is_shed() {
                    sink.sampler.decide(job.ticket);
                    sink.meter.refund_record(true, &sink.cost);
                } else if sink.sampler.decide(job.ticket) {
                    sink.meter.charge_export(true, &sink.cost);
                }
            }
            let shed = if self.cfg.codel {
                self.codel
                    .get_mut(&job.class)
                    .is_some_and(|c| c.should_shed(job.start, job.sojourn))
            } else {
                false
            };
            if shed {
                self.win_shed_codel += 1;
                self.total_shed += 1;
            } else {
                self.win_started += 1;
            }
            out.push(StartedRequest {
                ticket: job.ticket,
                pending,
                start: job.start,
                finish: job.finish,
                sojourn: job.sojourn,
                shed,
            });
        }
        out
    }

    /// When the next queued request could be granted (schedule the next
    /// pump event then).
    pub fn next_wake(&self) -> Option<SimTime> {
        self.fair.next_wake()
    }

    /// Instantaneous total queue depth.
    pub fn queue_depth(&self) -> usize {
        self.fair.total_depth()
    }

    /// Queue depth of one class.
    pub fn class_depth(&self, class: ClassId) -> usize {
        self.fair.depth(class)
    }

    /// CPU time granted to one class so far.
    pub fn class_granted(&self, class: ClassId) -> SimDuration {
        self.fair.granted(class)
    }

    /// Current brownout level.
    pub fn brownout_level(&self) -> BrownoutLevel {
        if self.cfg.brownout {
            self.brownout.level()
        } else {
            BrownoutLevel::Normal
        }
    }

    /// Lifetime shed count (caps + CoDel).
    pub fn total_shed(&self) -> u64 {
        self.total_shed
    }

    /// Lifetime retry-budget rejections.
    pub fn budget_rejections(&self) -> u64 {
        self.budget.rejections()
    }

    /// Read and reset the telemetry window.
    pub fn signals(&mut self) -> OverloadSignals {
        let shed = self.win_shed_caps + self.win_shed_codel;
        let sojourn_p99 = if self.win_sojourns_ms.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis_f64(percentile(&self.win_sojourns_ms, 0.99))
        };
        let queued_bytes = self
            .codel
            .keys()
            .map(|&c| self.fair.queued_bytes(c))
            .sum();
        let out = OverloadSignals {
            offered: self.win_offered,
            started: self.win_started,
            shed_caps: self.win_shed_caps,
            shed_codel: self.win_shed_codel,
            budget_rejected: self.win_budget_rejected,
            queue_depth: self.fair.total_depth(),
            queued_bytes,
            shed_rate: if self.win_offered == 0 {
                0.0
            } else {
                shed as f64 / self.win_offered as f64
            },
            sojourn_p99,
            brownout: self.brownout_level(),
        };
        self.win_offered = 0;
        self.win_started = 0;
        self.win_shed_caps = 0;
        self.win_shed_codel = 0;
        self.win_budget_rejected = 0;
        self.win_sojourns_ms.clear();
        out
    }

    /// Fold the whole pipeline into a digest: the `fair` scheduler, every
    /// class's `codel` shedder, the retry `budget` ledger, the `brownout`
    /// controller, parked `pending` requests, `weight_overrides`, the
    /// `telemetry` attachment, the window counters and `total_shed`.
    pub fn fold_digest(&self, d: &mut Digest) {
        self.fair.fold_digest(d);
        d.write_u64(self.codel.len() as u64);
        for (&class, c) in &self.codel {
            d.write_u64(class)
                .write_u64(c.target.as_nanos())
                .write_u64(c.interval.as_nanos())
                .write_u64(c.first_above.map_or(u64::MAX, |t| t.as_nanos()))
                .write_u64(c.dropping as u64)
                .write_u64(c.drop_next.as_nanos())
                .write_u64(c.count as u64)
                .write_u64(c.sheds);
        }
        d.write_f64(self.budget.ratio)
            .write_f64(self.budget.cap)
            .write_u64(self.budget.tokens.len() as u64);
        for (&client, &tokens) in &self.budget.tokens {
            d.write_u64(client).write_f64(tokens);
        }
        d.write_u64(self.budget.rejections);
        d.write_f64(self.brownout.enter_observability)
            .write_f64(self.brownout.enter_canary)
            .write_f64(self.brownout.exit)
            .write_f64(self.brownout.ewma_ms)
            .write_u64(match self.brownout.level {
                BrownoutLevel::Normal => 0,
                BrownoutLevel::NoObservability => 1,
                BrownoutLevel::NoCanary => 2,
            });
        d.write_u64(self.pending.len() as u64);
        for (&ticket, p) in &self.pending {
            d.write_u64(ticket)
                .write_u64(p.service.0)
                .write_u64(canal_net::hash_five_tuple(&p.tuple))
                .write_u64(p.syn as u64)
                .write_u64(p.client);
        }
        d.write_u64(self.weight_overrides.len() as u64);
        for (&tenant, &w) in &self.weight_overrides {
            d.write_u64(tenant as u64).write_u64(w as u64);
        }
        d.write_u64(self.telemetry.is_some() as u64);
        d.write_u64(self.win_offered)
            .write_u64(self.win_started)
            .write_u64(self.win_shed_caps)
            .write_u64(self.win_shed_codel)
            .write_u64(self.win_budget_rejected)
            .write_u64(self.win_sojourns_ms.len() as u64);
        for &s in &self.win_sojourns_ms {
            d.write_f64(s);
        }
        d.write_u64(self.total_shed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{Endpoint, ServiceId, TenantId, VpcAddr, VpcId};

    fn svc(tenant: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(tenant), ServiceId(1))
    }

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple::tcp(
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 2, 2), 443),
        )
    }

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn retry_budget_earns_and_spends() {
        let mut b = RetryBudget::new(0.5, 4.0);
        // No budget yet: a retry is rejected.
        assert!(!b.admit(1, AttemptKind::Retry));
        // Two first attempts earn one token.
        assert!(b.admit(1, AttemptKind::First));
        assert!(b.admit(1, AttemptKind::First));
        assert!(b.admit(1, AttemptKind::Retry));
        assert!(!b.admit(1, AttemptKind::Hedge), "budget spent");
        assert_eq!(b.rejections(), 2);
        // Budget is per client.
        assert!(b.admit(2, AttemptKind::First));
        assert!(!b.admit(2, AttemptKind::Retry));
    }

    #[test]
    fn retry_budget_caps_accrual() {
        let mut b = RetryBudget::new(1.0, 2.0);
        for _ in 0..100 {
            b.admit(1, AttemptKind::First);
        }
        assert!(b.tokens(1) <= 2.0 + 1e-9);
    }

    #[test]
    fn codel_stays_quiet_below_target() {
        let mut c = CoDel::new(MS(2), MS(20));
        for i in 0..100 {
            assert!(!c.should_shed(SimTime::from_millis(i), SimDuration::from_micros(500)));
        }
        assert_eq!(c.sheds(), 0);
    }

    #[test]
    fn codel_sheds_after_sustained_excess_then_recovers() {
        let mut c = CoDel::new(MS(2), MS(20));
        let mut shed = 0;
        for i in 0..200u64 {
            if c.should_shed(SimTime::from_millis(i), MS(5)) {
                shed += 1;
            }
        }
        assert!(shed > 0, "sustained excess sojourn must shed");
        assert!(c.dropping());
        // A single below-target observation exits dropping.
        assert!(!c.should_shed(SimTime::from_millis(201), SimDuration::from_micros(100)));
        assert!(!c.dropping());
    }

    #[test]
    fn codel_drop_rate_accelerates() {
        let mut c = CoDel::new(MS(2), MS(20));
        let mut drops = Vec::new();
        for i in 0..2000u64 {
            if c.should_shed(SimTime::from_millis(i), MS(10)) {
                drops.push(i);
            }
        }
        assert!(drops.len() >= 4);
        let first_gap = drops[1] - drops[0];
        let late_gap = drops[drops.len() - 1] - drops[drops.len() - 2];
        assert!(late_gap < first_gap, "inverse-sqrt law: gaps shrink");
    }

    #[test]
    fn brownout_escalates_and_recovers_with_hysteresis() {
        let mut b = BrownoutController::new(MS(1), MS(3), SimDuration::from_micros(500));
        for _ in 0..100 {
            b.observe(MS(2));
        }
        assert_eq!(b.level(), BrownoutLevel::NoObservability);
        for _ in 0..100 {
            b.observe(MS(6));
        }
        assert_eq!(b.level(), BrownoutLevel::NoCanary);
        // Between exit and entry: level holds (hysteresis).
        for _ in 0..100 {
            b.observe(SimDuration::from_micros(700));
        }
        assert_eq!(b.level(), BrownoutLevel::NoCanary);
        for _ in 0..200 {
            b.observe(SimDuration::ZERO);
        }
        assert_eq!(b.level(), BrownoutLevel::Normal);
    }

    fn offer_first(
        ov: &mut OverloadControl,
        now: SimTime,
        tenant: u32,
        sport: u16,
    ) -> Result<u64, GatewayError> {
        ov.offer(
            now,
            svc(tenant),
            Priority::Interactive,
            tuple(sport),
            true,
            u64::from(tenant),
            AttemptKind::First,
            256,
        )
    }

    #[test]
    fn surge_fills_own_queue_not_the_peer() {
        let cfg = OverloadConfig {
            ingress_cores: 1,
            base_cpu: SimDuration::from_micros(100),
            codel: false,
            brownout: false,
            ..OverloadConfig::default()
        };
        let mut ov = OverloadControl::new(cfg);
        // Tenant 1 floods; tenant 2 sends one request afterwards.
        for i in 0..400u16 {
            let _ = offer_first(&mut ov, SimTime::ZERO, 1, i);
        }
        offer_first(&mut ov, SimTime::from_micros(150), 2, 1).unwrap();
        let surger = ov.class_of(svc(1), Priority::Interactive);
        let victim = ov.class_of(svc(2), Priority::Interactive);
        assert!(ov.class_depth(surger) > 100);
        // The victim's request is granted promptly despite the flood.
        let started = ov.pump(SimTime::from_millis(1));
        let v = started.iter().find(|s| s.pending.service == svc(2)).unwrap();
        assert!(
            v.sojourn <= SimDuration::from_micros(300),
            "victim sojourn {:?}",
            v.sojourn
        );
        assert_eq!(ov.class_depth(victim), 0);
    }

    #[test]
    fn caps_tail_drop_the_surge() {
        let cfg = OverloadConfig {
            ingress_cores: 1,
            max_slots: 16,
            base_cpu: SimDuration::from_micros(100),
            ..OverloadConfig::default()
        };
        let mut ov = OverloadControl::new(cfg);
        let mut shed = 0;
        for i in 0..100u16 {
            if offer_first(&mut ov, SimTime::ZERO, 1, i) == Err(GatewayError::OverloadShed) {
                shed += 1;
            }
        }
        assert!(shed > 50, "{shed} tail-dropped at the caps");
        let sig = ov.signals();
        assert_eq!(sig.shed_caps, shed);
        assert!(sig.shed_rate > 0.5);
        assert!(sig.under_pressure());
    }

    #[test]
    fn budget_exhaustion_rejects_retries_not_first_attempts() {
        let mut ov = OverloadControl::new(OverloadConfig::default());
        // Fresh client: a retry with no accrued budget is rejected...
        assert_eq!(
            ov.offer(
                SimTime::ZERO,
                svc(1),
                Priority::Interactive,
                tuple(1),
                true,
                7,
                AttemptKind::Retry,
                256,
            ),
            Err(GatewayError::RetryBudgetExhausted)
        );
        // ...while a first attempt sails through.
        assert!(offer_first(&mut ov, SimTime::ZERO, 1, 2).is_ok());
        assert_eq!(ov.budget_rejections(), 1);
    }

    #[test]
    fn brownout_reduces_demand_before_shedding() {
        let cfg = OverloadConfig {
            ingress_cores: 1,
            base_cpu: SimDuration::from_micros(100),
            codel: false,
            brownout: true,
            brownout_observability: SimDuration::from_micros(200),
            brownout_canary: SimDuration::from_micros(800),
            brownout_exit: SimDuration::from_micros(100),
            ..OverloadConfig::default()
        };
        let mut ov = OverloadControl::new(cfg);
        // Build pressure: a sustained backlog raises sojourns.
        for i in 0..200u64 {
            let _ = offer_first(&mut ov, SimTime::from_micros(i * 50), 1, i as u16);
        }
        ov.pump(SimTime::from_millis(20));
        assert!(ov.brownout_level() > BrownoutLevel::Normal);
        // Demand of new offers shrinks: an offered job's demand is base *
        // (1 - fracs). Verify indirectly: granted CPU per started job drops.
        let before = ov.class_granted(ov.class_of(svc(1), Priority::Interactive));
        let served0 = ov.fair.served_count(ov.class_of(svc(1), Priority::Interactive));
        for i in 0..50u64 {
            let _ = offer_first(&mut ov, SimTime::from_millis(21) + SimDuration::from_micros(i), 1, 500 + i as u16);
        }
        ov.pump(SimTime::from_millis(40));
        let class = ov.class_of(svc(1), Priority::Interactive);
        let per_job = (ov.class_granted(class) - before).as_nanos() as f64
            / (ov.fair.served_count(class) - served0) as f64;
        assert!(
            per_job < 100_000.0 * 0.95,
            "browned-out jobs demand less CPU: {per_job}ns"
        );
    }

    #[test]
    fn brownout_sheds_telemetry_before_any_request() {
        use canal_sim::SimRng;
        let cfg = OverloadConfig {
            ingress_cores: 1,
            base_cpu: SimDuration::from_micros(100),
            codel: true,
            codel_target: SimDuration::from_secs(1), // effectively never sheds
            brownout: true,
            brownout_observability: SimDuration::from_micros(200),
            brownout_canary: SimDuration::from_millis(50),
            brownout_exit: SimDuration::from_micros(100),
            ..OverloadConfig::default()
        };
        let mut ov = OverloadControl::new(cfg);
        let mut rng = SimRng::seed(7);
        ov.attach_telemetry(TelemetrySink::new(HeadSampler::new(0.5, &mut rng)));
        // Calm phase: spans charge, nothing is refunded.
        for i in 0..4u16 {
            offer_first(&mut ov, SimTime::from_micros(u64::from(i) * 200), 1, i).unwrap();
        }
        ov.pump(SimTime::from_millis(1));
        let m = ov.telemetry_meter().unwrap();
        assert_eq!(m.refunded_spans(), 0);
        assert_eq!(m.spans_recorded(), 4);
        // Pressure phase: the backlog drives the sojourn EWMA past the
        // observability threshold. Telemetry cost must come back as refunds
        // while not a single request has been dropped — the brownout ladder
        // sheds optional work strictly before requests.
        for i in 0..200u16 {
            offer_first(&mut ov, SimTime::from_millis(2), 1, 100 + i).unwrap();
        }
        ov.pump(SimTime::from_millis(40));
        let m = ov.telemetry_meter().unwrap();
        assert!(m.refunded_spans() > 0, "brownout must refund span cost");
        assert!(m.refunded_cpu() > SimDuration::ZERO);
        assert_eq!(ov.total_shed(), 0, "telemetry sheds strictly before requests");
        let sampler = ov.telemetry_sampler().unwrap();
        assert!(sampler.is_shed());
        assert!(sampler.shed_refused() > 0);
    }

    #[test]
    fn interactive_outranks_bulk_under_load() {
        let cfg = OverloadConfig {
            ingress_cores: 1,
            base_cpu: SimDuration::from_micros(100),
            codel: false,
            brownout: false,
            ..OverloadConfig::default()
        };
        let mut ov = OverloadControl::new(cfg);
        for i in 0..100u16 {
            ov.offer(
                SimTime::ZERO,
                svc(1),
                Priority::Bulk,
                tuple(i),
                true,
                1,
                AttemptKind::First,
                256,
            )
            .unwrap();
            ov.offer(
                SimTime::ZERO,
                svc(1),
                Priority::Interactive,
                tuple(1000 + i),
                true,
                1,
                AttemptKind::First,
                256,
            )
            .unwrap();
        }
        ov.pump(SimTime::from_millis(5));
        let inter = ov.class_granted(ov.class_of(svc(1), Priority::Interactive));
        let bulk = ov.class_granted(ov.class_of(svc(1), Priority::Bulk));
        let ratio = inter.as_nanos() as f64 / bulk.as_nanos() as f64;
        assert!(ratio > 2.0, "interactive boost shapes the split: {ratio}");
    }

    #[test]
    fn fifo_baseline_shares_one_class() {
        let mut ov = OverloadControl::new(OverloadConfig::fifo_baseline());
        assert_eq!(
            ov.class_of(svc(1), Priority::Interactive),
            ov.class_of(svc(9), Priority::Bulk)
        );
        offer_first(&mut ov, SimTime::ZERO, 1, 1).unwrap();
        offer_first(&mut ov, SimTime::ZERO, 9, 2).unwrap();
        assert!(ov.pump(SimTime::from_millis(1)).len() == 2);
    }

    #[test]
    fn signals_window_resets_on_read() {
        let mut ov = OverloadControl::new(OverloadConfig::default());
        offer_first(&mut ov, SimTime::ZERO, 1, 1).unwrap();
        ov.pump(SimTime::from_millis(1));
        let s1 = ov.signals();
        assert_eq!((s1.offered, s1.started), (1, 1));
        let s2 = ov.signals();
        assert_eq!((s2.offered, s2.started), (0, 0));
    }
}
