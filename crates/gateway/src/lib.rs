//! # canal-gateway
//!
//! The centralized multi-tenant mesh gateway (§4.2–§4.4, §6.1–§6.2):
//!
//! * [`sharding`] — shuffle sharding: every service gets a near-unique
//!   combination of backends so no single failure pattern takes out two
//!   services together (Fig. 8, Fig. 19).
//! * [`redirector`] — the Beamer-style disaggregated load balancer: ECMP in
//!   front, per-service fixed-size bucket tables with priority replica
//!   chains (longer than Beamer's 2, §4.4) keeping established sessions on
//!   their replicas across scale events (Fig. 26).
//! * [`tunnel`] — session aggregation over VXLAN: many sessions ride few
//!   tunnels, spread across replica cores by outer source port (Fig. 9).
//! * [`health`] — the §6.1 multi-level health-check aggregation
//!   (service → core → replica levels, Tables 6/7).
//! * [`failure`] — hierarchical failure recovery: replica → backend →
//!   AZ (Fig. 8), with availability queries.
//! * [`resilience`] — the resilient request path: per-request deadlines,
//!   capped exponential backoff with deterministic jitter, hedged retries,
//!   per-backend outlier ejection, and DNS-failover degradation — the
//!   datapath half of the Fig. 8 recovery story.
//! * [`overload`] — proactive overload control in front of the dispatch
//!   path: per-tenant deficit-weighted fair queues with slot/byte caps,
//!   CoDel shedding keyed on queue sojourn, per-client retry-budget
//!   admission, and brownout of optional L7 work — the defense the sandbox
//!   (reactive, post-detection) composes with.
//! * [`sandbox`] — exception handling: lossy/lossless sandbox migration and
//!   redirector-level throttling (§6.2).
//! * [`drain`] — graceful gateway drain over the redirector's bucket
//!   tables: `Draining` stops new sessions at once, established sessions
//!   daisy-chain to their owner until they close, and a deadline bounds the
//!   window — planned failover loses zero established sessions.
//! * [`certs`] — rollback-safe certificate distribution: the gateway's
//!   `ActiveCertBundle { running, staged }` pair mirrors [`config`] for
//!   trust bundles (tenant/generation/clock validation → NACK, fail-static
//!   serving on the running bundle), plus the typed bridge from handshake
//!   [`canal_crypto::MtlsError`]s into the resilience layer.
//! * [`config`] — version-skew-safe configuration: every gateway holds an
//!   `ActiveConfig { running, staged }` pair, atomically commits or rejects
//!   a staged version (semantic validation → NACK), and keeps serving the
//!   last committed config when pushes are blocked or poisoned
//!   (fail-static, §2.2's bad-config outage vector).
//! * [`policy`] — the same fail-static contract for the network-policy
//!   plane: `ActivePolicy { running, staged }` validates *and compiles* a
//!   staged [`canal_policy::PolicySpec`] atomically, NACKing semantic
//!   poison while the datapath keeps enforcing the last committed
//!   compiled set (DESIGN.md §14).
//! * [`gateway`] — the assembled gateway: service placement, per-backend
//!   CPU/session accounting, request dispatch, and the water-level signals
//!   the control plane consumes.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod certs;
pub mod config;
pub mod drain;
pub mod failure;
pub mod gateway;
pub mod health;
pub mod overload;
pub mod policy;
pub mod redirector;
pub mod resilience;
pub mod sandbox;
pub mod sharding;
pub mod tunnel;

pub use certs::{ActiveCertBundle, BundleRejection, CertBundleSpec, CertFault};
pub use config::{ActiveConfig, ConfigRejection, ConfigSpec, RouteSpec};
pub use drain::{DrainError, DrainPhase, DrainReject, GatewayDrain};
pub use failure::{FailureDomain, PlacementView, UnknownDomain};
pub use gateway::{BackendId, Gateway, GatewayConfig, ReplicaId};
pub use health::HealthCheckPlan;
pub use overload::{
    AttemptKind, BrownoutController, BrownoutLevel, ClientId, CoDel, OverloadConfig,
    OverloadControl, OverloadSignals, RetryBudget, TelemetrySink,
};
pub use policy::{ActivePolicy, PolicyPushRejection};
pub use redirector::{BucketTable, DispatchDecision, Redirector};
pub use resilience::{
    AttemptError, DispatchCounters, DispatchOutcome, OutlierDetector, ResilienceConfig,
    ResilienceStats, ResilientDispatcher,
};
pub use sandbox::{MigrationKind, Sandbox};
pub use sharding::ShuffleShardPlanner;
pub use tunnel::{SessionAggregator, TunnelConfig};
