//! Exception handling: sandbox migration and throttling (§6.2).
//!
//! Three tools, chosen by blast pattern:
//!
//! * **Lossy migration** — sessions reset; the service reconstructs in a
//!   sandbox within seconds. Used when abnormal traffic threatens the
//!   gateway (Case #1: TCP-session surge without an RPS surge).
//! * **Lossless migration** — new sessions land in the sandbox, existing
//!   sessions drain by flow timeout (median ≈20 min). Used when the backend
//!   is stable but the growth pattern is suspicious (Case #2).
//! * **Throttling** — early rate limiting at the redirector to protect the
//!   *user's* cluster (Case #3: hotspot events); intensity is relaxed as
//!   the customer scales.

use canal_net::{GlobalServiceId, TokenBucket};
use canal_sim::{stats, Digest, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Which migration flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// Reset all sessions, reconstruct in the sandbox within seconds.
    Lossy,
    /// New sessions to the sandbox; old sessions drain by timeout.
    Lossless,
}

/// Outcome of starting a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Migration flavour.
    pub kind: MigrationKind,
    /// When the service is fully served from the sandbox.
    pub completed_at: SimTime,
    /// Sessions reset (lossy only).
    pub sessions_reset: usize,
}

#[derive(Debug, Clone, Copy)]
struct SandboxedService {
    completed_at: SimTime,
}

/// The sandbox: tracks migrated services and redirector-level throttles.
#[derive(Debug, Default)]
pub struct Sandbox {
    services: BTreeMap<GlobalServiceId, SandboxedService>,
    throttles: BTreeMap<GlobalServiceId, TokenBucket>,
    /// Config-push plus session-rebuild time for a lossy move (seconds per
    /// the paper: "within seconds").
    lossy_setup: SimDuration,
}

impl Sandbox {
    /// Sandbox with the default 3 s lossy setup time.
    pub fn new() -> Self {
        Sandbox {
            services: BTreeMap::new(),
            throttles: BTreeMap::new(),
            lossy_setup: SimDuration::from_secs(3),
        }
    }

    /// Start a lossy migration: all sessions reset, service live in the
    /// sandbox after the setup time.
    pub fn migrate_lossy(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        active_sessions: usize,
    ) -> MigrationReport {
        let completed_at = now + self.lossy_setup;
        self.services.insert(service, SandboxedService { completed_at });
        MigrationReport {
            kind: MigrationKind::Lossy,
            completed_at,
            sessions_reset: active_sessions,
        }
    }

    /// Start a lossless migration: completion waits for the last existing
    /// flow to drain (`session_remaining` are the remaining lifetimes of
    /// live flows). No session is reset.
    pub fn migrate_lossless(
        &mut self,
        now: SimTime,
        service: GlobalServiceId,
        session_remaining: &[SimDuration],
    ) -> MigrationReport {
        let drain = session_remaining
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        let completed_at = now + drain;
        self.services.insert(service, SandboxedService { completed_at });
        MigrationReport {
            kind: MigrationKind::Lossless,
            completed_at,
            sessions_reset: 0,
        }
    }

    /// Whether the service routes to the sandbox at `now` (lossless
    /// migrations route *new* flows immediately; this reports full cutover).
    pub fn fully_migrated(&self, service: GlobalServiceId, now: SimTime) -> bool {
        self.services
            .get(&service)
            .is_some_and(|s| now >= s.completed_at)
    }

    /// Whether the service is under sandbox control at all.
    pub fn is_sandboxed(&self, service: GlobalServiceId) -> bool {
        self.services.contains_key(&service)
    }

    /// Release a service back to the main pool.
    pub fn release(&mut self, service: GlobalServiceId) -> bool {
        self.services.remove(&service).is_some()
    }

    /// Install a redirector-level throttle for a service ("early rate
    /// limiting, dropping packets ... when they reach the redirector").
    pub fn throttle(&mut self, service: GlobalServiceId, rps: f64, burst: f64) {
        self.throttles.insert(service, TokenBucket::new(rps, burst));
    }

    /// Relax (or tighten) an existing throttle as the customer scales.
    pub fn adjust_throttle(&mut self, now: SimTime, service: GlobalServiceId, rps: f64) -> bool {
        match self.throttles.get_mut(&service) {
            Some(b) => {
                b.set_rate(now, rps);
                true
            }
            None => false,
        }
    }

    /// Remove a throttle.
    pub fn unthrottle(&mut self, service: GlobalServiceId) -> bool {
        self.throttles.remove(&service).is_some()
    }

    /// Early admission check at the redirector: `true` = admit. Services
    /// without a throttle are always admitted.
    pub fn admit(&mut self, now: SimTime, service: GlobalServiceId) -> bool {
        match self.throttles.get_mut(&service) {
            Some(bucket) => bucket.admit(now),
            None => true,
        }
    }

    /// Fold the sandboxed `services`, the installed `throttles` (by keyed
    /// service — the bucket fill level is a `canal_net` implementation
    /// detail), and the `lossy_setup` knob into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.services.len() as u64);
        for (svc, s) in &self.services {
            d.write_u64(svc.0).write_u64(s.completed_at.as_nanos());
        }
        d.write_u64(self.throttles.len() as u64);
        for svc in self.throttles.keys() {
            d.write_u64(svc.0);
        }
        d.write_u64(self.lossy_setup.as_nanos());
    }
}

/// Median lossless drain time over historical flow-lifetime samples — the
/// "approximately 20 min" the paper reports. Exposed for the experiments.
pub fn median_drain(samples: &[f64]) -> f64 {
    stats::percentile(samples, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    #[test]
    fn lossy_completes_within_seconds_but_resets_sessions() {
        let mut sb = Sandbox::new();
        let r = sb.migrate_lossy(T(100), svc(1), 5000);
        assert_eq!(r.kind, MigrationKind::Lossy);
        assert_eq!(r.sessions_reset, 5000);
        assert!(r.completed_at.since(T(100)) <= SimDuration::from_secs(5));
        assert!(!sb.fully_migrated(svc(1), T(101)));
        assert!(sb.fully_migrated(svc(1), T(103)));
    }

    #[test]
    fn lossless_waits_for_drain_but_loses_nothing() {
        let mut sb = Sandbox::new();
        let lifetimes = [
            SimDuration::from_secs(60),
            SimDuration::from_secs(1200), // a 20-minute flow
            SimDuration::from_secs(5),
        ];
        let r = sb.migrate_lossless(T(0), svc(2), &lifetimes);
        assert_eq!(r.sessions_reset, 0);
        assert_eq!(r.completed_at, T(1200));
        assert!(sb.is_sandboxed(svc(2)));
        assert!(!sb.fully_migrated(svc(2), T(600)));
        assert!(sb.fully_migrated(svc(2), T(1200)));
    }

    #[test]
    fn lossless_with_no_sessions_is_instant() {
        let mut sb = Sandbox::new();
        let r = sb.migrate_lossless(T(7), svc(3), &[]);
        assert_eq!(r.completed_at, T(7));
    }

    #[test]
    fn release_returns_service_to_pool() {
        let mut sb = Sandbox::new();
        sb.migrate_lossy(T(0), svc(1), 10);
        assert!(sb.release(svc(1)));
        assert!(!sb.release(svc(1)));
        assert!(!sb.is_sandboxed(svc(1)));
    }

    #[test]
    fn throttle_drops_over_quota_and_relaxes() {
        let mut sb = Sandbox::new();
        sb.throttle(svc(1), 2.0, 2.0);
        assert!(sb.admit(T(0), svc(1)));
        assert!(sb.admit(T(0), svc(1)));
        assert!(!sb.admit(T(0), svc(1)), "burst exhausted");
        // Other services unaffected.
        assert!(sb.admit(T(0), svc(2)));
        // Customer scaled: relax to 1000 rps.
        assert!(sb.adjust_throttle(T(1), svc(1), 1000.0));
        assert!(sb.admit(T(2), svc(1)));
        assert!(sb.unthrottle(svc(1)));
        assert!(!sb.adjust_throttle(T(3), svc(1), 10.0));
    }

    #[test]
    fn median_drain_matches_paper_scale() {
        // Flow lifetimes with a 20-minute median.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 60.0 + (i as f64 / 999.0) * 2280.0)
            .collect();
        let med = median_drain(&samples);
        assert!((1150.0..1250.0).contains(&med), "{med}");
    }
}
