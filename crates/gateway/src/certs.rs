//! Fail-static certificate-bundle serving: the cert analogue of
//! [`crate::config`]'s `{running, staged}` contract.
//!
//! A gateway terminates mTLS for every pod behind it (§4.1.3), so the
//! trust state it validates peer certs against — CA generation, revocation
//! floor, expiry horizon — is distributed control-plane state with the same
//! outage potential as a route table (§2.2). This module applies the same
//! discipline the PR-5 rollout gave configs:
//!
//! * A pushed [`CertBundleSpec`] is **staged**; handshakes keep validating
//!   against the last committed `running` bundle.
//! * `commit_staged` runs semantic validation — mismatched tenant, a CA
//!   generation of zero or one that regressed, a clock-skewed `not_after`
//!   (already expired on arrival, or not after its own issuance instant),
//!   a stale version — and either swaps atomically or rejects with a
//!   [`BundleRejection`] the data plane NACKs upstream.
//! * On rejection the staged bundle is discarded and the gateway keeps
//!   serving `running` unchanged — **fail-static**: a poisoned bundle
//!   never takes tenant handshakes down with it.
//!
//! The rotation controller (`canal_control::certrotation`) drives waves of
//! these commits through the rollout controller and rolls the fleet back
//! to the last converged bundle when any gateway NACKs.
//!
//! [`CertFault`] is the typed bridge from [`MtlsError`] into the
//! resilience layer: expiry is retryable-after-refresh, revocation is
//! terminal (not retry fuel for the retry budget).

use canal_crypto::mtls::MtlsError;
use canal_sim::{Digest, SimTime};

// Re-exported so upstream crates (the rotation controller in
// `canal_control`) can build bundles through the gateway's cert surface
// without taking a direct `canal_crypto` dependency — the layering DAG
// keeps crypto below the gateway only.
pub use canal_crypto::lifecycle::TrustBundle;

/// A versioned, distributable cert bundle: the trust view gateways should
/// validate a tenant's handshakes against, plus the issuance metadata the
/// commit-time sanity checks need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertBundleSpec {
    /// The validation view (carries `version`, tenant, generation,
    /// revocation floor, individual revocations).
    pub trust: TrustBundle,
    /// When the controller cut the bundle.
    pub issued_at: SimTime,
    /// Expiry horizon of certs issued under this bundle; the commit check
    /// rejects horizons at or before `issued_at` (and at or before the
    /// committing gateway's clock) as issuance-clock skew.
    pub not_after: SimTime,
}

impl CertBundleSpec {
    /// Distribution version (from the rotation controller's store).
    pub fn version(&self) -> u64 {
        self.trust.version
    }

    /// Fold the spec into a digest (content-sensitive).
    pub fn fold_digest(&self, d: &mut Digest) {
        self.trust.fold_digest(d);
        d.write_u64(self.issued_at.as_nanos())
            .write_u64(self.not_after.as_nanos());
    }
}

/// Why a staged cert bundle was rejected instead of committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleRejection {
    /// The bundle is for a different tenant than this serving slot.
    MismatchedTenant {
        /// Tenant named in the bundle.
        bundle: u64,
        /// Tenant this slot serves.
        serving: u64,
    },
    /// The CA generation is zero (never valid) or regressed below the
    /// running bundle's — committing it would resurrect revoked certs.
    BadCaGeneration {
        /// Generation in the staged bundle.
        staged: u64,
        /// Generation currently running (0 when nothing runs yet).
        running: u64,
    },
    /// The bundle's validity horizon is behind its own issuance instant or
    /// behind the committing gateway's clock — the issuance clock is
    /// skewed, and committing would instantly expire the tenant's fleet.
    ClockSkewedNotAfter,
    /// The staged version is not newer than the running one.
    StaleVersion {
        /// Version of the staged bundle.
        staged: u64,
        /// Version currently running.
        running: u64,
    },
    /// Nothing is staged.
    NothingStaged,
    /// The push carries a controller epoch below the highest this gateway
    /// has observed: a zombie incarnation's push, fenced before any
    /// version or content check.
    StaleEpoch {
        /// Epoch the push carried.
        pushed: u64,
        /// Highest controller epoch this gateway has observed.
        floor: u64,
    },
}

impl std::fmt::Display for BundleRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleRejection::MismatchedTenant { bundle, serving } => {
                write!(f, "bundle for tenant {bundle} pushed to tenant {serving}")
            }
            BundleRejection::BadCaGeneration { staged, running } => {
                write!(f, "bad CA generation {staged} (running {running})")
            }
            BundleRejection::ClockSkewedNotAfter => write!(f, "clock-skewed not_after"),
            BundleRejection::StaleVersion { staged, running } => {
                write!(f, "stale bundle version {staged} (running {running})")
            }
            BundleRejection::NothingStaged => write!(f, "nothing staged"),
            BundleRejection::StaleEpoch { pushed, floor } => {
                write!(f, "fenced bundle push from stale controller epoch {pushed} (floor {floor})")
            }
        }
    }
}

/// The `{running, staged}` cert-bundle pair a gateway validates from.
///
/// Invariants (DESIGN.md §12):
/// * Handshake validation always uses the last *committed* bundle.
/// * Rejection leaves `running` untouched and clears `staged` (fail-static).
/// * `running.version()` is strictly monotone across commits (rollback via
///   [`Self::roll_back_to`] deliberately excepted, content checks intact).
#[derive(Debug, Clone, Default)]
pub struct ActiveCertBundle {
    running: Option<CertBundleSpec>,
    staged: Option<CertBundleSpec>,
    committed_at: Option<SimTime>,
    commits: u64,
    rejections: u64,
    /// Highest controller epoch observed on any push or probe; lower
    /// epochs are fenced ([`BundleRejection::StaleEpoch`]).
    epoch_floor: u64,
    /// Pushes fenced for carrying a stale epoch.
    fenced_pushes: u64,
}

impl ActiveCertBundle {
    /// Empty pair: nothing running, nothing staged.
    pub fn new() -> Self {
        ActiveCertBundle::default()
    }

    /// Stage a pushed bundle without applying it. Handshake validation is
    /// unaffected until [`Self::commit_staged`]. Staging twice replaces
    /// the previous staged bundle (last push wins).
    pub fn stage(&mut self, spec: CertBundleSpec) {
        self.staged = Some(spec);
    }

    /// Observe a controller incarnation's epoch (probes and pushes). The
    /// floor is monotone; returns true if it advanced.
    pub fn observe_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.epoch_floor {
            self.epoch_floor = epoch;
            return true;
        }
        false
    }

    /// Epoch-fenced stage: refuse the push if its epoch is below the
    /// observed floor, else raise the floor and stage.
    pub fn stage_fenced(
        &mut self,
        spec: CertBundleSpec,
        epoch: u64,
    ) -> Result<(), BundleRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(BundleRejection::StaleEpoch { pushed: epoch, floor: self.epoch_floor });
        }
        self.observe_epoch(epoch);
        self.stage(spec);
        Ok(())
    }

    /// Epoch-fenced [`Self::roll_back_to`]: rollbacks bypass version
    /// monotonicity *and* generation regression, so they are exactly the
    /// push the fence must stop.
    pub fn roll_back_to_fenced(
        &mut self,
        now: SimTime,
        spec: CertBundleSpec,
        serving_tenant: u64,
        epoch: u64,
    ) -> Result<u64, BundleRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(BundleRejection::StaleEpoch { pushed: epoch, floor: self.epoch_floor });
        }
        self.observe_epoch(epoch);
        self.roll_back_to(now, spec, serving_tenant)
    }

    /// Highest controller epoch this gateway has observed.
    pub fn epoch_floor(&self) -> u64 {
        self.epoch_floor
    }

    /// Pushes fenced for carrying a stale controller epoch.
    pub fn fenced_pushes(&self) -> u64 {
        self.fenced_pushes
    }

    /// Content validation, independent of the running pair. Pure: used by
    /// `commit_staged` and by controllers pre-validating before a push.
    /// `running_generation` is 0 when nothing runs yet.
    pub fn validate(
        spec: &CertBundleSpec,
        now: SimTime,
        serving_tenant: u64,
        running_generation: u64,
    ) -> Result<(), BundleRejection> {
        if spec.trust.tenant != serving_tenant {
            return Err(BundleRejection::MismatchedTenant {
                bundle: spec.trust.tenant,
                serving: serving_tenant,
            });
        }
        if spec.trust.generation == 0 || spec.trust.generation < running_generation {
            return Err(BundleRejection::BadCaGeneration {
                staged: spec.trust.generation,
                running: running_generation,
            });
        }
        if spec.not_after <= spec.issued_at || spec.not_after <= now {
            return Err(BundleRejection::ClockSkewedNotAfter);
        }
        Ok(())
    }

    /// Atomically commit the staged bundle if it validates, else reject it
    /// and keep validating against the running one. Either way `staged` is
    /// cleared. Returns the committed version, or the rejection to NACK
    /// with.
    pub fn commit_staged(
        &mut self,
        now: SimTime,
        serving_tenant: u64,
    ) -> Result<u64, BundleRejection> {
        let Some(spec) = self.staged.take() else {
            return Err(BundleRejection::NothingStaged);
        };
        if let Some(run) = &self.running {
            if spec.version() <= run.version() {
                self.rejections += 1;
                return Err(BundleRejection::StaleVersion {
                    staged: spec.version(),
                    running: run.version(),
                });
            }
        }
        let running_generation = self.running.as_ref().map_or(0, |r| r.trust.generation);
        match Self::validate(&spec, now, serving_tenant, running_generation) {
            Ok(()) => {
                let v = spec.version();
                self.running = Some(spec);
                self.committed_at = Some(now);
                self.commits += 1;
                Ok(v)
            }
            Err(rej) => {
                self.rejections += 1;
                Err(rej)
            }
        }
    }

    /// Roll back to the last converged bundle, bypassing version
    /// monotonicity and the generation-regression check (a rollback
    /// deliberately re-runs the previous generation). Tenant and clock
    /// sanity still apply: a rollback target that no longer validates is
    /// refused, keeping fail-static intact.
    pub fn roll_back_to(
        &mut self,
        now: SimTime,
        spec: CertBundleSpec,
        serving_tenant: u64,
    ) -> Result<u64, BundleRejection> {
        Self::validate(&spec, now, serving_tenant, 0)?;
        let v = spec.version();
        self.staged = None;
        self.running = Some(spec);
        self.committed_at = Some(now);
        self.commits += 1;
        Ok(v)
    }

    /// The bundle handshakes currently validate against, if any.
    pub fn running(&self) -> Option<&CertBundleSpec> {
        self.running.as_ref()
    }

    /// The staged-but-uncommitted bundle, if any.
    pub fn staged(&self) -> Option<&CertBundleSpec> {
        self.staged.as_ref()
    }

    /// Version being served, if a bundle has ever committed.
    pub fn running_version(&self) -> Option<u64> {
        self.running.as_ref().map(|c| c.version())
    }

    /// When the running bundle committed.
    pub fn committed_at(&self) -> Option<SimTime> {
        self.committed_at
    }

    /// Successful commits (including rollbacks).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Rejected staged bundles — each one is a NACK upstream.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Fold the `{running, staged}` pair into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.running_version().unwrap_or(0));
        d.write_u64(self.commits);
        d.write_u64(self.rejections);
        if let Some(c) = &self.running {
            c.fold_digest(d);
        }
        match &self.staged {
            None => {
                d.write_u64(0);
            }
            Some(s) => {
                d.write_u64(1);
                s.fold_digest(d);
            }
        }
        d.write_u64(self.committed_at.map_or(u64::MAX, |t| t.as_nanos()));
        d.write_u64(self.epoch_floor);
        d.write_u64(self.fenced_pushes);
    }
}

/// A certificate-lifecycle handshake failure, typed for the resilience
/// layer: the two [`MtlsError`] variants whose retry semantics differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertFault {
    /// The presented cert was past `not_after`. Retryable-after-refresh:
    /// one retry is allowed, representing the workload fetching a
    /// re-issued cert; if that also expires, the CA is broken and the
    /// request fails.
    Expired,
    /// The presented serial is revoked. Terminal: retrying cannot succeed
    /// until re-issuance, so the failure is not retry fuel.
    Revoked,
}

impl TryFrom<MtlsError> for CertFault {
    type Error = MtlsError;

    /// Typed conversion from the handshake layer: lifecycle failures map
    /// to a [`CertFault`]; every other [`MtlsError`] passes through as the
    /// error (callers treat those as ordinary backend failures).
    fn try_from(e: MtlsError) -> Result<Self, MtlsError> {
        match e {
            MtlsError::CertificateExpired => Ok(CertFault::Expired),
            MtlsError::CertificateRevoked => Ok(CertFault::Revoked),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_sim::SimDuration;

    fn bundle(version: u64, tenant: u64, generation: u64, issued: u64, ttl: u64) -> CertBundleSpec {
        CertBundleSpec {
            trust: TrustBundle {
                version,
                tenant,
                generation,
                revocation_floor: generation << 32,
                revoked: Vec::new(),
            },
            issued_at: SimTime::from_secs(issued),
            not_after: SimTime::from_secs(issued + ttl),
        }
    }

    #[test]
    fn commit_swaps_atomically() {
        let mut ac = ActiveCertBundle::new();
        ac.stage(bundle(1, 7, 1, 0, 3600));
        assert!(ac.running().is_none(), "staging does not serve");
        let v = ac.commit_staged(SimTime::from_secs(1), 7);
        assert_eq!(v, Ok(1));
        assert_eq!(ac.running_version(), Some(1));
        assert!(ac.staged().is_none());
    }

    #[test]
    fn poisoned_bundles_rejected_fail_static() {
        let now = SimTime::from_secs(10);
        let mut ac = ActiveCertBundle::new();
        ac.stage(bundle(1, 7, 1, 0, 3600));
        ac.commit_staged(now, 7).ok();

        // Mismatched tenant.
        ac.stage(bundle(2, 9, 2, 10, 3600));
        assert_eq!(
            ac.commit_staged(now, 7),
            Err(BundleRejection::MismatchedTenant { bundle: 9, serving: 7 })
        );
        // Clock-skewed not_after: already expired on arrival.
        let mut skewed = bundle(3, 7, 2, 10, 3600);
        skewed.not_after = SimTime::from_secs(5);
        ac.stage(skewed);
        assert_eq!(ac.commit_staged(now, 7), Err(BundleRejection::ClockSkewedNotAfter));
        // Bad CA generation: zero, then regression.
        ac.stage(bundle(4, 7, 0, 10, 3600));
        assert_eq!(
            ac.commit_staged(now, 7),
            Err(BundleRejection::BadCaGeneration { staged: 0, running: 1 })
        );
        ac.stage(bundle(5, 7, 5, 10, 3600));
        ac.commit_staged(now, 7).unwrap();
        ac.stage(bundle(6, 7, 4, 10, 3600));
        assert_eq!(
            ac.commit_staged(now, 7),
            Err(BundleRejection::BadCaGeneration { staged: 4, running: 5 })
        );
        // Fail-static throughout: the last good bundle kept serving.
        assert_eq!(ac.running_version(), Some(5));
        assert_eq!(ac.rejections(), 4);
    }

    #[test]
    fn stale_version_rejected_but_rollback_allowed() {
        let now = SimTime::from_secs(1);
        let mut ac = ActiveCertBundle::new();
        ac.stage(bundle(5, 3, 2, 0, 3600));
        ac.commit_staged(now, 3).unwrap();
        ac.stage(bundle(5, 3, 2, 0, 3600));
        assert_eq!(
            ac.commit_staged(now, 3),
            Err(BundleRejection::StaleVersion { staged: 5, running: 5 })
        );
        assert_eq!(ac.commit_staged(now, 3), Err(BundleRejection::NothingStaged));
        // Rollback reinstates an older version and generation...
        let v = ac.roll_back_to(now, bundle(4, 3, 1, 0, 3600), 3);
        assert_eq!(v, Ok(4));
        assert_eq!(ac.running_version(), Some(4));
        // ...but a rollback target that no longer validates is refused.
        let bad = ac.roll_back_to(now, bundle(3, 9, 1, 0, 3600), 3);
        assert!(bad.is_err());
        assert_eq!(ac.running_version(), Some(4));
    }

    #[test]
    fn cert_fault_conversion_is_typed() {
        assert_eq!(CertFault::try_from(MtlsError::CertificateExpired), Ok(CertFault::Expired));
        assert_eq!(CertFault::try_from(MtlsError::CertificateRevoked), Ok(CertFault::Revoked));
        assert_eq!(CertFault::try_from(MtlsError::BadRecord), Err(MtlsError::BadRecord));
        assert_eq!(CertFault::try_from(MtlsError::BadState), Err(MtlsError::BadState));
    }

    #[test]
    fn digest_tracks_content() {
        let build = || {
            let mut ac = ActiveCertBundle::new();
            ac.stage(bundle(1, 7, 1, 0, 3600));
            ac.commit_staged(SimTime::from_secs(1), 7).ok();
            let mut d = Digest::new();
            ac.fold_digest(&mut d);
            d.value()
        };
        assert_eq!(build(), build());
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn stale_epoch_bundle_push_is_fenced() {
        let mut ab = ActiveCertBundle::new();
        assert!(ab.stage_fenced(bundle(1, 7, 1, 0, 100), 1).is_ok());
        ab.commit_staged(SimTime::from_secs(1), 7).ok();
        ab.observe_epoch(2);
        let r = ab.stage_fenced(bundle(2, 7, 2, 1, 100), 1);
        assert_eq!(r, Err(BundleRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ab.running_version(), Some(1), "fail-static under fencing");
        assert!(ab.staged().is_none());
        let rb = ab.roll_back_to_fenced(SimTime::from_secs(2), bundle(1, 7, 1, 0, 100), 7, 1);
        assert_eq!(rb, Err(BundleRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ab.fenced_pushes(), 2);
        assert!(ab.stage_fenced(bundle(2, 7, 2, 1, 100), 2).is_ok());
        assert_eq!(ab.commit_staged(SimTime::from_secs(3), 7), Ok(2));
    }
}
