//! Version-skew-safe gateway configuration: the fail-static contract.
//!
//! §2.2 names configuration as the mesh's primary outage vector: a proxy
//! that *applies* a bad config is an instant fleet-wide incident. This
//! module gives every gateway an [`ActiveConfig`] — a `{running, staged}`
//! pair with atomic commit-or-reject semantics:
//!
//! * A pushed [`ConfigSpec`] is first **staged**; serving always continues
//!   from the last committed `running` config.
//! * `commit_staged` runs semantic validation (a route referencing an
//!   unknown service, an empty backend set, a duplicate route, a stale
//!   version) and either swaps the staged config in atomically or rejects
//!   it with a [`ConfigRejection`] — which the data plane reports upstream
//!   as a NACK (`canal_control::VersionedConfigStore::nack`).
//! * On rejection the staged config is *discarded* and the gateway keeps
//!   serving `running` unchanged — **fail-static**: blocked or poisoned
//!   pushes never degrade the data plane below its last good state.
//!
//! The rollout controller (`canal_control::rollout`) drives waves of these
//! commits and rolls the fleet back to last-known-good when any gateway
//! NACKs or the canary's health regresses.

use crate::gateway::BackendId;
use canal_net::GlobalServiceId;
use canal_sim::{Digest, SimTime};
use std::collections::BTreeSet;

/// One route entry in a pushed config: a service and the backend set its
/// traffic may use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSpec {
    /// The routed service.
    pub service: GlobalServiceId,
    /// Backends the route may send to. Empty is semantically invalid.
    pub backends: Vec<BackendId>,
}

/// A versioned config push: the unit the control plane distributes and the
/// rollout controller canaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpec {
    /// Monotone version from `VersionedConfigStore`.
    pub version: u64,
    /// Route table content.
    pub routes: Vec<RouteSpec>,
}

impl ConfigSpec {
    /// Fold the spec into a digest (content-sensitive, order-sensitive).
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.version);
        d.write_u64(self.routes.len() as u64);
        for r in &self.routes {
            d.write_u64(r.service.0);
            d.write_u64(r.backends.len() as u64);
            for &b in &r.backends {
                d.write_u64(b as u64);
            }
        }
    }
}

/// Why a staged config was rejected instead of committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigRejection {
    /// A route references a service this gateway has never had placed.
    UnknownService(GlobalServiceId),
    /// A route carries an empty backend set — committing it would blackhole
    /// the service.
    EmptyBackendSet(GlobalServiceId),
    /// Two routes name the same service; which one wins would be ambiguous.
    DuplicateRoute(GlobalServiceId),
    /// The staged version is not newer than the running one. Re-pushes of
    /// the current version are idempotent no-ops upstream; anything older
    /// is a replay and must not regress the data plane.
    StaleVersion {
        /// Version of the staged config.
        staged: u64,
        /// Version currently running.
        running: u64,
    },
    /// Nothing is staged.
    NothingStaged,
    /// The push carries a controller epoch below the highest this gateway
    /// has observed: it came from a zombie incarnation that lost the
    /// fleet. Fenced regardless of version — a zombie's rollback push
    /// could otherwise legally regress the data plane.
    StaleEpoch {
        /// Epoch the push carried.
        pushed: u64,
        /// Highest controller epoch this gateway has observed.
        floor: u64,
    },
}

impl std::fmt::Display for ConfigRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigRejection::UnknownService(s) => write!(f, "route to unknown service {s}"),
            ConfigRejection::EmptyBackendSet(s) => write!(f, "empty backend set for {s}"),
            ConfigRejection::DuplicateRoute(s) => write!(f, "duplicate route for {s}"),
            ConfigRejection::StaleVersion { staged, running } => {
                write!(f, "stale version {staged} (running {running})")
            }
            ConfigRejection::NothingStaged => write!(f, "nothing staged"),
            ConfigRejection::StaleEpoch { pushed, floor } => {
                write!(f, "fenced push from stale controller epoch {pushed} (floor {floor})")
            }
        }
    }
}

/// The `{running, staged}` config pair a gateway serves from.
///
/// Invariants (see DESIGN.md §11):
/// * `running` only ever advances to a *validated* staged config, atomically.
/// * Rejection leaves `running` untouched and clears `staged` (fail-static).
/// * `running.version` is strictly monotone across commits.
#[derive(Debug, Clone, Default)]
pub struct ActiveConfig {
    running: Option<ConfigSpec>,
    staged: Option<ConfigSpec>,
    committed_at: Option<SimTime>,
    commits: u64,
    rejections: u64,
    /// Highest controller epoch observed on any push or probe. Pushes
    /// carrying a lower epoch are fenced ([`ConfigRejection::StaleEpoch`]).
    epoch_floor: u64,
    /// Pushes fenced for carrying a stale epoch.
    fenced_pushes: u64,
}

impl ActiveConfig {
    /// Empty pair: nothing running, nothing staged.
    pub fn new() -> Self {
        ActiveConfig::default()
    }

    /// Stage a pushed config without applying it. Serving is unaffected
    /// until [`Self::commit_staged`] validates and swaps it in. Staging
    /// twice replaces the previous staged config (last push wins).
    pub fn stage(&mut self, spec: ConfigSpec) {
        self.staged = Some(spec);
    }

    /// Observe a controller incarnation's epoch (carried on probes and
    /// pushes). The floor is monotone; returns true if it advanced. A new
    /// controller announces itself this way, fencing any zombie
    /// predecessor's in-flight pushes.
    pub fn observe_epoch(&mut self, epoch: u64) -> bool {
        if epoch > self.epoch_floor {
            self.epoch_floor = epoch;
            return true;
        }
        false
    }

    /// Epoch-fenced stage: refuse the push outright if it carries an
    /// epoch below the observed floor, else raise the floor and stage.
    /// The fence runs *before* any version or content check — a zombie's
    /// rollback push is version-legal but must still die here.
    pub fn stage_fenced(&mut self, spec: ConfigSpec, epoch: u64) -> Result<(), ConfigRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(ConfigRejection::StaleEpoch { pushed: epoch, floor: self.epoch_floor });
        }
        self.observe_epoch(epoch);
        self.stage(spec);
        Ok(())
    }

    /// Epoch-fenced [`Self::roll_back_to`]: a rollback deliberately
    /// bypasses version monotonicity, which is exactly why it must not
    /// bypass the epoch fence — this is the push a zombie would use to
    /// roll the fleet backward.
    pub fn roll_back_to_fenced(
        &mut self,
        now: SimTime,
        spec: ConfigSpec,
        known_services: &BTreeSet<GlobalServiceId>,
        epoch: u64,
    ) -> Result<u64, ConfigRejection> {
        if epoch < self.epoch_floor {
            self.fenced_pushes += 1;
            return Err(ConfigRejection::StaleEpoch { pushed: epoch, floor: self.epoch_floor });
        }
        self.observe_epoch(epoch);
        self.roll_back_to(now, spec, known_services)
    }

    /// Highest controller epoch this gateway has observed.
    pub fn epoch_floor(&self) -> u64 {
        self.epoch_floor
    }

    /// Pushes fenced for carrying a stale controller epoch.
    pub fn fenced_pushes(&self) -> u64 {
        self.fenced_pushes
    }

    /// Validate a spec against the set of services this gateway knows.
    /// Pure: used by `commit_staged` and directly by controllers that want
    /// to pre-validate before pushing.
    pub fn validate(
        spec: &ConfigSpec,
        known_services: &BTreeSet<GlobalServiceId>,
    ) -> Result<(), ConfigRejection> {
        let mut seen = BTreeSet::new();
        for r in &spec.routes {
            if !seen.insert(r.service) {
                return Err(ConfigRejection::DuplicateRoute(r.service));
            }
            if !known_services.contains(&r.service) {
                return Err(ConfigRejection::UnknownService(r.service));
            }
            if r.backends.is_empty() {
                return Err(ConfigRejection::EmptyBackendSet(r.service));
            }
        }
        Ok(())
    }

    /// Atomically commit the staged config if it validates, else reject it
    /// and keep serving the running one. Either way `staged` is cleared.
    /// Returns the committed version, or the rejection the data plane
    /// should NACK with.
    pub fn commit_staged(
        &mut self,
        now: SimTime,
        known_services: &BTreeSet<GlobalServiceId>,
    ) -> Result<u64, ConfigRejection> {
        let Some(spec) = self.staged.take() else {
            return Err(ConfigRejection::NothingStaged);
        };
        if let Some(run) = &self.running {
            if spec.version <= run.version {
                self.rejections += 1;
                return Err(ConfigRejection::StaleVersion {
                    staged: spec.version,
                    running: run.version,
                });
            }
        }
        match Self::validate(&spec, known_services) {
            Ok(()) => {
                let v = spec.version;
                self.running = Some(spec);
                self.committed_at = Some(now);
                self.commits += 1;
                Ok(v)
            }
            Err(rej) => {
                self.rejections += 1;
                Err(rej)
            }
        }
    }

    /// Roll back to an explicit last-known-good config, bypassing the
    /// version-monotonicity check (a rollback deliberately re-runs an older
    /// version). Content validation still applies: a rollback target that
    /// no longer validates is refused, keeping fail-static intact.
    pub fn roll_back_to(
        &mut self,
        now: SimTime,
        spec: ConfigSpec,
        known_services: &BTreeSet<GlobalServiceId>,
    ) -> Result<u64, ConfigRejection> {
        Self::validate(&spec, known_services)?;
        let v = spec.version;
        self.staged = None;
        self.running = Some(spec);
        self.committed_at = Some(now);
        self.commits += 1;
        Ok(v)
    }

    /// The config currently being served (last committed), if any.
    pub fn running(&self) -> Option<&ConfigSpec> {
        self.running.as_ref()
    }

    /// The staged-but-uncommitted config, if any.
    pub fn staged(&self) -> Option<&ConfigSpec> {
        self.staged.as_ref()
    }

    /// Version being served, if any config has ever committed.
    pub fn running_version(&self) -> Option<u64> {
        self.running.as_ref().map(|c| c.version)
    }

    /// When the running config committed.
    pub fn committed_at(&self) -> Option<SimTime> {
        self.committed_at
    }

    /// Successful commits (including rollbacks).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Rejected staged configs — each one corresponds to a NACK upstream.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Fold the whole `{running, staged}` pair into a digest: the running
    /// version and spec, the uncommitted `staged` spec, `committed_at`,
    /// and the commit/rejection counts. A gateway with a different staged
    /// config (or a different commit instant) is in a different state even
    /// while serving the same running version.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.running_version().unwrap_or(0));
        d.write_u64(self.commits);
        d.write_u64(self.rejections);
        if let Some(c) = &self.running {
            c.fold_digest(d);
        }
        match &self.staged {
            None => {
                d.write_u64(0);
            }
            Some(s) => {
                d.write_u64(1);
                s.fold_digest(d);
            }
        }
        d.write_u64(self.committed_at.map_or(u64::MAX, |t| t.as_nanos()));
        d.write_u64(self.epoch_floor);
        d.write_u64(self.fenced_pushes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn known(ids: &[u64]) -> BTreeSet<GlobalServiceId> {
        ids.iter().map(|&i| GlobalServiceId(i)).collect()
    }

    fn spec(version: u64, routes: &[(u64, &[BackendId])]) -> ConfigSpec {
        ConfigSpec {
            version,
            routes: routes
                .iter()
                .map(|&(s, b)| RouteSpec {
                    service: GlobalServiceId(s),
                    backends: b.to_vec(),
                })
                .collect(),
        }
    }

    #[test]
    fn commit_swaps_atomically() {
        let mut ac = ActiveConfig::new();
        assert!(ac.running().is_none());
        ac.stage(spec(1, &[(7, &[0, 1])]));
        assert!(ac.running().is_none(), "staging does not serve");
        let v = ac.commit_staged(SimTime::from_secs(1), &known(&[7]));
        assert_eq!(v, Ok(1));
        assert_eq!(ac.running_version(), Some(1));
        assert!(ac.staged().is_none());
    }

    #[test]
    fn poisoned_config_rejected_fail_static() {
        let mut ac = ActiveConfig::new();
        ac.stage(spec(1, &[(7, &[0])]));
        ac.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        // Route to unknown service 9: NACK, keep serving v1.
        ac.stage(spec(2, &[(9, &[0])]));
        let r = ac.commit_staged(SimTime::from_secs(5), &known(&[7]));
        assert_eq!(r, Err(ConfigRejection::UnknownService(GlobalServiceId(9))));
        assert_eq!(ac.running_version(), Some(1), "fail-static: v1 still serving");
        assert!(ac.staged().is_none(), "poisoned staged config discarded");
        // Empty backend set likewise.
        ac.stage(spec(3, &[(7, &[])]));
        let r = ac.commit_staged(SimTime::from_secs(6), &known(&[7]));
        assert_eq!(r, Err(ConfigRejection::EmptyBackendSet(GlobalServiceId(7))));
        assert_eq!(ac.running_version(), Some(1));
        assert_eq!(ac.rejections(), 2);
        assert_eq!(ac.commits(), 1);
    }

    #[test]
    fn stale_and_duplicate_rejected() {
        let mut ac = ActiveConfig::new();
        ac.stage(spec(5, &[(7, &[0])]));
        ac.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        ac.stage(spec(5, &[(7, &[1])]));
        assert_eq!(
            ac.commit_staged(SimTime::from_secs(1), &known(&[7])),
            Err(ConfigRejection::StaleVersion { staged: 5, running: 5 })
        );
        ac.stage(spec(6, &[(7, &[0]), (7, &[1])]));
        assert_eq!(
            ac.commit_staged(SimTime::from_secs(2), &known(&[7])),
            Err(ConfigRejection::DuplicateRoute(GlobalServiceId(7)))
        );
        assert_eq!(ac.commit_staged(SimTime::from_secs(3), &known(&[7])), Err(ConfigRejection::NothingStaged));
    }

    #[test]
    fn rollback_reinstates_older_version() {
        let mut ac = ActiveConfig::new();
        ac.stage(spec(1, &[(7, &[0])]));
        ac.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        ac.stage(spec(2, &[(7, &[0, 1])]));
        ac.commit_staged(SimTime::from_secs(1), &known(&[7])).ok();
        // v2 turns out bad at canary bake: roll back to v1.
        let v = ac.roll_back_to(SimTime::from_secs(2), spec(1, &[(7, &[0])]), &known(&[7]));
        assert_eq!(v, Ok(1));
        assert_eq!(ac.running_version(), Some(1));
        // But a rollback target that no longer validates is refused.
        let bad = ac.roll_back_to(SimTime::from_secs(3), spec(0, &[(9, &[0])]), &known(&[7]));
        assert!(bad.is_err());
        assert_eq!(ac.running_version(), Some(1));
    }

    #[test]
    fn stale_epoch_push_is_fenced() {
        let mut ac = ActiveConfig::new();
        assert!(ac.stage_fenced(spec(1, &[(7, &[0])]), 1).is_ok());
        ac.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        // The new controller (epoch 2) announces itself via a probe.
        assert!(ac.observe_epoch(2));
        assert!(!ac.observe_epoch(2), "floor is monotone");
        // The zombie at epoch 1 pushes v2: fenced before any other check.
        let r = ac.stage_fenced(spec(2, &[(7, &[0, 1])]), 1);
        assert_eq!(r, Err(ConfigRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ac.running_version(), Some(1), "fail-static under fencing");
        assert!(ac.staged().is_none(), "fenced push never staged");
        // The zombie's version-legal rollback is fenced too.
        let rb = ac.roll_back_to_fenced(SimTime::from_secs(1), spec(1, &[(7, &[0])]), &known(&[7]), 1);
        assert_eq!(rb, Err(ConfigRejection::StaleEpoch { pushed: 1, floor: 2 }));
        assert_eq!(ac.fenced_pushes(), 2);
        // The live controller at the floor epoch still works.
        assert!(ac.stage_fenced(spec(2, &[(7, &[0, 1])]), 2).is_ok());
        assert_eq!(ac.commit_staged(SimTime::from_secs(2), &known(&[7])), Ok(2));
    }

    #[test]
    fn fencing_state_is_digested() {
        let a = ActiveConfig::new();
        let mut b = ActiveConfig::new();
        b.observe_epoch(3);
        let (mut da, mut db) = (Digest::new(), Digest::new());
        a.fold_digest(&mut da);
        b.fold_digest(&mut db);
        assert_ne!(da.value(), db.value(), "epoch floor is digested");
    }

    #[test]
    fn digest_tracks_content() {
        let mut ac = ActiveConfig::new();
        ac.stage(spec(1, &[(7, &[0, 1])]));
        ac.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        let mut a = Digest::new();
        ac.fold_digest(&mut a);
        let mut ac2 = ActiveConfig::new();
        ac2.stage(spec(1, &[(7, &[0, 1])]));
        ac2.commit_staged(SimTime::ZERO, &known(&[7])).ok();
        let mut b = Digest::new();
        ac2.fold_digest(&mut b);
        assert_eq!(a.value(), b.value());
    }
}
