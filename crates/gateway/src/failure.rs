//! Hierarchical failure recovery (§4.2, Fig. 8).
//!
//! Three nested failure domains: replica ⊂ backend ⊂ AZ. A service placed
//! on multiple backends in multiple AZs stays available while *any* of its
//! backends has a live replica in a live AZ. [`PlacementView`] tracks
//! domain failures and answers availability queries — the mechanism the
//! Fig. 8 walkthrough and the DNS failover (see `canal_cluster::dns`)
//! build on.

use canal_net::{AzId, GlobalServiceId};
use canal_sim::Digest;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a gateway backend (a group of replica VMs).
pub type BackendKey = u32;

/// A fault plan referenced a domain the topology does not contain —
/// unknown backend key, replica index out of range, or an AZ with no
/// registered backend. Surfaced as an error (rather than a silent no-op)
/// so fault plans cannot drift from the topology unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownDomain(pub FailureDomain);

impl fmt::Display for UnknownDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown failure domain {:?}", self.0)
    }
}

impl std::error::Error for UnknownDomain {}

/// A failure (or recovery) target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureDomain {
    /// One replica VM of a backend.
    Replica(BackendKey, usize),
    /// A whole backend (all its replicas).
    Backend(BackendKey),
    /// A whole AZ (power outage scenario).
    Az(AzId),
}

#[derive(Debug, Clone)]
struct BackendState {
    az: AzId,
    replicas: usize,
    failed_replicas: BTreeSet<usize>,
    backend_failed: bool,
}

/// Placement plus failure state, with availability queries.
#[derive(Debug, Default)]
pub struct PlacementView {
    // lint:allow(bounded-state) reason=the registered topology; backends are added at setup or by explicit scale operations
    backends: BTreeMap<BackendKey, BackendState>,
    failed_azs: BTreeSet<AzId>,
    // lint:allow(bounded-state) reason=one entry per placed service; placements happen at registration and scale time, never per request
    placements: BTreeMap<GlobalServiceId, Vec<BackendKey>>,
}

impl PlacementView {
    /// Empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a backend with its AZ and replica count.
    pub fn add_backend(&mut self, key: BackendKey, az: AzId, replicas: usize) {
        assert!(replicas > 0);
        self.backends.insert(
            key,
            BackendState {
                az,
                replicas,
                failed_replicas: BTreeSet::new(),
                backend_failed: false,
            },
        );
    }

    /// Place a service's configuration on a backend (Fig. 8: a service's
    /// config is installed on multiple backends across AZs).
    pub fn place(&mut self, service: GlobalServiceId, backend: BackendKey) {
        assert!(self.backends.contains_key(&backend), "unknown backend");
        let list = self.placements.entry(service).or_default();
        if !list.contains(&backend) {
            list.push(backend);
        }
    }

    /// The backends hosting a service.
    pub fn backends_of(&self, service: GlobalServiceId) -> &[BackendKey] {
        self.placements.get(&service).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the domain exists in the registered topology.
    fn check_domain(&self, domain: FailureDomain) -> Result<(), UnknownDomain> {
        let known = match domain {
            FailureDomain::Replica(b, r) => {
                self.backends.get(&b).is_some_and(|be| r < be.replicas)
            }
            FailureDomain::Backend(b) => self.backends.contains_key(&b),
            FailureDomain::Az(az) => self.backends.values().any(|be| be.az == az),
        };
        if known {
            Ok(())
        } else {
            Err(UnknownDomain(domain))
        }
    }

    /// Mark a domain failed. Failing an already-failed domain is an
    /// idempotent `Ok`; targeting a domain outside the topology is an
    /// [`UnknownDomain`] error.
    pub fn fail(&mut self, domain: FailureDomain) -> Result<(), UnknownDomain> {
        self.check_domain(domain)?;
        match domain {
            FailureDomain::Replica(b, r) => {
                if let Some(be) = self.backends.get_mut(&b) {
                    be.failed_replicas.insert(r);
                }
            }
            FailureDomain::Backend(b) => {
                if let Some(be) = self.backends.get_mut(&b) {
                    be.backend_failed = true;
                }
            }
            FailureDomain::Az(az) => {
                self.failed_azs.insert(az);
            }
        }
        Ok(())
    }

    /// Mark a domain recovered. Recovering a healthy domain is an
    /// idempotent `Ok`; targeting a domain outside the topology is an
    /// [`UnknownDomain`] error. Backend recovery clears replica failures
    /// too (the whole group is redeployed).
    pub fn recover(&mut self, domain: FailureDomain) -> Result<(), UnknownDomain> {
        self.check_domain(domain)?;
        match domain {
            FailureDomain::Replica(b, r) => {
                if let Some(be) = self.backends.get_mut(&b) {
                    be.failed_replicas.remove(&r);
                }
            }
            FailureDomain::Backend(b) => {
                if let Some(be) = self.backends.get_mut(&b) {
                    be.backend_failed = false;
                    be.failed_replicas.clear();
                }
            }
            FailureDomain::Az(az) => {
                self.failed_azs.remove(&az);
            }
        }
        Ok(())
    }

    /// Whether a backend can serve: its AZ is up, it isn't failed, and at
    /// least one replica lives.
    pub fn backend_available(&self, key: BackendKey) -> bool {
        let Some(be) = self.backends.get(&key) else {
            return false;
        };
        !self.failed_azs.contains(&be.az)
            && !be.backend_failed
            && be.failed_replicas.len() < be.replicas
    }

    /// Live replica indices of a backend (empty when unavailable).
    pub fn live_replicas(&self, key: BackendKey) -> Vec<usize> {
        let Some(be) = self.backends.get(&key) else {
            return Vec::new();
        };
        if self.failed_azs.contains(&be.az) || be.backend_failed {
            return Vec::new();
        }
        (0..be.replicas)
            .filter(|r| !be.failed_replicas.contains(r))
            .collect()
    }

    /// Whether a service has any available backend.
    pub fn service_available(&self, service: GlobalServiceId) -> bool {
        self.backends_of(service)
            .iter()
            .any(|&b| self.backend_available(b))
    }

    /// Whether a service has an available backend in a specific AZ.
    pub fn service_available_in_az(&self, service: GlobalServiceId, az: AzId) -> bool {
        self.backends_of(service)
            .iter()
            .any(|&b| self.backend_available(b) && self.backends[&b].az == az)
    }

    /// The AZ of a backend.
    pub fn az_of(&self, key: BackendKey) -> Option<AzId> {
        self.backends.get(&key).map(|b| b.az)
    }

    /// All registered backend keys.
    pub fn backend_keys(&self) -> Vec<BackendKey> {
        self.backends.keys().copied().collect()
    }

    /// Fold the whole placement + failure state into a digest: `backends`
    /// with their per-replica failure sets, `failed_azs`, and the
    /// service-to-backend `placements`.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.backends.len() as u64);
        for (&key, be) in &self.backends {
            d.write_u64(key as u64)
                .write_u64(be.az.0 as u64)
                .write_u64(be.replicas as u64)
                .write_u64(be.failed_replicas.len() as u64);
            for &r in &be.failed_replicas {
                d.write_u64(r as u64);
            }
            d.write_u64(be.backend_failed as u64);
        }
        d.write_u64(self.failed_azs.len() as u64);
        for az in &self.failed_azs {
            d.write_u64(az.0 as u64);
        }
        d.write_u64(self.placements.len() as u64);
        for (svc, backends) in &self.placements {
            d.write_u64(svc.0).write_u64(backends.len() as u64);
            for &b in backends {
                d.write_u64(b as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc_a() -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(0xA))
    }
    fn svc_b() -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(2), ServiceId(0xB))
    }

    /// The exact Fig. 8 topology: service A on Backend1/2 (AZ1) and
    /// Backend3 (AZ2); service B includes Backend4.
    fn fig8() -> PlacementView {
        let mut v = PlacementView::new();
        v.add_backend(1, AzId(1), 3);
        v.add_backend(2, AzId(1), 3);
        v.add_backend(3, AzId(2), 3);
        v.add_backend(4, AzId(1), 3);
        v.place(svc_a(), 1);
        v.place(svc_a(), 2);
        v.place(svc_a(), 3);
        v.place(svc_b(), 2);
        v.place(svc_b(), 4);
        v
    }

    #[test]
    fn replica_failure_does_not_take_backend_down() {
        let mut v = fig8();
        v.fail(FailureDomain::Replica(1, 0)).unwrap();
        v.fail(FailureDomain::Replica(1, 1)).unwrap();
        assert!(v.backend_available(1));
        assert_eq!(v.live_replicas(1), vec![2]);
        // Last replica gone: backend down.
        v.fail(FailureDomain::Replica(1, 2)).unwrap();
        assert!(!v.backend_available(1));
        assert!(v.service_available(svc_a()), "backend2/3 still carry A");
    }

    #[test]
    fn backend_failure_falls_back_within_az_then_cross_az() {
        let mut v = fig8();
        v.fail(FailureDomain::Backend(1)).unwrap();
        assert!(v.service_available_in_az(svc_a(), AzId(1)), "backend2 holds");
        v.fail(FailureDomain::Backend(2)).unwrap();
        assert!(!v.service_available_in_az(svc_a(), AzId(1)));
        assert!(v.service_available(svc_a()), "AZ2's backend3 holds");
        assert!(v.service_available_in_az(svc_a(), AzId(2)));
    }

    #[test]
    fn az_failure_is_survivable_with_cross_az_placement() {
        let mut v = fig8();
        v.fail(FailureDomain::Az(AzId(1))).unwrap();
        assert!(!v.backend_available(1));
        assert!(!v.backend_available(2));
        assert!(v.service_available(svc_a()), "cross-AZ replica saves A");
        // Service B is AZ1-only: gone.
        assert!(!v.service_available(svc_b()));
        v.recover(FailureDomain::Az(AzId(1))).unwrap();
        assert!(v.service_available(svc_b()));
    }

    #[test]
    fn shuffle_sharding_scenario_a_dies_b_survives() {
        // "query of death" kills every backend of A; B's combination is not
        // a subset, so B keeps Backend4.
        let mut v = fig8();
        for b in [1, 2, 3] {
            v.fail(FailureDomain::Backend(b)).unwrap();
        }
        assert!(!v.service_available(svc_a()));
        assert!(v.service_available(svc_b()));
    }

    #[test]
    fn recovery_clears_replica_failures() {
        let mut v = fig8();
        v.fail(FailureDomain::Replica(1, 0)).unwrap();
        v.fail(FailureDomain::Backend(1)).unwrap();
        assert!(!v.backend_available(1));
        v.recover(FailureDomain::Backend(1)).unwrap();
        assert!(v.backend_available(1));
        assert_eq!(v.live_replicas(1).len(), 3, "replica failures cleared too");
    }

    #[test]
    fn unknown_entities_answer_safely() {
        let v = fig8();
        assert!(!v.backend_available(99));
        assert!(v.live_replicas(99).is_empty());
        let ghost = GlobalServiceId::compose(TenantId(9), ServiceId(9));
        assert!(!v.service_available(ghost));
        assert!(v.backends_of(ghost).is_empty());
    }

    #[test]
    fn unknown_domains_are_errors_not_silent_noops() {
        let mut v = fig8();
        assert_eq!(
            v.fail(FailureDomain::Backend(99)),
            Err(UnknownDomain(FailureDomain::Backend(99)))
        );
        assert_eq!(
            v.fail(FailureDomain::Replica(1, 3)),
            Err(UnknownDomain(FailureDomain::Replica(1, 3))),
            "replica index out of range"
        );
        assert_eq!(
            v.recover(FailureDomain::Az(AzId(7))),
            Err(UnknownDomain(FailureDomain::Az(AzId(7)))),
            "AZ with no registered backend"
        );
        // Idempotence: re-failing / re-recovering known domains stays Ok.
        v.fail(FailureDomain::Backend(1)).unwrap();
        v.fail(FailureDomain::Backend(1)).unwrap();
        v.recover(FailureDomain::Backend(1)).unwrap();
        v.recover(FailureDomain::Backend(1)).unwrap();
        assert!(v.backend_available(1));
    }

    #[test]
    fn duplicate_placement_is_idempotent() {
        let mut v = fig8();
        v.place(svc_a(), 1);
        assert_eq!(v.backends_of(svc_a()).len(), 3);
    }
}
