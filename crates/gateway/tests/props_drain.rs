//! Randomized (property-style) tests over [`GatewayDrain`]: the bucket-table
//! hand-off invariants the planned-failover story rests on. Cases come from a
//! seeded `SimRng` so runs are reproducible.
//!
//! * every bucket has exactly one owner (a non-empty chain whose head is an
//!   `Active` gateway) at every step of any open/close/drain interleaving;
//! * no packet of an established session is ever routed to a fully-drained
//!   gateway — the chain walk always lands on the session's live owner.

use canal_gateway::{DrainPhase, GatewayDrain};
use canal_net::{Endpoint, FiveTuple, VpcAddr, VpcId};
use canal_sim::{SimDuration, SimRng, SimTime};

const CASES: usize = 48;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

fn tuple(sport: u16) -> FiveTuple {
    FiveTuple::tcp(
        Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 0, 1), sport),
        Endpoint::new(VpcAddr::new(VpcId(1), 10, 0, 9, 9), 443),
    )
}

/// Assert the per-step invariants: single live ownership of every bucket,
/// and every established session routable to a non-drained owner.
fn check_invariants(d: &mut GatewayDrain, gateways: &[usize], live: &[FiveTuple], case: usize) {
    for b in 0..d.table().len() {
        let chain = d.table().chain(b);
        assert!(
            !chain.is_empty(),
            "case {case}: bucket {b} lost all owners"
        );
        let head = chain[0];
        assert_eq!(
            d.phase(head),
            Some(DrainPhase::Active),
            "case {case}: bucket {b} is headed by non-active gateway {head}"
        );
    }
    // A drained gateway owns nothing, and every live session's packets land
    // on its (non-drained) owner.
    for &g in gateways {
        if d.phase(g) == Some(DrainPhase::Drained) {
            assert_eq!(
                d.sessions_on(g),
                0,
                "case {case}: drained gateway {g} still owns sessions"
            );
        }
    }
    for tpl in live {
        let routed = d.packet(tpl);
        assert!(routed.is_some(), "case {case}: established session lost");
        let (owner, _) = routed.unwrap_or((usize::MAX, 0));
        assert_ne!(
            d.phase(owner),
            Some(DrainPhase::Drained),
            "case {case}: packet routed to a drained gateway"
        );
    }
}

/// Drive a random interleaving of opens, closes, packets, drains, and ticks,
/// checking bucket ownership and session routability after every step.
#[test]
fn every_bucket_has_one_live_owner_under_random_drains() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x0D12_A117 + case as u64);
        let n_gw = 3 + rng.index(3); // 3..=5 gateways
        let gateways: Vec<usize> = (0..n_gw).collect();
        let n_buckets = 16 << rng.index(3); // 16/32/64
        let mut d = GatewayDrain::new(n_buckets, &gateways, 4, 10_000);
        let mut live: Vec<FiveTuple> = Vec::new();
        let mut next_port = 1024u16;
        let mut now = 0u64;
        for _ in 0..120 {
            now += 1 + rng.index(3) as u64;
            match rng.index(6) {
                // Open a burst of sessions (drained heads are never chosen).
                0 | 1 => {
                    for _ in 0..rng.index(8) {
                        let tpl = tuple(next_port);
                        next_port = next_port.wrapping_add(1);
                        if d.open(tpl).is_ok() {
                            live.push(tpl);
                        }
                    }
                }
                // Close a random live session.
                2 => {
                    if !live.is_empty() {
                        let i = rng.index(live.len());
                        let tpl = live.swap_remove(i);
                        assert!(d.close(&tpl), "case {case}: live session unknown");
                    }
                }
                // Route packets for a few random live sessions.
                3 => {
                    for _ in 0..rng.index(4) {
                        if live.is_empty() {
                            break;
                        }
                        let tpl = live[rng.index(live.len())];
                        assert!(d.packet(&tpl).is_some());
                    }
                }
                // Start draining a random Active gateway onto another,
                // keeping at least two Active so a replacement exists.
                4 => {
                    let active: Vec<usize> = gateways
                        .iter()
                        .copied()
                        .filter(|&g| d.phase(g) == Some(DrainPhase::Active))
                        .collect();
                    if active.len() >= 3 {
                        let leaving = active[rng.index(active.len())];
                        let replacement = *active
                            .iter()
                            .find(|&&g| g != leaving)
                            .expect("two active gateways");
                        let grace = SimDuration::from_secs(5 + rng.index(20) as u64);
                        d.begin_drain(t(now), leaving, replacement, grace)
                            .expect("preconditions hold");
                    }
                }
                // Advance drains; deadline force-closes drop stragglers.
                _ => {
                    for g in d.tick(t(now)) {
                        live.retain(|tpl| d.packet(tpl).is_some());
                        assert_eq!(d.phase(g), Some(DrainPhase::Drained));
                    }
                }
            }
            check_invariants(&mut d, &gateways, &live, case);
        }
        let (opened, closed, _, force_closed, _) = d.stats();
        assert_eq!(
            opened,
            closed + force_closed + live.len() as u64,
            "case {case}: session accounting must balance"
        );
    }
}

/// A drain whose grace window outlives every session loses nothing: all
/// established sessions keep reaching the leaver until they close normally,
/// and the leaver completes with zero force-closes.
#[test]
fn patient_drain_never_force_closes() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x60D_D12A + case as u64);
        let mut d = GatewayDrain::new(64, &[0, 1, 2, 3], 4, 10_000);
        let sessions: Vec<FiveTuple> = (0..150u16).map(|i| tuple(2000 + i)).collect();
        let mut owners = Vec::new();
        for tpl in &sessions {
            owners.push(d.open(*tpl).expect("capacity"));
        }
        let leaving = rng.index(4);
        let replacement = (leaving + 1) % 4;
        d.begin_drain(t(0), leaving, replacement, SimDuration::from_secs(1_000))
            .expect("both active");
        // Close sessions in random order, routing a packet first: the owner
        // never changes mid-drain and is never the replacement by accident.
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        rng.shuffle(&mut order);
        for (step, &i) in order.iter().enumerate() {
            let (owner, _) = d.packet(&sessions[i]).expect("still live");
            assert_eq!(owner, owners[i], "case {case}: session moved mid-drain");
            assert!(d.close(&sessions[i]));
            d.tick(t(1 + step as u64));
        }
        assert_eq!(d.phase(leaving), Some(DrainPhase::Drained));
        let (_, _, _, force_closed, _) = d.stats();
        assert_eq!(force_closed, 0, "case {case}: patient drain lost sessions");
    }
}
