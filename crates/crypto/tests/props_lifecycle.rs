//! Property tests for the certificate-lifecycle machinery: seeded random
//! exploration of the invariants the unit tests only spot-check.
//!
//! * A resumed session is *the same session*: records sealed after a
//!   ticket resumption are bit-identical to records sealed over the full
//!   handshake the ticket came from.
//! * A session ticket never outlives the certificate it was minted under,
//!   no matter how cert TTL and ticket lifetime interleave.
//! * CA + ticket-cache state is deterministic under random interleavings
//!   of rotation, compromise revocation, issuance, minting, redemption,
//!   and restart-style sweeps: equal seeds fold to equal digests, and the
//!   lifecycle invariants hold at every step.

use canal_crypto::mtls::MtlsEndpoint;
use canal_crypto::{SharedSecret, TenantCa, TicketCache};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};

/// Full handshake then resumption: every record the resumed session seals
/// must be identical to the full session's records — the ticket carries
/// the *same* secret, not an equivalent one.
#[test]
fn resumed_sessions_seal_identical_records() {
    let mut rng = SimRng::seed(0x5EA1);
    for round in 0..32 {
        let now = SimTime::from_secs(rng.int_range(1, 1000));
        let ttl = SimDuration::from_secs(rng.int_range(60, 86_400));
        let mut ca = TenantCa::new(7);
        let client_cert = ca.issue(100 + round, now, ttl);
        let server_cert = ca.issue(200 + round, now, ttl);
        let bundle = ca.trust_bundle(1);

        // Full handshake.
        let mut client = MtlsEndpoint::with_cert(client_cert, rng.int_range(1, 1 << 30))
            .with_trust(bundle.clone());
        let mut server = MtlsEndpoint::with_cert(server_cert, rng.int_range(1, 1 << 30))
            .with_trust(bundle);
        let hello_c = client.client_hello(now).expect("client hello");
        let (hello_s, outcome_s) = server.server_respond(&hello_c, now).expect("server respond");
        let outcome_c = client.client_finish(&hello_s, now).expect("client finish");
        assert_eq!(outcome_c.secret, outcome_s.secret, "DH must agree");

        let payloads: Vec<Vec<u8>> = (0..rng.int_range(1, 5))
            .map(|i| format!("record {round}/{i}").into_bytes())
            .collect();
        let full_records: Vec<_> = payloads
            .iter()
            .map(|p| client.seal(p).expect("seal full"))
            .collect();

        // Ticket resumption on fresh endpoints.
        let mut cache = TicketCache::new();
        let ticket = cache.mint(&client_cert, outcome_c.peer_identity, outcome_c.secret, now, ttl);
        let later = now + SimDuration::from_secs(1);
        let mut resumed_client = MtlsEndpoint::with_cert(client_cert, 1);
        let redeemed = cache.redeem(ticket.id, later).expect("redeem live ticket");
        resumed_client.resume(&redeemed, later).expect("resume");
        assert!(resumed_client.resumed(), "resumption must be marked");

        for (p, full) in payloads.iter().zip(&full_records) {
            let resumed = resumed_client.seal(p).expect("seal resumed");
            assert_eq!(
                &resumed, full,
                "resumed session must seal bit-identical records"
            );
        }
    }
}

/// However TTLs interleave, `ticket.expires <= cert.not_after`, and a
/// redeem at or past expiry always fails.
#[test]
fn tickets_never_outlive_the_cert() {
    let mut rng = SimRng::seed(0x71C3);
    let mut cache = TicketCache::new();
    let mut ca = TenantCa::new(3);
    for i in 0..256u64 {
        let now = SimTime::from_secs(rng.int_range(0, 10_000));
        let cert_ttl = SimDuration::from_secs(rng.int_range(1, 7_200));
        let ticket_lifetime = SimDuration::from_secs(rng.int_range(1, 14_400));
        let cert = ca.issue(i, now, cert_ttl);
        let ticket = cache.mint(&cert, 9, SharedSecret(i), now, ticket_lifetime);
        assert!(
            ticket.expires <= cert.not_after,
            "ticket expiry {:?} outlives cert not_after {:?}",
            ticket.expires,
            cert.not_after
        );
        assert!(
            ticket.expires <= now + ticket_lifetime,
            "ticket expiry must also respect its own lifetime"
        );
        // At (or past) expiry the ticket is dead even if still cached.
        if rng.chance(0.5) {
            let at = ticket.expires + SimDuration::from_nanos(rng.int_range(0, 1 << 30));
            assert!(
                cache.redeem(ticket.id, at).is_err(),
                "redeem at/after expiry must miss"
            );
        }
    }
}

/// One random lifecycle schedule: issuance, planned rotation, compromise
/// revocation, minting, redemption, and restart-style sweeps, all drawn
/// from the seeded rng. Returns the folded state digest.
fn lifecycle_interleaving(seed: u64) -> u64 {
    let mut rng = SimRng::seed(seed);
    let mut ca = TenantCa::new(11);
    let mut cache = TicketCache::new();
    let mut live_ids: Vec<u64> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut bundle_version = 1u64;

    for step in 0..400u64 {
        now += SimDuration::from_secs(rng.int_range(1, 60));
        match rng.int_range(0, 6) {
            0 | 1 => {
                // Issue + mint: the common path.
                let ttl = SimDuration::from_secs(rng.int_range(300, 7_200));
                let cert = ca.issue(step, now, ttl);
                let ticket = cache.mint(&cert, step ^ 0xF00, SharedSecret(step), now, ttl);
                live_ids.push(ticket.id);
            }
            2 => {
                // Planned rotation: old generation stays valid.
                ca.rotate();
                bundle_version += 1;
            }
            3 => {
                // Compromise: rotate, then floor-revoke everything prior.
                ca.rotate();
                ca.revoke_generation();
                bundle_version += 1;
                // Every ticket minted under a floored serial must die on
                // the next sweep and never resume.
                let bundle = ca.trust_bundle(bundle_version);
                cache.sweep(now, Some(&bundle));
                for id in live_ids.drain(..) {
                    assert!(
                        cache.redeem(id, now).is_err(),
                        "ticket under a revoked generation must not resume"
                    );
                }
            }
            4 => {
                // Restart-style sweep: expiry-only.
                cache.sweep(now, None);
            }
            _ => {
                // Redeem something (single-use: drop it from our view).
                if !live_ids.is_empty() {
                    let idx = rng.index(live_ids.len());
                    let id = live_ids.swap_remove(idx);
                    // Either outcome is legal (may have expired/evicted);
                    // determinism is what the digest checks.
                    let _ = cache.redeem(id, now);
                }
            }
        }
    }

    let mut d = Digest::new();
    ca.fold_digest(&mut d);
    cache.fold_digest(&mut d);
    d.write_u64(now.as_nanos()).write_u64(bundle_version);
    d.value()
}

/// Equal seeds fold to equal digests; different seeds diverge.
#[test]
fn random_interleavings_are_bit_deterministic() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        assert_eq!(
            lifecycle_interleaving(seed),
            lifecycle_interleaving(seed),
            "double run diverged for seed {seed}"
        );
    }
    assert_ne!(
        lifecycle_interleaving(1),
        lifecycle_interleaving(2),
        "different seeds should explore different schedules"
    );
}
