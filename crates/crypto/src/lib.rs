//! # canal-crypto
//!
//! The mTLS substrate of the Canal Mesh reproduction (§4.1.3, App. C):
//!
//! * [`chacha20`] — a real RFC 8439 ChaCha20 stream cipher used for all
//!   symmetric ("local") crypto, validated against the RFC test vector.
//! * [`dh`] — Diffie-Hellman key agreement over a 64-bit safe prime. The
//!   modular exponentiation is the *asymmetric workload* whose cost the
//!   accelerators batch; cryptographic strength is not the point of the
//!   reproduction (documented in DESIGN.md).
//! * [`accel`] — the asymmetric-crypto backends: plain software (old CPUs),
//!   the local AVX-512-style batch accelerator with its 8-wide buffer and
//!   1 ms flush timeout (reproducing the Fig. 25 degradation), and the remote
//!   key server call (flat ≈1.7 ms completion, Fig. 23).
//! * [`keystore`] — encrypted in-memory private-key storage: keys are held
//!   encrypted, decrypted transiently per request, never written to disk.
//! * [`keyserver`] — the multi-tenant key server: verified requesters,
//!   pre-established secure channels, shared batching across tenants, and
//!   the keyless mode of Appendix B (user-premises key server).
//! * [`mtls`] — the handshake state machine gluing it together: asymmetric
//!   negotiation through a backend, then ChaCha20 symmetric transport.
//! * [`lifecycle`] — certificate lifecycle: per-tenant CAs issuing certs
//!   with expiry, generation-based rotation and revocation, distributable
//!   trust bundles, and session-ticket resumption (resumed handshakes skip
//!   the asymmetric step entirely).

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod accel;
pub mod chacha20;
pub mod dh;
pub mod keyserver;
pub mod keystore;
pub mod lifecycle;
pub mod mtls;

pub use accel::{AccelConfig, AsymmetricBackend, BatchAccelerator, SoftwareBackend};
pub use chacha20::ChaCha20;
pub use dh::{DhKeyPair, DhParams, SharedSecret};
pub use keyserver::{KeyServer, KeyServerConfig, KeyServerPlacement};
pub use keystore::KeyStore;
pub use lifecycle::{Cert, SessionTicket, TenantCa, TicketCache, TicketMiss, TrustBundle};
pub use mtls::{HandshakeOutcome, MtlsEndpoint, MtlsError, MtlsState};
