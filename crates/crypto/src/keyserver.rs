//! The multi-tenant key server (§4.1.3) and its keyless variant (App. B).
//!
//! The key server holds tenants' private keys (encrypted in memory, see
//! [`crate::keystore`]) and performs the asymmetric half of mTLS on behalf of
//! on-node proxies and gateway backends. Requests arrive over
//! *pre-established shared channels* (one per verified requester) so no
//! per-request TLS handshake is needed; responses carry the derived
//! symmetric key encrypted under the channel key.
//!
//! Because the server aggregates new-session arrivals from *all* tenants,
//! its accelerator batches are effectively always full: completion is a flat
//! RTT + batch cost (≈1.7 ms intra-AZ, Fig. 23), immune to the Fig. 25
//! low-concurrency bubble.

use crate::accel::{AccelConfig, AsymmetricBackend};
use crate::chacha20::ChaCha20;
use crate::dh::{DhKeyPair, DhParams, SharedSecret};
use crate::keystore::KeyStore;
use canal_net::TenantId;
use canal_sim::SimDuration;
use std::collections::BTreeMap;

/// Where the key server runs relative to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyServerPlacement {
    /// Same AZ as the requester (the preferred deployment).
    LocalAz,
    /// A neighbouring AZ (fallback when the local AZ lacks QAT/AVX CPUs).
    RemoteAz,
    /// The customer's own premises — the *keyless* mode of Appendix B, where
    /// private keys never touch the cloud.
    OnPremKeyless,
}

impl KeyServerPlacement {
    /// Round-trip time from the requester to the key server.
    pub fn rtt(self) -> SimDuration {
        match self {
            KeyServerPlacement::LocalAz => SimDuration::from_micros(700),
            KeyServerPlacement::RemoteAz => SimDuration::from_millis(2),
            KeyServerPlacement::OnPremKeyless => SimDuration::from_millis(8),
        }
    }
}

/// Key server configuration.
#[derive(Debug, Clone, Copy)]
pub struct KeyServerConfig {
    /// Deployment placement (decides RTT).
    pub placement: KeyServerPlacement,
    /// Accelerator batch parameters.
    pub accel: AccelConfig,
    /// Whether this AZ's hardware supports QAT/AVX-512 (<5% do not; they
    /// fall back to software asymmetric crypto, §4.1.3).
    pub has_accel_hardware: bool,
}

impl Default for KeyServerConfig {
    fn default() -> Self {
        KeyServerConfig {
            placement: KeyServerPlacement::LocalAz,
            accel: AccelConfig::default(),
            has_accel_hardware: true,
        }
    }
}

/// Errors from key server requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyServerError {
    /// The requester never established a channel (verification failed).
    UnverifiedRequester,
    /// No private key stored for the tenant.
    UnknownTenant,
    /// Response ciphertext failed channel authentication on the requester
    /// side (tampering or wrong channel key).
    ChannelMismatch,
}

impl std::fmt::Display for KeyServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for KeyServerError {}

/// Identifier of a verified requester (an on-node proxy or gateway backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequesterId(pub u64);

/// An encrypted key-server response: the derived symmetric key sealed under
/// the requester's channel key, plus an integrity tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedKeyResponse {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
    tag: u64,
}

fn tag_of(channel_secret: u64, nonce: &[u8; 12], ct: &[u8]) -> u64 {
    // A simple keyed FNV-style tag — integrity modeling, not AEAD strength.
    let mut h = channel_secret ^ 0xcbf2_9ce4_8422_2325;
    for &b in nonce.iter().chain(ct.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The multi-tenant key server.
pub struct KeyServer {
    cfg: KeyServerConfig,
    store: KeyStore,
    channels: BTreeMap<RequesterId, u64>,
    params: DhParams,
    nonce_counter: u64,
    requests_served: u64,
    requests_rejected: u64,
}

impl KeyServer {
    /// Create a key server sealed under master-key material.
    pub fn new(cfg: KeyServerConfig, master_key_material: u64) -> Self {
        KeyServer {
            cfg,
            store: KeyStore::new(master_key_material),
            channels: BTreeMap::new(),
            params: DhParams::DEFAULT,
            nonce_counter: 0,
            requests_served: 0,
            requests_rejected: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> KeyServerConfig {
        self.cfg
    }

    /// Entrust a tenant's private-key material to the server (skipped by
    /// keyless customers, who run their own server with the same API).
    pub fn store_tenant_key(&mut self, tenant: TenantId, private_material: u64) {
        self.store.store(tenant, private_material);
    }

    /// Establish the pre-shared secure channel for a requester.
    pub fn register_requester(&mut self, requester: RequesterId, channel_secret: u64) {
        self.channels.insert(requester, channel_secret);
    }

    /// Handle one asymmetric-crypto request: verify the requester, derive
    /// the DH shared secret with the tenant's private key (decrypted
    /// transiently), and return the symmetric key sealed under the channel.
    pub fn handle_request(
        &mut self,
        requester: RequesterId,
        tenant: TenantId,
        peer_public: u64,
    ) -> Result<SealedKeyResponse, KeyServerError> {
        let &channel_secret = self.channels.get(&requester).ok_or_else(|| {
            self.requests_rejected += 1;
            KeyServerError::UnverifiedRequester
        })?;
        let params = self.params;
        let secret = self
            .store
            .with_key(tenant, |material| {
                let pair = DhKeyPair::generate(params, material);
                pair.agree(peer_public)
            })
            .ok_or_else(|| {
                self.requests_rejected += 1;
                KeyServerError::UnknownTenant
            })?;
        self.requests_served += 1;
        self.nonce_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.nonce_counter.to_le_bytes());
        let channel = ChaCha20::from_shared_secret(channel_secret);
        let ciphertext = channel.encrypt(0, &nonce, &secret.0.to_le_bytes());
        let tag = tag_of(channel_secret, &nonce, &ciphertext);
        Ok(SealedKeyResponse {
            nonce,
            ciphertext,
            tag,
        })
    }

    /// The tenant's *public* DH value, computed transiently (the server can
    /// hand this out — it is public by construction).
    pub fn tenant_public(&self, tenant: TenantId) -> Option<u64> {
        let params = self.params;
        self.store
            .with_key(tenant, |material| DhKeyPair::generate(params, material).public)
    }

    /// Lifetime counters: `(served, rejected)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.requests_served, self.requests_rejected)
    }
}

impl SealedKeyResponse {
    /// Requester side: verify the tag and unseal the symmetric key.
    pub fn unseal(&self, channel_secret: u64) -> Result<SharedSecret, KeyServerError> {
        if tag_of(channel_secret, &self.nonce, &self.ciphertext) != self.tag {
            return Err(KeyServerError::ChannelMismatch);
        }
        let channel = ChaCha20::from_shared_secret(channel_secret);
        let pt = channel.encrypt(0, &self.nonce, &self.ciphertext);
        let mut key = [0u8; 8];
        key.copy_from_slice(&pt[..8]);
        Ok(SharedSecret(u64::from_le_bytes(key)))
    }
}

/// The [`AsymmetricBackend`] view of a remote key server: flat completion
/// (server batches are always full) plus the placement RTT.
#[derive(Debug, Clone, Copy)]
pub struct RemoteKeyServerBackend {
    /// The server configuration (placement decides RTT).
    pub cfg: KeyServerConfig,
    /// Node CPU per op: marshalling the RPC only.
    pub node_cpu: SimDuration,
    /// Fault-injected extra wait per op (a degraded-but-alive key server:
    /// every handshake eats a timeout before the answer lands). `None` when
    /// healthy; set by chaos runs via [`RemoteKeyServerBackend::inject_timeout`].
    pub injected_timeout: Option<SimDuration>,
}

impl RemoteKeyServerBackend {
    /// Backend for a server in the given placement.
    pub fn new(placement: KeyServerPlacement) -> Self {
        RemoteKeyServerBackend {
            cfg: KeyServerConfig {
                placement,
                ..Default::default()
            },
            node_cpu: SimDuration::from_micros(150),
            injected_timeout: None,
        }
    }

    /// Inject (or with `None`, clear) a per-op timeout — the fault hook
    /// chaos plans drive for `key-server degrade` events.
    pub fn inject_timeout(&mut self, timeout: Option<SimDuration>) {
        self.injected_timeout = timeout;
    }
}

impl AsymmetricBackend for RemoteKeyServerBackend {
    fn completion(&self, _concurrency: usize) -> SimDuration {
        let injected = self.injected_timeout.unwrap_or(SimDuration::ZERO);
        if self.cfg.has_accel_hardware {
            // Multi-tenant aggregation keeps batches full: no flush bubble.
            self.cfg.placement.rtt() + self.cfg.accel.per_batch_cost + injected
        } else {
            // <5% of AZs: software fallback on the server.
            self.cfg.placement.rtt() + SimDuration::from_millis(2) + injected
        }
    }

    fn node_cpu_cost(&self) -> SimDuration {
        self.node_cpu
    }

    fn name(&self) -> &'static str {
        match self.cfg.placement {
            KeyServerPlacement::LocalAz => "keyserver-local-az",
            KeyServerPlacement::RemoteAz => "keyserver-remote-az",
            KeyServerPlacement::OnPremKeyless => "keyserver-keyless",
        }
    }
}

/// App. A resilience: a primary backend (normally the remote key server)
/// with a local fallback used while the primary is marked down. Keeps the
/// blast radius of a key-server outage at "slower handshakes", not "no
/// handshakes".
pub struct FallbackBackend<P, F> {
    /// Primary backend (e.g. [`RemoteKeyServerBackend`]).
    pub primary: P,
    /// Fallback (e.g. local software/AVX crypto).
    pub fallback: F,
    primary_healthy: bool,
    fallback_served: u64,
}

impl<P: AsymmetricBackend, F: AsymmetricBackend> FallbackBackend<P, F> {
    /// Compose a primary with its fallback; primary starts healthy.
    pub fn new(primary: P, fallback: F) -> Self {
        FallbackBackend {
            primary,
            fallback,
            primary_healthy: true,
            fallback_served: 0,
        }
    }

    /// Mark the primary down (key-server failure detected) or recovered.
    pub fn set_primary_health(&mut self, healthy: bool) {
        self.primary_healthy = healthy;
    }

    /// Whether the primary is serving.
    pub fn primary_healthy(&self) -> bool {
        self.primary_healthy
    }

    /// Operations served by the fallback so far.
    pub fn fallback_served(&self) -> u64 {
        self.fallback_served
    }
}

impl<P: AsymmetricBackend, F: AsymmetricBackend> AsymmetricBackend for FallbackBackend<P, F> {
    fn completion(&self, concurrency: usize) -> SimDuration {
        if self.primary_healthy {
            self.primary.completion(concurrency)
        } else {
            self.fallback.completion(concurrency)
        }
    }

    fn node_cpu_cost(&self) -> SimDuration {
        if self.primary_healthy {
            self.primary.node_cpu_cost()
        } else {
            self.fallback.node_cpu_cost()
        }
    }

    fn name(&self) -> &'static str {
        if self.primary_healthy {
            self.primary.name()
        } else {
            self.fallback.name()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::SoftwareBackend;
    use crate::dh::DhKeyPair;

    fn server_with_tenant() -> (KeyServer, TenantId, RequesterId, u64) {
        let mut ks = KeyServer::new(KeyServerConfig::default(), 0x5EED);
        let tenant = TenantId(1);
        ks.store_tenant_key(tenant, 0x1234_5678_9ABC_DEF0);
        let requester = RequesterId(7);
        let channel = 0xCAFE_F00D_BEEF_1234;
        ks.register_requester(requester, channel);
        (ks, tenant, requester, channel)
    }

    #[test]
    fn full_handshake_both_sides_agree() {
        let (mut ks, tenant, requester, channel) = server_with_tenant();
        // The client (peer) generates its own pair and sends its public.
        let client = DhKeyPair::generate(DhParams::DEFAULT, 0x00C1_1E17);
        let sealed = ks.handle_request(requester, tenant, client.public).unwrap();
        let server_side = sealed.unseal(channel).unwrap();
        // Client derives the same secret from the tenant's public value.
        let tenant_public = ks.tenant_public(tenant).unwrap();
        let client_side = client.agree(tenant_public);
        assert_eq!(server_side, client_side);
    }

    #[test]
    fn unverified_requester_rejected() {
        let (mut ks, tenant, _, _) = server_with_tenant();
        let err = ks
            .handle_request(RequesterId(999), tenant, 12345)
            .unwrap_err();
        assert_eq!(err, KeyServerError::UnverifiedRequester);
        assert_eq!(ks.stats(), (0, 1));
    }

    #[test]
    fn unknown_tenant_rejected() {
        let (mut ks, _, requester, _) = server_with_tenant();
        let err = ks
            .handle_request(requester, TenantId(42), 12345)
            .unwrap_err();
        assert_eq!(err, KeyServerError::UnknownTenant);
    }

    #[test]
    fn tampered_response_detected() {
        let (mut ks, tenant, requester, channel) = server_with_tenant();
        let client = DhKeyPair::generate(DhParams::DEFAULT, 0x00C1_1E17);
        let mut sealed = ks.handle_request(requester, tenant, client.public).unwrap();
        sealed.ciphertext[0] ^= 0xFF;
        assert_eq!(sealed.unseal(channel), Err(KeyServerError::ChannelMismatch));
        // Wrong channel secret also fails.
        let sealed2 = ks.handle_request(requester, tenant, client.public).unwrap();
        assert_eq!(
            sealed2.unseal(channel ^ 1),
            Err(KeyServerError::ChannelMismatch)
        );
    }

    #[test]
    fn remote_backend_is_flat_across_concurrency() {
        let be = RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz);
        let c1 = be.completion(1);
        let c100 = be.completion(100);
        assert_eq!(c1, c100);
        // Fig. 23: ≈1.7ms intra-AZ.
        assert_eq!(c1, SimDuration::from_micros(1700));
    }

    #[test]
    fn remote_beats_software_even_for_lone_connections() {
        // Fig. 23: remote (1.7ms) < no offloading (2ms) — "the added RTT is
        // outweighed by the time saved through offloading".
        let remote = RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz);
        let sw = SoftwareBackend::default();
        assert!(remote.completion(1) < sw.completion(1));
    }

    #[test]
    fn no_accel_hardware_falls_back_to_software_cost() {
        let mut be = RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz);
        be.cfg.has_accel_hardware = false;
        assert!(be.completion(8) > RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz).completion(8));
    }

    #[test]
    fn fallback_takes_over_and_releases() {
        use crate::accel::SoftwareBackend;
        let mut be = FallbackBackend::new(
            RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz),
            SoftwareBackend::default(),
        );
        assert_eq!(be.completion(8), SimDuration::from_micros(1700));
        assert_eq!(be.name(), "keyserver-local-az");
        // Key server down: local software serves (slower, but alive).
        be.set_primary_health(false);
        assert_eq!(be.completion(8), SimDuration::from_millis(2));
        assert_eq!(be.name(), "software");
        assert!(!be.primary_healthy());
        // Recovery restores the fast path.
        be.set_primary_health(true);
        assert_eq!(be.completion(8), SimDuration::from_micros(1700));
    }

    #[test]
    fn injected_timeout_inflates_completion_until_cleared() {
        let mut be = RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz);
        let healthy = be.completion(8);
        be.inject_timeout(Some(SimDuration::from_millis(15)));
        assert_eq!(be.completion(8), healthy + SimDuration::from_millis(15));
        be.inject_timeout(None);
        assert_eq!(be.completion(8), healthy);
    }

    #[test]
    fn keyless_mode_pays_on_prem_rtt() {
        let keyless = RemoteKeyServerBackend::new(KeyServerPlacement::OnPremKeyless);
        let local = RemoteKeyServerBackend::new(KeyServerPlacement::LocalAz);
        assert!(keyless.completion(8) > local.completion(8));
        assert_eq!(keyless.name(), "keyserver-keyless");
    }
}
