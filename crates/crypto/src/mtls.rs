//! The mTLS handshake state machine and record layer.
//!
//! A deliberately small TLS: one DH round trip establishes a shared secret,
//! from which both sides derive a ChaCha20 session cipher. The state machine
//! is explicit (wrong-order calls are errors, not panics), and the record
//! layer uses per-record sequence numbers as nonces so replayed or reordered
//! records fail to decrypt meaningfully.
//!
//! Time/cost of the *asymmetric* step is priced by an
//! [`crate::accel::AsymmetricBackend`] at the call site (the mesh data
//! path); this module is the functional half.

use crate::chacha20::ChaCha20;
use crate::dh::{DhKeyPair, DhParams, SharedSecret};

/// Handshake protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtlsState {
    /// Nothing sent yet.
    Idle,
    /// Client: hello sent, awaiting server hello.
    HelloSent,
    /// Secret derived; record layer active.
    Established,
    /// Handshake failed; endpoint unusable.
    Failed,
}

/// Errors from the handshake or record layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtlsError {
    /// API called in the wrong state.
    BadState,
    /// Peer certificate identity did not match the expected identity.
    AuthenticationFailed,
    /// Record failed integrity verification.
    BadRecord,
}

impl std::fmt::Display for MtlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for MtlsError {}

/// A hello message: the sender's public DH value plus its claimed identity
/// ("certificate", simplified to an integer identity bound to the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Claimed identity (pod/workload identity in the mesh).
    pub identity: u64,
    /// Sender's public DH value.
    pub public: u64,
}

/// Completed-handshake summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeOutcome {
    /// The agreed secret (both sides hold the same value).
    pub secret: SharedSecret,
    /// The peer's verified identity.
    pub peer_identity: u64,
}

/// A sealed record: sequence number + ciphertext + integrity tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sender-side sequence number (also the nonce basis).
    pub seq: u64,
    ciphertext: Vec<u8>,
    tag: u64,
}

fn record_tag(secret: u64, seq: u64, ct: &[u8]) -> u64 {
    let mut h = secret ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xcbf2_9ce4_8422_2325;
    for &b in ct {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn seq_nonce(seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n
}

/// One side of an mTLS connection.
pub struct MtlsEndpoint {
    state: MtlsState,
    keys: DhKeyPair,
    identity: u64,
    /// Identity we require of the peer (mutual auth); `None` accepts any.
    expected_peer: Option<u64>,
    session: Option<(ChaCha20, u64 /* raw secret for tags */)>,
    send_seq: u64,
    recv_seq: u64,
    peer_identity: Option<u64>,
}

impl MtlsEndpoint {
    /// Create an endpoint with its identity and private-key material.
    pub fn new(identity: u64, private_material: u64) -> Self {
        MtlsEndpoint {
            state: MtlsState::Idle,
            keys: DhKeyPair::generate(DhParams::DEFAULT, private_material),
            identity,
            expected_peer: None,
            session: None,
            send_seq: 0,
            recv_seq: 0,
            peer_identity: None,
        }
    }

    /// Require the peer to present this identity (mutual authentication).
    pub fn expect_peer(mut self, identity: u64) -> Self {
        self.expected_peer = Some(identity);
        self
    }

    /// Current protocol state.
    pub fn state(&self) -> MtlsState {
        self.state
    }

    /// Client step 1: emit our hello.
    pub fn client_hello(&mut self) -> Result<Hello, MtlsError> {
        if self.state != MtlsState::Idle {
            return Err(MtlsError::BadState);
        }
        self.state = MtlsState::HelloSent;
        Ok(Hello {
            identity: self.identity,
            public: self.keys.public,
        })
    }

    fn verify_peer(&mut self, hello: &Hello) -> Result<(), MtlsError> {
        if let Some(expected) = self.expected_peer {
            if hello.identity != expected {
                self.state = MtlsState::Failed;
                return Err(MtlsError::AuthenticationFailed);
            }
        }
        Ok(())
    }

    fn establish(&mut self, peer: &Hello) -> HandshakeOutcome {
        let secret = self.keys.agree(peer.public);
        self.session = Some((ChaCha20::from_shared_secret(secret.0), secret.0));
        self.state = MtlsState::Established;
        self.peer_identity = Some(peer.identity);
        HandshakeOutcome {
            secret,
            peer_identity: peer.identity,
        }
    }

    /// Server step: consume the client hello, emit ours, and establish.
    pub fn server_respond(&mut self, client: &Hello) -> Result<(Hello, HandshakeOutcome), MtlsError> {
        if self.state != MtlsState::Idle {
            return Err(MtlsError::BadState);
        }
        self.verify_peer(client)?;
        let my_hello = Hello {
            identity: self.identity,
            public: self.keys.public,
        };
        let outcome = self.establish(client);
        Ok((my_hello, outcome))
    }

    /// Client step 2: consume the server hello and establish.
    pub fn client_finish(&mut self, server: &Hello) -> Result<HandshakeOutcome, MtlsError> {
        if self.state != MtlsState::HelloSent {
            return Err(MtlsError::BadState);
        }
        self.verify_peer(server)?;
        Ok(self.establish(server))
    }

    /// Install an externally derived secret (the key-server flow: the node
    /// never held the tenant private key; the symmetric key arrived sealed
    /// over the requester channel).
    pub fn install_secret(
        &mut self,
        secret: SharedSecret,
        peer_identity: u64,
    ) -> Result<(), MtlsError> {
        if self.state == MtlsState::Established || self.state == MtlsState::Failed {
            return Err(MtlsError::BadState);
        }
        self.session = Some((ChaCha20::from_shared_secret(secret.0), secret.0));
        self.peer_identity = Some(peer_identity);
        self.state = MtlsState::Established;
        Ok(())
    }

    /// The verified peer identity (after establishment).
    pub fn peer_identity(&self) -> Option<u64> {
        self.peer_identity
    }

    /// Seal application bytes into the next record.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Record, MtlsError> {
        let (cipher, raw) = self.session.as_ref().ok_or(MtlsError::BadState)?;
        let seq = self.send_seq;
        self.send_seq += 1;
        let ciphertext = cipher.encrypt(0, &seq_nonce(seq), plaintext);
        let tag = record_tag(*raw, seq, &ciphertext);
        Ok(Record {
            seq,
            ciphertext,
            tag,
        })
    }

    /// Open the next in-order record.
    pub fn open(&mut self, record: &Record) -> Result<Vec<u8>, MtlsError> {
        let (cipher, raw) = self.session.as_ref().ok_or(MtlsError::BadState)?;
        if record.seq != self.recv_seq
            || record_tag(*raw, record.seq, &record.ciphertext) != record.tag
        {
            return Err(MtlsError::BadRecord);
        }
        self.recv_seq += 1;
        Ok(cipher.encrypt(0, &seq_nonce(record.seq), &record.ciphertext))
    }
}

impl std::fmt::Debug for MtlsEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MtlsEndpoint {{ identity: {}, state: {:?} }}",
            self.identity, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (MtlsEndpoint, MtlsEndpoint) {
        (
            MtlsEndpoint::new(100, 0xAAAA).expect_peer(200),
            MtlsEndpoint::new(200, 0xBBBB).expect_peer(100),
        )
    }

    #[test]
    fn handshake_establishes_matching_secrets() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello().unwrap();
        let (sh, server_out) = server.server_respond(&ch).unwrap();
        let client_out = client.client_finish(&sh).unwrap();
        assert_eq!(client_out.secret, server_out.secret);
        assert_eq!(client.state(), MtlsState::Established);
        assert_eq!(server.state(), MtlsState::Established);
        assert_eq!(client.peer_identity(), Some(200));
        assert_eq!(server.peer_identity(), Some(100));
    }

    #[test]
    fn records_flow_both_ways() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello().unwrap();
        let (sh, _) = server.server_respond(&ch).unwrap();
        client.client_finish(&sh).unwrap();

        let r1 = client.seal(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(server.open(&r1).unwrap(), b"GET / HTTP/1.1\r\n\r\n");
        let r2 = server.seal(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(client.open(&r2).unwrap(), b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn wrong_identity_fails_authentication() {
        let mut client = MtlsEndpoint::new(100, 1).expect_peer(200);
        let mut imposter = MtlsEndpoint::new(666, 2); // claims 666, not 200
        let ch = client.client_hello().unwrap();
        let (sh, _) = imposter.server_respond(&ch).unwrap();
        assert_eq!(client.client_finish(&sh), Err(MtlsError::AuthenticationFailed));
        assert_eq!(client.state(), MtlsState::Failed);
    }

    #[test]
    fn server_rejects_wrong_client() {
        let mut bad_client = MtlsEndpoint::new(31337, 1);
        let mut server = MtlsEndpoint::new(200, 2).expect_peer(100);
        let ch = bad_client.client_hello().unwrap();
        assert_eq!(
            server.server_respond(&ch).unwrap_err(),
            MtlsError::AuthenticationFailed
        );
    }

    #[test]
    fn out_of_order_api_calls_error() {
        let (mut client, mut server) = pair();
        assert_eq!(client.seal(b"x").unwrap_err(), MtlsError::BadState);
        let ch = client.client_hello().unwrap();
        assert_eq!(client.client_hello().unwrap_err(), MtlsError::BadState);
        let (sh, _) = server.server_respond(&ch).unwrap();
        assert_eq!(server.server_respond(&ch).unwrap_err(), MtlsError::BadState);
        client.client_finish(&sh).unwrap();
        assert_eq!(client.client_finish(&sh).unwrap_err(), MtlsError::BadState);
    }

    #[test]
    fn tampered_and_replayed_records_rejected() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello().unwrap();
        let (sh, _) = server.server_respond(&ch).unwrap();
        client.client_finish(&sh).unwrap();

        let mut r = client.seal(b"secret payload").unwrap();
        let good = r.clone();
        r.ciphertext[3] ^= 0x01;
        assert_eq!(server.open(&r), Err(MtlsError::BadRecord));
        // The untampered record still opens...
        assert!(server.open(&good).is_ok());
        // ...but replaying it is rejected (stale sequence).
        assert_eq!(server.open(&good), Err(MtlsError::BadRecord));
    }

    #[test]
    fn key_server_flow_installs_external_secret() {
        // Neither side runs the DH locally; the symmetric key arrives from
        // the key server (tested end-to-end in keyserver.rs). Both install.
        let secret = SharedSecret(0x1122_3344_5566_7788);
        let mut a = MtlsEndpoint::new(1, 11);
        let mut b = MtlsEndpoint::new(2, 22);
        a.install_secret(secret, 2).unwrap();
        b.install_secret(secret, 1).unwrap();
        let r = a.seal(b"via key server").unwrap();
        assert_eq!(b.open(&r).unwrap(), b"via key server");
        // Installing twice is a state error.
        assert_eq!(a.install_secret(secret, 2), Err(MtlsError::BadState));
    }
}
