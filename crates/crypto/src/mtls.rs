//! The mTLS handshake state machine and record layer.
//!
//! A deliberately small TLS: one DH round trip establishes a shared secret,
//! from which both sides derive a ChaCha20 session cipher. The state machine
//! is explicit (wrong-order calls are errors, not panics), and the record
//! layer uses per-record sequence numbers as nonces so replayed or reordered
//! records fail to decrypt meaningfully.
//!
//! Since the lifecycle layer ([`crate::lifecycle`]) a hello carries a full
//! [`Cert`] — identity, tenant, serial, expiry — not a bare integer, and
//! every handshake step takes the caller's clock so expiry and revocation
//! are checked *at handshake time* against the endpoint's installed
//! [`TrustBundle`]. Established sessions can also be **resumed** from a
//! [`SessionTicket`]: resumption re-installs the session secret without the
//! asymmetric step, which is why only full handshakes pay the accelerator
//! batch / key-server RTT cost at the call site.
//!
//! Time/cost of the *asymmetric* step is priced by an
//! [`crate::accel::AsymmetricBackend`] at the call site (the mesh data
//! path); this module is the functional half.

use crate::chacha20::ChaCha20;
use crate::dh::{DhKeyPair, DhParams, SharedSecret};
use crate::lifecycle::{Cert, SessionTicket, TrustBundle};
use canal_sim::SimTime;

/// Handshake protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtlsState {
    /// Nothing sent yet.
    Idle,
    /// Client: hello sent, awaiting server hello.
    HelloSent,
    /// Secret derived; record layer active.
    Established,
    /// Handshake failed; endpoint unusable.
    Failed,
}

/// Errors from the handshake or record layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtlsError {
    /// API called in the wrong state.
    BadState,
    /// Peer certificate identity did not match the expected identity, or
    /// the peer presented a cert for the wrong tenant.
    AuthenticationFailed,
    /// Record failed integrity verification.
    BadRecord,
    /// A certificate (own or peer's) was past `not_after` at handshake
    /// time. Retryable-after-refresh: a re-issued cert clears it.
    CertificateExpired,
    /// The peer's certificate serial is revoked by the installed trust
    /// bundle. Terminal: no retry can succeed until re-issuance under a
    /// non-revoked serial.
    CertificateRevoked,
}

impl std::fmt::Display for MtlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for MtlsError {}

/// A hello message: the sender's public DH value plus its certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The sender's workload certificate (identity, tenant, serial,
    /// expiry) — what used to be a bare `u64` identity.
    pub cert: Cert,
    /// Sender's public DH value.
    pub public: u64,
}

/// Completed-handshake summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeOutcome {
    /// The agreed secret (both sides hold the same value).
    pub secret: SharedSecret,
    /// The peer's verified identity.
    pub peer_identity: u64,
}

/// A sealed record: sequence number + ciphertext + integrity tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sender-side sequence number (also the nonce basis).
    pub seq: u64,
    ciphertext: Vec<u8>,
    tag: u64,
}

fn record_tag(secret: u64, seq: u64, ct: &[u8]) -> u64 {
    let mut h = secret ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xcbf2_9ce4_8422_2325;
    for &b in ct {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn seq_nonce(seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n
}

/// One side of an mTLS connection.
pub struct MtlsEndpoint {
    state: MtlsState,
    keys: DhKeyPair,
    cert: Cert,
    /// Identity we require of the peer (mutual auth); `None` accepts any.
    expected_peer: Option<u64>,
    /// Validation view for the peer's cert; `None` skips revocation and
    /// tenant checks (expiry on the cert itself is always enforced).
    trust: Option<TrustBundle>,
    session: Option<(ChaCha20, u64 /* raw secret for tags */)>,
    send_seq: u64,
    recv_seq: u64,
    peer_identity: Option<u64>,
    /// Whether the session came from a resumption ticket (no asymmetric
    /// step was performed).
    resumed: bool,
}

impl MtlsEndpoint {
    /// Create an endpoint with a bare identity and private-key material —
    /// the pre-lifecycle API, equivalent to a never-expiring tenant-0 cert.
    pub fn new(identity: u64, private_material: u64) -> Self {
        Self::with_cert(Cert::eternal(identity), private_material)
    }

    /// Create an endpoint presenting `cert`.
    pub fn with_cert(cert: Cert, private_material: u64) -> Self {
        MtlsEndpoint {
            state: MtlsState::Idle,
            keys: DhKeyPair::generate(DhParams::DEFAULT, private_material),
            cert,
            expected_peer: None,
            trust: None,
            session: None,
            send_seq: 0,
            recv_seq: 0,
            peer_identity: None,
            resumed: false,
        }
    }

    /// Require the peer to present this identity (mutual authentication).
    pub fn expect_peer(mut self, identity: u64) -> Self {
        self.expected_peer = Some(identity);
        self
    }

    /// Install the trust bundle peer certs are validated against
    /// (tenant match + revocation; expiry is always checked).
    pub fn with_trust(mut self, bundle: TrustBundle) -> Self {
        self.trust = Some(bundle);
        self
    }

    /// Replace the endpoint's own certificate (rotation refresh). Only
    /// meaningful before establishment.
    pub fn refresh_cert(&mut self, cert: Cert) -> Result<(), MtlsError> {
        if self.state == MtlsState::Established {
            return Err(MtlsError::BadState);
        }
        self.cert = cert;
        if self.state == MtlsState::Failed {
            self.state = MtlsState::Idle;
        }
        Ok(())
    }

    /// Current protocol state.
    pub fn state(&self) -> MtlsState {
        self.state
    }

    /// The endpoint's own certificate.
    pub fn cert(&self) -> &Cert {
        &self.cert
    }

    /// Whether the established session was resumed from a ticket.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Client step 1: emit our hello. Fails `CertificateExpired` if our own
    /// cert is no longer valid at `now` — an expired workload must refresh
    /// before it can even open.
    pub fn client_hello(&mut self, now: SimTime) -> Result<Hello, MtlsError> {
        if self.state != MtlsState::Idle {
            return Err(MtlsError::BadState);
        }
        if !self.cert.valid_at(now) {
            self.state = MtlsState::Failed;
            return Err(MtlsError::CertificateExpired);
        }
        self.state = MtlsState::HelloSent;
        Ok(Hello {
            cert: self.cert,
            public: self.keys.public,
        })
    }

    fn verify_peer(&mut self, hello: &Hello, now: SimTime) -> Result<(), MtlsError> {
        let verdict = (|| {
            if let Some(expected) = self.expected_peer {
                if hello.cert.identity != expected {
                    return Err(MtlsError::AuthenticationFailed);
                }
            }
            match &self.trust {
                Some(bundle) => bundle.permits(&hello.cert, now),
                None if !hello.cert.valid_at(now) => Err(MtlsError::CertificateExpired),
                None => Ok(()),
            }
        })();
        if let Err(e) = verdict {
            self.state = MtlsState::Failed;
            return Err(e);
        }
        Ok(())
    }

    fn establish(&mut self, peer: &Hello) -> HandshakeOutcome {
        let secret = self.keys.agree(peer.public);
        self.session = Some((ChaCha20::from_shared_secret(secret.0), secret.0));
        self.state = MtlsState::Established;
        self.peer_identity = Some(peer.cert.identity);
        HandshakeOutcome {
            secret,
            peer_identity: peer.cert.identity,
        }
    }

    /// Server step: consume the client hello, emit ours, and establish.
    pub fn server_respond(
        &mut self,
        client: &Hello,
        now: SimTime,
    ) -> Result<(Hello, HandshakeOutcome), MtlsError> {
        if self.state != MtlsState::Idle {
            return Err(MtlsError::BadState);
        }
        if !self.cert.valid_at(now) {
            self.state = MtlsState::Failed;
            return Err(MtlsError::CertificateExpired);
        }
        self.verify_peer(client, now)?;
        let my_hello = Hello {
            cert: self.cert,
            public: self.keys.public,
        };
        let outcome = self.establish(client);
        Ok((my_hello, outcome))
    }

    /// Client step 2: consume the server hello and establish.
    pub fn client_finish(
        &mut self,
        server: &Hello,
        now: SimTime,
    ) -> Result<HandshakeOutcome, MtlsError> {
        if self.state != MtlsState::HelloSent {
            return Err(MtlsError::BadState);
        }
        self.verify_peer(server, now)?;
        Ok(self.establish(server))
    }

    /// Install an externally derived secret (the key-server flow: the node
    /// never held the tenant private key; the symmetric key arrived sealed
    /// over the requester channel).
    pub fn install_secret(
        &mut self,
        secret: SharedSecret,
        peer_identity: u64,
    ) -> Result<(), MtlsError> {
        if self.state == MtlsState::Established || self.state == MtlsState::Failed {
            return Err(MtlsError::BadState);
        }
        self.session = Some((ChaCha20::from_shared_secret(secret.0), secret.0));
        self.peer_identity = Some(peer_identity);
        self.state = MtlsState::Established;
        Ok(())
    }

    /// Resume a session from a ticket: re-installs the session secret
    /// without any asymmetric step (no DH, no key-server round trip — the
    /// call site charges no accelerator cost). The ticket must still be
    /// live at `now`; a dead ticket means the caller falls back to a full
    /// handshake.
    pub fn resume(&mut self, ticket: &SessionTicket, now: SimTime) -> Result<(), MtlsError> {
        if self.state != MtlsState::Idle {
            return Err(MtlsError::BadState);
        }
        if now >= ticket.expires {
            return Err(MtlsError::CertificateExpired);
        }
        if let Some(expected) = self.expected_peer {
            if ticket.peer_identity != expected {
                return Err(MtlsError::AuthenticationFailed);
            }
        }
        if let Some(bundle) = &self.trust {
            if ticket.tenant == bundle.tenant
                && (ticket.cert_serial < bundle.revocation_floor
                    || bundle.revoked.binary_search(&ticket.cert_serial).is_ok())
            {
                return Err(MtlsError::CertificateRevoked);
            }
        }
        self.session = Some((
            ChaCha20::from_shared_secret(ticket.secret.0),
            ticket.secret.0,
        ));
        self.peer_identity = Some(ticket.peer_identity);
        self.state = MtlsState::Established;
        self.resumed = true;
        Ok(())
    }

    /// The verified peer identity (after establishment).
    pub fn peer_identity(&self) -> Option<u64> {
        self.peer_identity
    }

    /// Seal application bytes into the next record.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Record, MtlsError> {
        let (cipher, raw) = self.session.as_ref().ok_or(MtlsError::BadState)?;
        let seq = self.send_seq;
        self.send_seq += 1;
        let ciphertext = cipher.encrypt(0, &seq_nonce(seq), plaintext);
        let tag = record_tag(*raw, seq, &ciphertext);
        Ok(Record {
            seq,
            ciphertext,
            tag,
        })
    }

    /// Open the next in-order record.
    pub fn open(&mut self, record: &Record) -> Result<Vec<u8>, MtlsError> {
        let (cipher, raw) = self.session.as_ref().ok_or(MtlsError::BadState)?;
        if record.seq != self.recv_seq
            || record_tag(*raw, record.seq, &record.ciphertext) != record.tag
        {
            return Err(MtlsError::BadRecord);
        }
        self.recv_seq += 1;
        Ok(cipher.encrypt(0, &seq_nonce(record.seq), &record.ciphertext))
    }
}

impl std::fmt::Debug for MtlsEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MtlsEndpoint {{ identity: {}, tenant: {}, state: {:?} }}",
            self.cert.identity, self.cert.tenant, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{TenantCa, TicketCache};
    use canal_sim::SimDuration;

    const NOW: SimTime = SimTime::ZERO;

    fn pair() -> (MtlsEndpoint, MtlsEndpoint) {
        (
            MtlsEndpoint::new(100, 0xAAAA).expect_peer(200),
            MtlsEndpoint::new(200, 0xBBBB).expect_peer(100),
        )
    }

    #[test]
    fn handshake_establishes_matching_secrets() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello(NOW).unwrap();
        let (sh, server_out) = server.server_respond(&ch, NOW).unwrap();
        let client_out = client.client_finish(&sh, NOW).unwrap();
        assert_eq!(client_out.secret, server_out.secret);
        assert_eq!(client.state(), MtlsState::Established);
        assert_eq!(server.state(), MtlsState::Established);
        assert_eq!(client.peer_identity(), Some(200));
        assert_eq!(server.peer_identity(), Some(100));
        assert!(!client.resumed() && !server.resumed());
    }

    #[test]
    fn records_flow_both_ways() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello(NOW).unwrap();
        let (sh, _) = server.server_respond(&ch, NOW).unwrap();
        client.client_finish(&sh, NOW).unwrap();

        let r1 = client.seal(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(server.open(&r1).unwrap(), b"GET / HTTP/1.1\r\n\r\n");
        let r2 = server.seal(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(client.open(&r2).unwrap(), b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn wrong_identity_fails_authentication() {
        let mut client = MtlsEndpoint::new(100, 1).expect_peer(200);
        let mut imposter = MtlsEndpoint::new(666, 2); // claims 666, not 200
        let ch = client.client_hello(NOW).unwrap();
        let (sh, _) = imposter.server_respond(&ch, NOW).unwrap();
        assert_eq!(
            client.client_finish(&sh, NOW),
            Err(MtlsError::AuthenticationFailed)
        );
        assert_eq!(client.state(), MtlsState::Failed);
    }

    #[test]
    fn server_rejects_wrong_client() {
        let mut bad_client = MtlsEndpoint::new(31337, 1);
        let mut server = MtlsEndpoint::new(200, 2).expect_peer(100);
        let ch = bad_client.client_hello(NOW).unwrap();
        assert_eq!(
            server.server_respond(&ch, NOW).unwrap_err(),
            MtlsError::AuthenticationFailed
        );
    }

    #[test]
    fn out_of_order_api_calls_error() {
        let (mut client, mut server) = pair();
        assert_eq!(client.seal(b"x").unwrap_err(), MtlsError::BadState);
        let ch = client.client_hello(NOW).unwrap();
        assert_eq!(client.client_hello(NOW).unwrap_err(), MtlsError::BadState);
        let (sh, _) = server.server_respond(&ch, NOW).unwrap();
        assert_eq!(server.server_respond(&ch, NOW).unwrap_err(), MtlsError::BadState);
        client.client_finish(&sh, NOW).unwrap();
        assert_eq!(client.client_finish(&sh, NOW).unwrap_err(), MtlsError::BadState);
    }

    #[test]
    fn tampered_and_replayed_records_rejected() {
        let (mut client, mut server) = pair();
        let ch = client.client_hello(NOW).unwrap();
        let (sh, _) = server.server_respond(&ch, NOW).unwrap();
        client.client_finish(&sh, NOW).unwrap();

        let mut r = client.seal(b"secret payload").unwrap();
        let good = r.clone();
        r.ciphertext[3] ^= 0x01;
        assert_eq!(server.open(&r), Err(MtlsError::BadRecord));
        // The untampered record still opens...
        assert!(server.open(&good).is_ok());
        // ...but replaying it is rejected (stale sequence).
        assert_eq!(server.open(&good), Err(MtlsError::BadRecord));
    }

    #[test]
    fn key_server_flow_installs_external_secret() {
        // Neither side runs the DH locally; the symmetric key arrives from
        // the key server (tested end-to-end in keyserver.rs). Both install.
        let secret = SharedSecret(0x1122_3344_5566_7788);
        let mut a = MtlsEndpoint::new(1, 11);
        let mut b = MtlsEndpoint::new(2, 22);
        a.install_secret(secret, 2).unwrap();
        b.install_secret(secret, 1).unwrap();
        let r = a.seal(b"via key server").unwrap();
        assert_eq!(b.open(&r).unwrap(), b"via key server");
        // Installing twice is a state error.
        assert_eq!(a.install_secret(secret, 2), Err(MtlsError::BadState));
    }

    #[test]
    fn expired_own_cert_refuses_to_open() {
        let mut ca = TenantCa::new(1);
        let cert = ca.issue(100, SimTime::ZERO, SimDuration::from_secs(10));
        let mut client = MtlsEndpoint::with_cert(cert, 1);
        let late = SimTime::from_secs(10);
        assert_eq!(client.client_hello(late), Err(MtlsError::CertificateExpired));
        assert_eq!(client.state(), MtlsState::Failed);
        // A refreshed cert recovers the endpoint (retryable-after-refresh).
        let fresh = ca.issue(100, late, SimDuration::from_secs(10));
        client.refresh_cert(fresh).unwrap();
        assert!(client.client_hello(late).is_ok());
    }

    #[test]
    fn expired_peer_cert_rejected_at_handshake_time() {
        let mut ca = TenantCa::new(1);
        let client_cert = ca.issue(100, SimTime::ZERO, SimDuration::from_secs(5));
        let server_cert = ca.issue(200, SimTime::ZERO, SimDuration::from_secs(3600));
        let mut client = MtlsEndpoint::with_cert(client_cert, 1);
        let mut server = MtlsEndpoint::with_cert(server_cert, 2);
        let ch = client.client_hello(SimTime::from_secs(4)).unwrap();
        // The hello is in flight while the cert expires.
        assert_eq!(
            server.server_respond(&ch, SimTime::from_secs(6)),
            Err(MtlsError::CertificateExpired)
        );
        assert_eq!(server.state(), MtlsState::Failed);
    }

    #[test]
    fn revoked_peer_rejected_via_trust_bundle() {
        let mut ca = TenantCa::new(7);
        let now = SimTime::from_secs(1);
        let client_cert = ca.issue(100, now, SimDuration::from_secs(3600));
        let server_cert = ca.issue(200, now, SimDuration::from_secs(3600));
        ca.revoke(client_cert.serial, now);
        let bundle = ca.trust_bundle(1);
        let mut client = MtlsEndpoint::with_cert(client_cert, 1);
        let mut server = MtlsEndpoint::with_cert(server_cert, 2).with_trust(bundle);
        let ch = client.client_hello(now).unwrap();
        assert_eq!(
            server.server_respond(&ch, now),
            Err(MtlsError::CertificateRevoked)
        );
    }

    #[test]
    fn wrong_tenant_rejected_via_trust_bundle() {
        let mut ca7 = TenantCa::new(7);
        let mut ca9 = TenantCa::new(9);
        let now = SimTime::from_secs(1);
        let intruder_cert = ca9.issue(100, now, SimDuration::from_secs(3600));
        let server_cert = ca7.issue(200, now, SimDuration::from_secs(3600));
        let mut intruder = MtlsEndpoint::with_cert(intruder_cert, 1);
        let mut server = MtlsEndpoint::with_cert(server_cert, 2).with_trust(ca7.trust_bundle(1));
        let ch = intruder.client_hello(now).unwrap();
        assert_eq!(
            server.server_respond(&ch, now),
            Err(MtlsError::AuthenticationFailed)
        );
    }

    #[test]
    fn resumption_skips_asymmetric_step_and_matches_full_session() {
        let mut ca = TenantCa::new(3);
        let now = SimTime::from_secs(1);
        let client_cert = ca.issue(100, now, SimDuration::from_secs(3600));
        let server_cert = ca.issue(200, now, SimDuration::from_secs(3600));

        // Full handshake first.
        let mut client = MtlsEndpoint::with_cert(client_cert, 0xAAAA);
        let mut server = MtlsEndpoint::with_cert(server_cert, 0xBBBB);
        let ch = client.client_hello(now).unwrap();
        let (sh, out) = server.server_respond(&ch, now).unwrap();
        client.client_finish(&sh, now).unwrap();

        // Mint a ticket from the outcome; resume fresh endpoints from it.
        let mut cache = TicketCache::new();
        let t = cache.mint(&client_cert, 200, out.secret, now, SimDuration::from_secs(600));
        let later = now + SimDuration::from_secs(60);
        let ticket = cache.redeem(t.id, later).unwrap();
        let mut rc = MtlsEndpoint::with_cert(client_cert, 0xAAAA);
        let mut rs = MtlsEndpoint::with_cert(server_cert, 0xBBBB);
        rc.resume(&ticket, later).unwrap();
        rs.resume(
            &SessionTicket { peer_identity: 100, ..ticket },
            later,
        )
        .unwrap();
        assert!(rc.resumed() && rs.resumed());

        // The resumed pair interoperates with itself AND derives the same
        // cipher stream the full-handshake pair would: cross-open works.
        let r = rc.seal(b"resumed").unwrap();
        assert_eq!(rs.open(&r).unwrap(), b"resumed");
        let full = client.seal(b"resumed").unwrap();
        let res = rc.seal(b"resumed").unwrap();
        // seq 0 was consumed above on rc; compare the full pair's record
        // against a fresh resumed endpoint at the same seq instead.
        let mut rc2 = MtlsEndpoint::with_cert(client_cert, 0);
        rc2.resume(&ticket, later).unwrap();
        let res0 = rc2.seal(b"resumed").unwrap();
        assert_eq!(full, res0, "resume derives the identical session cipher");
        let _ = res;
    }

    #[test]
    fn dead_ticket_rejected_at_resume() {
        let mut ca = TenantCa::new(3);
        let now = SimTime::from_secs(1);
        let cert = ca.issue(100, now, SimDuration::from_secs(30));
        let mut cache = TicketCache::new();
        let t = cache.mint(&cert, 200, SharedSecret(0x55), now, SimDuration::from_secs(600));
        // Ticket clamped to cert.not_after; at that instant resume fails.
        let mut ep = MtlsEndpoint::with_cert(cert, 1);
        assert_eq!(
            ep.resume(&t, cert.not_after),
            Err(MtlsError::CertificateExpired)
        );
        // A bundle that revokes the generation kills resumption too.
        ca.rotate();
        ca.revoke_generation();
        let mut ep2 =
            MtlsEndpoint::with_cert(cert, 1).with_trust(ca.trust_bundle(2));
        assert_eq!(
            ep2.resume(&t, now + SimDuration::from_secs(1)),
            Err(MtlsError::CertificateRevoked)
        );
    }
}
