//! Asymmetric-crypto acceleration backends (§4.1.3, Fig. 23, Fig. 25).
//!
//! Three ways to complete the expensive handshake `mod_exp`:
//!
//! * [`SoftwareBackend`] — plain software on an old CPU: ≈2 ms per
//!   operation, all of it burned on the node's cores.
//! * [`BatchAccelerator`] — the AVX-512/QAT model: operations are gathered
//!   into a fixed-width batch (8 = 512 bits / 64-bit lanes) processed in
//!   ≈1 ms. A partially filled batch waits for more arrivals until a 1 ms
//!   flush timeout — the *batching bubble* that makes local acceleration
//!   slower than software when fewer than 8 new connections arrive together
//!   (Fig. 25).
//! * Remote key server (see [`crate::keyserver`]) — adds an intra-AZ RTT but
//!   sees the aggregate arrival rate of *all tenants*, so its batches are
//!   always full: completion is flat ≈1.7 ms regardless of any one node's
//!   concurrency (Fig. 23).
//!
//! The exact queue-based model ([`BatchAccelerator`]) drives the
//! micro-experiments; the [`AsymmetricBackend`] trait's analytic
//! `completion` is what the per-request data path uses.

use canal_sim::{SimDuration, SimTime};

/// Tunables for a batch accelerator.
#[derive(Debug, Clone, Copy)]
pub struct AccelConfig {
    /// Operations per batch (AVX-512: 8).
    pub batch_width: usize,
    /// How long a partial batch waits before processing anyway (min 1 ms per
    /// the paper).
    pub flush_timeout: SimDuration,
    /// Time to process one full batch.
    pub per_batch_cost: SimDuration,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            batch_width: 8,
            flush_timeout: SimDuration::from_millis(1),
            per_batch_cost: SimDuration::from_millis(1),
        }
    }
}

/// A completed asymmetric operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedOp {
    /// Caller-visible id returned by `submit`.
    pub id: u64,
    /// When the operation was submitted.
    pub arrived: SimTime,
    /// When its batch finished processing.
    pub completed: SimTime,
}

impl CompletedOp {
    /// End-to-end completion latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.arrived)
    }
}

/// Exact queue model of a batch accelerator.
#[derive(Debug)]
pub struct BatchAccelerator {
    cfg: AccelConfig,
    pending: Vec<(u64, SimTime)>,
    busy_until: SimTime,
    next_id: u64,
    completed: Vec<CompletedOp>,
    batches_processed: u64,
}

impl BatchAccelerator {
    /// New accelerator with the given config.
    pub fn new(cfg: AccelConfig) -> Self {
        assert!(cfg.batch_width > 0);
        BatchAccelerator {
            cfg,
            pending: Vec::new(),
            busy_until: SimTime::ZERO,
            next_id: 0,
            completed: Vec::new(),
            batches_processed: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> AccelConfig {
        self.cfg
    }

    fn flush(&mut self, trigger: SimTime) {
        if self.pending.is_empty() {
            return;
        }
        let start = trigger.max(self.busy_until);
        let done = start + self.cfg.per_batch_cost;
        self.busy_until = done;
        self.batches_processed += 1;
        for (id, arrived) in self.pending.drain(..) {
            self.completed.push(CompletedOp {
                id,
                arrived,
                completed: done,
            });
        }
    }

    /// Process any batch whose flush timeout has expired by `now`.
    pub fn poll(&mut self, now: SimTime) {
        if let Some(&(_, first)) = self.pending.first() {
            let deadline = first + self.cfg.flush_timeout;
            if now >= deadline {
                self.flush(deadline);
            }
        }
    }

    /// Submit one operation at `now`; returns its id. A batch reaching full
    /// width processes immediately.
    pub fn submit(&mut self, now: SimTime) -> u64 {
        self.poll(now);
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((id, now));
        if self.pending.len() >= self.cfg.batch_width {
            self.flush(now);
        }
        id
    }

    /// When the currently pending partial batch will time out, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending
            .first()
            .map(|&(_, first)| first + self.cfg.flush_timeout)
    }

    /// Force-process everything pending (shutdown).
    pub fn flush_all(&mut self, now: SimTime) {
        self.flush(now);
    }

    /// Take all completions recorded so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedOp> {
        std::mem::take(&mut self.completed)
    }

    /// Batches processed so far.
    pub fn batches_processed(&self) -> u64 {
        self.batches_processed
    }
}

/// The analytic interface the per-request data path uses: given the
/// instantaneous number of concurrently arriving new connections, how long
/// until the handshake's asymmetric step completes, and how much *node* CPU
/// it burns.
pub trait AsymmetricBackend {
    /// Completion latency of one asymmetric operation under
    /// `concurrent_new_connections` simultaneous arrivals.
    fn completion(&self, concurrent_new_connections: usize) -> SimDuration;

    /// CPU time consumed on the requesting node per operation.
    fn node_cpu_cost(&self) -> SimDuration;

    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Plain software asymmetric crypto (no acceleration; "old CPU models").
#[derive(Debug, Clone, Copy)]
pub struct SoftwareBackend {
    /// Per-operation compute time.
    pub op_cost: SimDuration,
}

impl Default for SoftwareBackend {
    fn default() -> Self {
        SoftwareBackend {
            op_cost: SimDuration::from_millis(2),
        }
    }
}

impl AsymmetricBackend for SoftwareBackend {
    fn completion(&self, _concurrency: usize) -> SimDuration {
        self.op_cost
    }

    fn node_cpu_cost(&self) -> SimDuration {
        self.op_cost
    }

    fn name(&self) -> &'static str {
        "software"
    }
}

/// Analytic view of the local batch accelerator: full batches process at
/// batch cost; partial batches additionally eat the flush timeout.
#[derive(Debug, Clone, Copy)]
pub struct LocalBatchBackend {
    /// Batch configuration.
    pub cfg: AccelConfig,
    /// Node CPU consumed per op (the accelerator is the node's own CPU, but
    /// vectorization cuts the cycle count substantially).
    pub node_cpu: SimDuration,
}

impl Default for LocalBatchBackend {
    fn default() -> Self {
        LocalBatchBackend {
            cfg: AccelConfig::default(),
            node_cpu: SimDuration::from_micros(700),
        }
    }
}

impl AsymmetricBackend for LocalBatchBackend {
    fn completion(&self, concurrency: usize) -> SimDuration {
        if concurrency >= self.cfg.batch_width {
            self.cfg.per_batch_cost
        } else {
            // Partial batch: the op waits out (a fraction of) the flush
            // timeout before processing. Fewer concurrent arrivals → longer
            // expected wait, saturating at the full timeout for a lone op
            // (which then costs timeout + batch = exactly the software cost:
            // the Fig. 25 "no better than no offloading" regime).
            let missing = (self.cfg.batch_width - concurrency.max(1)) as f64
                / (self.cfg.batch_width - 1) as f64;
            self.cfg.per_batch_cost + self.cfg.flush_timeout.scale(missing)
        }
    }

    fn node_cpu_cost(&self) -> SimDuration {
        self.node_cpu
    }

    fn name(&self) -> &'static str {
        "local-batch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;
    const T: fn(u64) -> SimTime = SimTime::from_micros;

    #[test]
    fn full_batch_processes_immediately() {
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        for i in 0..8 {
            acc.submit(T(i * 10));
        }
        let done = acc.drain_completed();
        assert_eq!(done.len(), 8);
        // Batch triggered at the 8th arrival (t=70us), costs 1ms.
        for op in &done {
            assert_eq!(op.completed, T(70) + MS(1));
        }
        assert_eq!(acc.batches_processed(), 1);
    }

    #[test]
    fn partial_batch_waits_for_timeout() {
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        acc.submit(T(0));
        acc.poll(T(500));
        assert!(acc.drain_completed().is_empty(), "0.5ms: still waiting");
        acc.poll(T(1_000));
        let done = acc.drain_completed();
        assert_eq!(done.len(), 1);
        // Flushed at the 1ms deadline, +1ms processing = 2ms total latency.
        assert_eq!(done[0].latency(), MS(2));
    }

    #[test]
    fn lone_op_is_no_faster_than_software() {
        // The Fig. 25 pathology: a single new connection takes timeout +
        // batch cost = 2ms — exactly the software cost, so zero benefit
        // (and worse once queueing is added).
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        acc.submit(T(0));
        acc.poll(T(10_000));
        let lat = acc.drain_completed()[0].latency();
        let sw = SoftwareBackend::default().op_cost;
        assert!(lat >= sw);
    }

    #[test]
    fn serial_batches_queue_behind_each_other() {
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        // Two full batches arriving at once.
        for _ in 0..16 {
            acc.submit(T(0));
        }
        let done = acc.drain_completed();
        assert_eq!(done.len(), 16);
        let first_batch_done = done[0].completed;
        let second_batch_done = done[15].completed;
        assert_eq!(first_batch_done, SimTime::ZERO + MS(1));
        assert_eq!(second_batch_done, SimTime::ZERO + MS(2));
    }

    #[test]
    fn deadline_reporting() {
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        assert!(acc.next_deadline().is_none());
        acc.submit(T(100));
        assert_eq!(acc.next_deadline(), Some(T(100) + MS(1)));
        acc.flush_all(T(200));
        assert!(acc.next_deadline().is_none());
        assert_eq!(acc.drain_completed().len(), 1);
    }

    #[test]
    fn submit_flushes_stale_batch_first() {
        let mut acc = BatchAccelerator::new(AccelConfig::default());
        acc.submit(T(0));
        // Next submit arrives 5ms later: the first op must have flushed at
        // its own deadline, not merged with the newcomer.
        acc.submit(T(5_000));
        let done = acc.drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency(), MS(2));
    }

    #[test]
    fn analytic_backend_matches_paper_shape() {
        let local = LocalBatchBackend::default();
        let sw = SoftwareBackend::default();
        // Saturated: 1ms — 2x faster than software (Fig. 23 local ≈ 1ms).
        assert_eq!(local.completion(8), MS(1));
        assert_eq!(local.completion(100), MS(1));
        // Starved: as slow as or slower than software (Fig. 25).
        assert!(local.completion(1) >= sw.completion(1));
        // Monotonic improvement with concurrency.
        for c in 1..8 {
            assert!(local.completion(c + 1) <= local.completion(c));
        }
    }

    #[test]
    fn node_cpu_cost_ordering() {
        // Acceleration must reduce node CPU burn (the Fig. 12 effect).
        let sw = SoftwareBackend::default();
        let local = LocalBatchBackend::default();
        assert!(local.node_cpu_cost() < sw.node_cpu_cost());
    }
}
