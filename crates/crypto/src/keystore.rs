//! Encrypted in-memory private-key storage (§4.1.3, "Maintaining the
//! security of the key server is critical").
//!
//! Three properties from the paper:
//!
//! 1. Keys live in **memory only** — nothing here persists, so a physical
//!    theft + restart yields nothing (modeled by the store simply being a
//!    process object).
//! 2. Keys are stored **encrypted** under a master key and decrypted only
//!    transiently inside [`KeyStore::with_key`]; the plaintext never escapes
//!    the closure and is wiped after use.
//! 3. Only **verified requesters** may trigger decryption — enforced by the
//!    key server layer on top (see [`crate::keyserver`]).

use crate::chacha20::ChaCha20;
use canal_net::TenantId;
use std::collections::BTreeMap;

/// Encrypted-at-rest private key storage, keyed by tenant.
pub struct KeyStore {
    master: ChaCha20,
    /// tenant -> (nonce, ciphertext of the 8-byte private key material).
    encrypted: BTreeMap<TenantId, ([u8; 12], Vec<u8>)>,
    nonce_counter: u64,
}

impl KeyStore {
    /// Create a store sealed under master-key material.
    pub fn new(master_key_material: u64) -> Self {
        KeyStore {
            master: ChaCha20::from_shared_secret(master_key_material),
            encrypted: BTreeMap::new(),
            nonce_counter: 0,
        }
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        self.nonce_counter += 1;
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&self.nonce_counter.to_le_bytes());
        n
    }

    /// Store (encrypt) a tenant's private-key material. Overwrites any
    /// previous key for the tenant.
    pub fn store(&mut self, tenant: TenantId, private_material: u64) {
        let nonce = self.next_nonce();
        let ct = self.master.encrypt(0, &nonce, &private_material.to_le_bytes());
        self.encrypted.insert(tenant, (nonce, ct));
    }

    /// Whether a key is stored for the tenant.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.encrypted.contains_key(&tenant)
    }

    /// Remove a tenant's key (keyless customers withdraw theirs).
    pub fn remove(&mut self, tenant: TenantId) -> bool {
        self.encrypted.remove(&tenant).is_some()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.encrypted.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.encrypted.is_empty()
    }

    /// Decrypt the tenant's key *transiently* and hand it to `f`. The
    /// plaintext buffer is zeroed before return — the "no intermediate
    /// plaintext private key kept" rule.
    pub fn with_key<R>(&self, tenant: TenantId, f: impl FnOnce(u64) -> R) -> Option<R> {
        let (nonce, ct) = self.encrypted.get(&tenant)?;
        let mut pt = ct.clone();
        self.master.apply(0, nonce, &mut pt);
        let mut material = [0u8; 8];
        material.copy_from_slice(&pt[..8]);
        let result = f(u64::from_le_bytes(material));
        // Wipe transient plaintext.
        pt.iter_mut().for_each(|b| *b = 0);
        material.iter_mut().for_each(|b| *b = 0);
        Some(result)
    }

    /// Raw stored bytes for a tenant — used by tests to prove at-rest
    /// encryption (the ciphertext must not contain the key material).
    pub fn raw_stored_bytes(&self, tenant: TenantId) -> Option<&[u8]> {
        self.encrypted.get(&tenant).map(|(_, ct)| ct.as_slice())
    }
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyStore {{ tenants: {}, contents: <sealed> }}", self.encrypted.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_use_round_trip() {
        let mut ks = KeyStore::new(0xFEED);
        ks.store(TenantId(1), 0xAABB_CCDD_1122_3344);
        let got = ks.with_key(TenantId(1), |k| k).unwrap();
        assert_eq!(got, 0xAABB_CCDD_1122_3344);
    }

    #[test]
    fn keys_are_encrypted_at_rest() {
        let secret = 0xAABB_CCDD_1122_3344u64;
        let mut ks = KeyStore::new(0xFEED);
        ks.store(TenantId(1), secret);
        let raw = ks.raw_stored_bytes(TenantId(1)).unwrap();
        assert_ne!(raw, secret.to_le_bytes().as_slice());
    }

    #[test]
    fn per_tenant_isolation() {
        let mut ks = KeyStore::new(1);
        ks.store(TenantId(1), 111);
        ks.store(TenantId(2), 222);
        assert_eq!(ks.with_key(TenantId(1), |k| k), Some(111));
        assert_eq!(ks.with_key(TenantId(2), |k| k), Some(222));
        assert_eq!(ks.with_key(TenantId(3), |k| k), None);
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn same_key_different_nonces_distinct_ciphertext() {
        // Storing the same material twice (two tenants) must not yield the
        // same ciphertext (nonce reuse would leak key equality).
        let mut ks = KeyStore::new(1);
        ks.store(TenantId(1), 42);
        ks.store(TenantId(2), 42);
        assert_ne!(
            ks.raw_stored_bytes(TenantId(1)).unwrap(),
            ks.raw_stored_bytes(TenantId(2)).unwrap()
        );
    }

    #[test]
    fn overwrite_and_remove() {
        let mut ks = KeyStore::new(1);
        ks.store(TenantId(1), 1);
        ks.store(TenantId(1), 2);
        assert_eq!(ks.with_key(TenantId(1), |k| k), Some(2));
        assert!(ks.remove(TenantId(1)));
        assert!(!ks.remove(TenantId(1)));
        assert!(ks.is_empty());
    }

    #[test]
    fn debug_never_prints_contents() {
        let mut ks = KeyStore::new(1);
        ks.store(TenantId(1), 0xDEAD_BEEF);
        let dbg = format!("{ks:?}");
        assert!(dbg.contains("sealed"));
        assert!(!dbg.contains("DEAD"));
    }
}
