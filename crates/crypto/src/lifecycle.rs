//! Certificate lifecycle: per-tenant CAs, workload certs with expiry,
//! revocation, and session-ticket resumption.
//!
//! The paper's region terminates mTLS for every pod (§4.1.3), which makes
//! certificate *churn* — issuance, expiry-driven rotation, revocation after
//! a CA compromise, and the full-handshake storms a synchronized restart
//! triggers — a first-class control-plane behaviour, not an afterthought.
//! This module is the functional substrate:
//!
//! * [`Cert`] — a workload certificate: identity bound to a tenant, a
//!   monotone serial stamped with the issuing CA generation, and a hard
//!   `not_after` expiry instant.
//! * [`TenantCa`] — the per-tenant issuing authority. Rotation bumps the
//!   CA *generation*; a compromise revokes every serial of the current
//!   generation at once (the revocation floor), while individual revocations
//!   go into a bounded list.
//! * [`TrustBundle`] — the distributable validation view a data plane
//!   (gateway) holds: tenant, CA generation, revocation floor, and the
//!   bounded individual-revocation set. This is what the rotation
//!   controller versions and the rollout controller canaries.
//! * [`SessionTicket`] / [`TicketCache`] — seeded session resumption: a
//!   completed full handshake mints a ticket; redeeming it re-derives the
//!   same session cipher *without* the asymmetric step, so the accelerator
//!   batch model and key-server RTT are only charged on cache miss or
//!   rotation. Tickets never outlive the certificate they were minted
//!   under.
//!
//! Everything here is deterministic: no wall clocks (callers pass
//! [`SimTime`]), no ambient randomness (ticket ids are derived FNV-style
//! from issuance state), and every mutable struct folds into a [`Digest`]
//! so double-run harnesses can demand bit-identical lifecycle state.

use crate::dh::SharedSecret;
use crate::mtls::MtlsError;
use canal_sim::{Digest, SimDuration, SimTime};
use std::collections::BTreeMap;

/// A workload certificate: what a [`crate::mtls::Hello`] carries instead of
/// a bare integer identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cert {
    /// Workload identity (pod/workload identity in the mesh).
    pub identity: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Issuance serial. The high 32 bits carry the issuing CA generation,
    /// the low 32 bits the per-generation issuance counter, so serials are
    /// strictly monotone across rotations and a generation-wide revocation
    /// is a single floor comparison.
    pub serial: u64,
    /// Hard expiry instant: the cert is invalid at and after this time.
    pub not_after: SimTime,
}

impl Cert {
    /// A never-expiring cert for tenant 0 — the compatibility identity used
    /// by endpoints that predate the lifecycle layer (tests, examples).
    pub fn eternal(identity: u64) -> Self {
        Cert {
            identity,
            tenant: 0,
            serial: 0,
            not_after: SimTime::MAX,
        }
    }

    /// The CA generation that issued this cert (high serial bits).
    pub fn generation(&self) -> u64 {
        self.serial >> 32
    }

    /// Expiry check against a caller-supplied clock.
    pub fn valid_at(&self, now: SimTime) -> bool {
        now < self.not_after
    }

    /// Fold the cert into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.identity)
            .write_u64(self.tenant)
            .write_u64(self.serial)
            .write_u64(self.not_after.as_nanos());
    }
}

/// Per-tenant certificate authority: issues [`Cert`]s, rotates generations,
/// and tracks revocation.
#[derive(Debug, Clone)]
pub struct TenantCa {
    tenant: u64,
    /// Current issuing generation (starts at 1; 0 is never valid).
    generation: u64,
    /// Per-generation issuance counter (low serial bits).
    issued_in_generation: u64,
    /// Total certs ever issued.
    issued_total: u64,
    /// Serials strictly below this floor are revoked wholesale (set by
    /// [`Self::revoke_generation`] — the CA-compromise response).
    revocation_floor: u64,
    /// Individually revoked serials at/above the floor, bounded.
    revoked: BTreeMap<u64, SimTime>,
    /// Individual revocations dropped because the list was full. The floor
    /// mechanism keeps mass revocation O(1), so eviction here only loses
    /// the *oldest* targeted revocations, and only past the cap.
    revocations_evicted: u64,
}

impl TenantCa {
    /// Individually tracked revocations (oldest evicted past this).
    pub const REVOKED_CAP: usize = 1024;

    /// A fresh CA for a tenant, at generation 1.
    pub fn new(tenant: u64) -> Self {
        TenantCa {
            tenant,
            generation: 1,
            issued_in_generation: 0,
            issued_total: 0,
            revocation_floor: 0,
            revoked: BTreeMap::new(),
            revocations_evicted: 0,
        }
    }

    /// The owning tenant.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Current issuing generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total certs issued over the CA's lifetime.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// Issue a cert for `identity`, valid for `ttl` from `now`.
    pub fn issue(&mut self, identity: u64, now: SimTime, ttl: SimDuration) -> Cert {
        let serial = (self.generation << 32) | (self.issued_in_generation & 0xFFFF_FFFF);
        self.issued_in_generation += 1;
        self.issued_total += 1;
        Cert {
            identity,
            tenant: self.tenant,
            serial,
            not_after: now + ttl,
        }
    }

    /// Rotate to the next generation. Previously issued certs stay valid
    /// until they expire (planned rotation overlaps old and new), unless
    /// [`Self::revoke_generation`] is also called (compromise response).
    pub fn rotate(&mut self) {
        self.generation += 1;
        self.issued_in_generation = 0;
    }

    /// Revoke every cert of every generation before the *current* one in a
    /// single floor move — the CA-compromise response: rotate first, then
    /// revoke everything the compromised generations signed.
    pub fn revoke_generation(&mut self) {
        self.revocation_floor = self.generation << 32;
    }

    /// Revoke one serial individually. Bounded: past [`Self::REVOKED_CAP`]
    /// the oldest entry is evicted (and counted).
    pub fn revoke(&mut self, serial: u64, now: SimTime) {
        if serial < self.revocation_floor {
            return; // already covered by the floor
        }
        self.revoked.insert(serial, now);
        while self.revoked.len() > Self::REVOKED_CAP {
            self.revoked.pop_first();
            self.revocations_evicted += 1;
        }
    }

    /// Whether a serial is revoked (floor or individually).
    pub fn is_revoked(&self, serial: u64) -> bool {
        serial < self.revocation_floor || self.revoked.contains_key(&serial)
    }

    /// Individual revocations evicted past the cap.
    pub fn revocations_evicted(&self) -> u64 {
        self.revocations_evicted
    }

    /// Snapshot the distributable validation view at `version`.
    pub fn trust_bundle(&self, version: u64) -> TrustBundle {
        TrustBundle {
            version,
            tenant: self.tenant,
            generation: self.generation,
            revocation_floor: self.revocation_floor,
            revoked: self.revoked.keys().copied().collect(),
        }
    }

    /// Fold the CA state into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.tenant)
            .write_u64(self.generation)
            .write_u64(self.issued_in_generation)
            .write_u64(self.issued_total)
            .write_u64(self.revocation_floor)
            .write_u64(self.revocations_evicted)
            .write_u64(self.revoked.len() as u64);
        for (&s, &at) in &self.revoked {
            d.write_u64(s).write_u64(at.as_nanos());
        }
    }
}

/// The validation view a data plane holds: everything needed to decide
/// whether a presented [`Cert`] is acceptable *right now*, without talking
/// to the CA. Distributed as a versioned artifact through the rollout
/// controller (see `canal_gateway::certs` / `canal_control::certrotation`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustBundle {
    /// Distribution version (monotone, from the rotation controller).
    pub version: u64,
    /// Tenant this bundle validates for.
    pub tenant: u64,
    /// CA generation the bundle was cut from.
    pub generation: u64,
    /// Serials below this are revoked wholesale.
    pub revocation_floor: u64,
    /// Individually revoked serials (bounded at the CA, so bounded here).
    pub revoked: Vec<u64>,
}

impl TrustBundle {
    /// Validate a presented cert against this bundle at `now`.
    pub fn permits(&self, cert: &Cert, now: SimTime) -> Result<(), MtlsError> {
        if cert.tenant != self.tenant {
            return Err(MtlsError::AuthenticationFailed);
        }
        if !cert.valid_at(now) {
            return Err(MtlsError::CertificateExpired);
        }
        if cert.serial < self.revocation_floor || self.revoked.binary_search(&cert.serial).is_ok()
        {
            return Err(MtlsError::CertificateRevoked);
        }
        Ok(())
    }

    /// Fold the bundle into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.version)
            .write_u64(self.tenant)
            .write_u64(self.generation)
            .write_u64(self.revocation_floor)
            .write_u64(self.revoked.len() as u64);
        for &s in &self.revoked {
            d.write_u64(s);
        }
    }
}

/// A resumption ticket minted after a completed full handshake. Redeeming
/// it re-installs the same session secret without the asymmetric step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// Opaque ticket id (deterministically derived at mint time).
    pub id: u64,
    /// The session secret the ticket resumes.
    pub secret: SharedSecret,
    /// Identity of the peer the original session authenticated.
    pub peer_identity: u64,
    /// Tenant the session belonged to.
    pub tenant: u64,
    /// Serial of the cert the session was established under. A bundle that
    /// revokes this serial also kills the ticket.
    pub cert_serial: u64,
    /// Expiry: `min(minted + ticket_lifetime, cert.not_after)` — a ticket
    /// never outlives the certificate it was minted under.
    pub expires: SimTime,
}

impl SessionTicket {
    /// Fold the ticket into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.id)
            .write_u64(self.secret.0)
            .write_u64(self.peer_identity)
            .write_u64(self.tenant)
            .write_u64(self.cert_serial)
            .write_u64(self.expires.as_nanos());
    }
}

/// Why a ticket could not be redeemed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketMiss {
    /// No ticket under that id (never minted, evicted, or already used).
    Unknown,
    /// The ticket (or the cert it was minted under) expired.
    Expired,
}

/// Bounded cache of resumption tickets, keyed by ticket id.
///
/// Capacity-bounded with oldest-first eviction (BTreeMap order over the
/// monotone mint counter embedded in the id), an eviction counter, and an
/// expiry sweep — the three bounded-state disciplines.
#[derive(Debug, Clone)]
pub struct TicketCache {
    tickets: BTreeMap<u64, SessionTicket>,
    minted: u64,
    redeemed: u64,
    misses: u64,
    evicted: u64,
    expired_swept: u64,
}

impl Default for TicketCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TicketCache {
    /// Maximum live tickets; oldest are evicted past this.
    pub const CAP: usize = 4096;

    /// An empty cache.
    pub fn new() -> Self {
        TicketCache {
            tickets: BTreeMap::new(),
            minted: 0,
            redeemed: 0,
            misses: 0,
            evicted: 0,
            expired_swept: 0,
        }
    }

    /// Mint a ticket for a session established under `cert` with `secret`,
    /// talking to `peer_identity`. The ticket id is derived FNV-style from
    /// the mint counter and session parameters (deterministic, no ambient
    /// randomness); its expiry is clamped to `cert.not_after`.
    pub fn mint(
        &mut self,
        cert: &Cert,
        peer_identity: u64,
        secret: SharedSecret,
        now: SimTime,
        lifetime: SimDuration,
    ) -> SessionTicket {
        // High bits: monotone mint counter (gives BTreeMap oldest-first
        // order); low bits: an FNV mix of the session parameters.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [cert.identity, cert.tenant, cert.serial, peer_identity, secret.0] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let id = (self.minted << 32) | (h & 0xFFFF_FFFF);
        self.minted += 1;
        let expires = (now + lifetime).min(cert.not_after);
        let ticket = SessionTicket {
            id,
            secret,
            peer_identity,
            tenant: cert.tenant,
            cert_serial: cert.serial,
            expires,
        };
        self.tickets.insert(id, ticket);
        while self.tickets.len() > Self::CAP {
            self.tickets.pop_first();
            self.evicted += 1;
        }
        ticket
    }

    /// Redeem (and consume) a ticket at `now`. Single-use: a redeemed id is
    /// gone, so a replayed resumption attempt misses.
    pub fn redeem(&mut self, id: u64, now: SimTime) -> Result<SessionTicket, TicketMiss> {
        match self.tickets.remove(&id) {
            None => {
                self.misses += 1;
                Err(TicketMiss::Unknown)
            }
            Some(t) if now >= t.expires => {
                self.misses += 1;
                self.expired_swept += 1;
                Err(TicketMiss::Expired)
            }
            Some(t) => {
                self.redeemed += 1;
                Ok(t)
            }
        }
    }

    /// Drop every ticket that has expired by `now`, or whose cert serial a
    /// new trust bundle revokes. Returns how many were dropped. Called on
    /// bundle commit: rotation + revocation invalidate resumption state.
    pub fn sweep(&mut self, now: SimTime, bundle: Option<&TrustBundle>) -> usize {
        let before = self.tickets.len();
        self.tickets.retain(|_, t| {
            if now >= t.expires {
                return false;
            }
            if let Some(b) = bundle {
                if t.tenant == b.tenant
                    && (t.cert_serial < b.revocation_floor
                        || b.revoked.binary_search(&t.cert_serial).is_ok())
                {
                    return false;
                }
            }
            true
        });
        let dropped = before - self.tickets.len();
        self.expired_swept += dropped as u64;
        dropped
    }

    /// Live tickets.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Tickets minted over the cache's lifetime.
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Successful redemptions.
    pub fn redeemed(&self) -> u64 {
        self.redeemed
    }

    /// Failed redemptions (unknown/evicted/expired ids) — each one is a
    /// full handshake the data path must fall back to.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Tickets evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Fold the cache state into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.minted)
            .write_u64(self.redeemed)
            .write_u64(self.misses)
            .write_u64(self.evicted)
            .write_u64(self.expired_swept)
            .write_u64(self.tickets.len() as u64);
        for t in self.tickets.values() {
            t.fold_digest(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_rotate_and_floor_revocation() {
        let mut ca = TenantCa::new(7);
        let now = SimTime::from_secs(10);
        let ttl = SimDuration::from_secs(3600);
        let a = ca.issue(100, now, ttl);
        let b = ca.issue(101, now, ttl);
        assert_eq!(a.tenant, 7);
        assert_eq!(a.generation(), 1);
        assert!(b.serial > a.serial, "serials are monotone");
        assert!(!ca.is_revoked(a.serial));

        ca.rotate();
        let c = ca.issue(100, now, ttl);
        assert_eq!(c.generation(), 2);
        assert!(c.serial > b.serial, "monotone across rotation");
        // Planned rotation leaves the old generation valid...
        assert!(!ca.is_revoked(a.serial));
        // ...compromise response revokes it wholesale.
        ca.revoke_generation();
        assert!(ca.is_revoked(a.serial));
        assert!(ca.is_revoked(b.serial));
        assert!(!ca.is_revoked(c.serial));
    }

    #[test]
    fn individual_revocation_is_bounded() {
        let mut ca = TenantCa::new(1);
        let now = SimTime::from_secs(1);
        let floor_probe = 1u64 << 32; // first serial of generation 1
        for i in 0..(TenantCa::REVOKED_CAP as u64 + 10) {
            ca.revoke((1 << 32) | (i + 1), now);
        }
        assert_eq!(ca.revocations_evicted(), 10);
        assert!(!ca.is_revoked(floor_probe));
        // Below-floor serials are never stored individually.
        ca.revoke_generation(); // floor still 1<<32 (generation 1)
        ca.rotate();
        ca.revoke_generation(); // now floor = 2<<32
        ca.revoke(5, now);
        assert!(ca.is_revoked(5), "covered by the floor");
    }

    #[test]
    fn trust_bundle_validates_expiry_and_revocation() {
        let mut ca = TenantCa::new(3);
        let now = SimTime::from_secs(100);
        let cert = ca.issue(42, now, SimDuration::from_secs(60));
        let bundle = ca.trust_bundle(1);
        assert_eq!(bundle.permits(&cert, now), Ok(()));
        assert_eq!(
            bundle.permits(&cert, now + SimDuration::from_secs(60)),
            Err(MtlsError::CertificateExpired)
        );
        let mut other = cert;
        other.tenant = 9;
        assert_eq!(bundle.permits(&other, now), Err(MtlsError::AuthenticationFailed));
        ca.revoke(cert.serial, now);
        let bundle2 = ca.trust_bundle(2);
        assert_eq!(bundle2.permits(&cert, now), Err(MtlsError::CertificateRevoked));
    }

    #[test]
    fn tickets_never_outlive_the_cert() {
        let mut ca = TenantCa::new(2);
        let now = SimTime::from_secs(50);
        let cert = ca.issue(7, now, SimDuration::from_secs(30));
        let mut cache = TicketCache::new();
        let t = cache.mint(&cert, 99, SharedSecret(0xAB), now, SimDuration::from_secs(3600));
        assert_eq!(t.expires, cert.not_after, "clamped to cert expiry");
        assert!(cache.redeem(t.id, cert.not_after).is_err());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn tickets_are_single_use_and_bounded() {
        let mut cache = TicketCache::new();
        let cert = Cert::eternal(1);
        let now = SimTime::from_secs(1);
        let t = cache.mint(&cert, 2, SharedSecret(7), now, SimDuration::from_secs(10));
        assert!(cache.redeem(t.id, now).is_ok());
        assert_eq!(cache.redeem(t.id, now), Err(TicketMiss::Unknown), "single use");
        for _ in 0..(TicketCache::CAP + 5) {
            cache.mint(&cert, 2, SharedSecret(7), now, SimDuration::from_secs(10));
        }
        assert_eq!(cache.len(), TicketCache::CAP);
        assert_eq!(cache.evicted(), 5);
    }

    #[test]
    fn sweep_drops_revoked_and_expired() {
        let mut ca = TenantCa::new(4);
        let now = SimTime::from_secs(10);
        let cert = ca.issue(1, now, SimDuration::from_secs(100));
        let mut cache = TicketCache::new();
        cache.mint(&cert, 2, SharedSecret(1), now, SimDuration::from_secs(50));
        ca.rotate();
        ca.revoke_generation();
        let bundle = ca.trust_bundle(2);
        assert_eq!(cache.sweep(now, Some(&bundle)), 1, "revoked serial swept");
        let cert2 = ca.issue(1, now, SimDuration::from_secs(100));
        cache.mint(&cert2, 2, SharedSecret(2), now, SimDuration::from_secs(5));
        assert_eq!(cache.sweep(now + SimDuration::from_secs(6), None), 1, "expired swept");
        assert!(cache.is_empty());
    }

    #[test]
    fn digests_are_deterministic() {
        let build = || {
            let mut ca = TenantCa::new(5);
            let now = SimTime::from_secs(1);
            let cert = ca.issue(9, now, SimDuration::from_secs(10));
            let mut cache = TicketCache::new();
            cache.mint(&cert, 3, SharedSecret(0xC0FFEE), now, SimDuration::from_secs(5));
            let mut d = Digest::new();
            ca.fold_digest(&mut d);
            cache.fold_digest(&mut d);
            ca.trust_bundle(1).fold_digest(&mut d);
            d.value()
        };
        assert_eq!(build(), build());
    }
}
