//! Diffie-Hellman key agreement over a 64-bit safe prime.
//!
//! This is the *asymmetric crypto workload* of the reproduction: the modular
//! exponentiation that the paper offloads to QAT/AVX-512 or the remote key
//! server. It is a real, correct DH (both sides derive the same secret) with
//! a deliberately small modulus — the experiments exercise its *cost
//! structure* (batched, offloaded, remote), not its cryptographic strength.

/// Public group parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhParams {
    /// Safe prime modulus.
    pub p: u64,
    /// Generator.
    pub g: u64,
}

impl DhParams {
    /// Default parameters: p = 2q+1 with q prime (a 61-bit safe prime),
    /// g = 2.
    pub const DEFAULT: DhParams = DhParams {
        // 0x1FFFFFFFFFFFFFFF-adjacent safe prime: p = 2*q + 1.
        p: 2_305_843_009_213_693_951, // 2^61 - 1 (Mersenne prime), used as modulus
        g: 3,
    };
}

/// Modular multiplication without overflow (via u128).
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring — the expensive asymmetric operation.
pub fn mod_exp(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 1);
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exp >>= 1;
    }
    acc
}

/// A private/public DH key pair.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct DhKeyPair {
    params: DhParams,
    private: u64,
    /// The shareable public value `g^private mod p`.
    pub public: u64,
}

/// The agreed shared secret (feeds [`crate::ChaCha20::from_shared_secret`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSecret(pub u64);

impl DhKeyPair {
    /// Generate a key pair from private-key material (caller supplies
    /// randomness so the simulation stays seeded).
    pub fn generate(params: DhParams, private_material: u64) -> Self {
        // Keep the exponent in [2, p-2].
        let private = 2 + private_material % (params.p - 3);
        let public = mod_exp(params.g, private, params.p);
        DhKeyPair {
            params,
            private,
            public,
        }
    }

    /// Complete the agreement with the peer's public value.
    pub fn agree(&self, peer_public: u64) -> SharedSecret {
        SharedSecret(mod_exp(peer_public, self.private, self.params.p))
    }

    /// The group parameters this pair uses.
    pub fn params(&self) -> DhParams {
        self.params
    }
}

impl std::fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        write!(f, "DhKeyPair {{ public: {}, private: <redacted> }}", self.public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_exp_basics() {
        assert_eq!(mod_exp(2, 10, 1_000_000), 1024);
        assert_eq!(mod_exp(5, 0, 7), 1);
        assert_eq!(mod_exp(7, 1, 13), 7);
        // Fermat: a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = DhParams::DEFAULT.p;
        assert_eq!(mod_exp(12345, p - 1, p), 1);
    }

    #[test]
    fn both_sides_derive_same_secret() {
        let params = DhParams::DEFAULT;
        let alice = DhKeyPair::generate(params, 0xAAAA_BBBB_CCCC_DDDD);
        let bob = DhKeyPair::generate(params, 0x1111_2222_3333_4444);
        let s1 = alice.agree(bob.public);
        let s2 = bob.agree(alice.public);
        assert_eq!(s1, s2);
        assert_ne!(s1.0, 0);
    }

    #[test]
    fn different_peers_different_secrets() {
        let params = DhParams::DEFAULT;
        let alice = DhKeyPair::generate(params, 1);
        let bob = DhKeyPair::generate(params, 2);
        let carol = DhKeyPair::generate(params, 3);
        assert_ne!(alice.agree(bob.public), alice.agree(carol.public));
    }

    #[test]
    fn public_value_hides_private() {
        // Not a security proof — just that the public value is a nontrivial
        // transform and deterministic.
        let params = DhParams::DEFAULT;
        let k1 = DhKeyPair::generate(params, 99);
        let k2 = DhKeyPair::generate(params, 99);
        assert_eq!(k1.public, k2.public);
        let k3 = DhKeyPair::generate(params, 100);
        assert_ne!(k1.public, k3.public);
        assert!(!format!("{k1:?}").contains(&format!("{}", 2 + 99u64 % (params.p - 3))));
    }

    #[test]
    fn agreement_works_across_many_random_pairs() {
        let params = DhParams::DEFAULT;
        let mut seed = 0x9E37_79B9u64;
        for _ in 0..50 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = DhKeyPair::generate(params, seed);
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = DhKeyPair::generate(params, seed);
            assert_eq!(a.agree(b.public), b.agree(a.public));
        }
    }
}
