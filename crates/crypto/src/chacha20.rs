//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used for all symmetric crypto in the reproduction: mTLS record
//! protection, the pre-established secure channel to the key server, and
//! the at-rest encryption of stored private keys. Implemented from the RFC
//! and validated against its test vector.

/// ChaCha20 cipher instance bound to a key.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Create a cipher from a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 { key: k }
    }

    /// Derive a key from a 64-bit shared secret (the DH output) by
    /// repeating-and-mixing — a stand-in for HKDF adequate for the
    /// simulation's purposes.
    pub fn from_shared_secret(secret: u64) -> Self {
        let mut key = [0u8; 32];
        let mut x = secret | 1;
        for chunk in key.chunks_exact_mut(8) {
            // splitmix64 expansion
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::new(&key)
    }

    /// The ChaCha20 block function: 64 bytes of keystream for
    /// (counter, nonce).
    pub fn block(&self, counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let initial = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` with the keystream starting at block `initial_counter`.
    /// Encryption and decryption are the same operation.
    pub fn apply(&self, initial_counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(initial_counter.wrapping_add(block_idx as u32), nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: encrypt a copy of `data`.
    pub fn encrypt(&self, counter: u32, nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(counter, nonce, &mut out);
        out
    }
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("ChaCha20 {{ key: <redacted> }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key).block(1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 8439 §2.4.2 encryption vector (first 16 bytes checked).
    #[test]
    fn rfc8439_encrypt_vector_prefix() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::new(&key).encrypt(1, &nonce, plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ct[..16], &expected_prefix);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let cipher = ChaCha20::from_shared_secret(0xDEAD_BEEF_1234_5678);
        let nonce = [7u8; 12];
        let msg = b"the private key never leaves the key server".to_vec();
        let ct = cipher.encrypt(0, &nonce, &msg);
        assert_ne!(ct, msg);
        let pt = cipher.encrypt(0, &nonce, &ct); // XOR is its own inverse
        assert_eq!(pt, msg);
    }

    #[test]
    fn different_secrets_different_keystreams() {
        let a = ChaCha20::from_shared_secret(1);
        let b = ChaCha20::from_shared_secret(2);
        let nonce = [0u8; 12];
        assert_ne!(a.block(0, &nonce), b.block(0, &nonce));
    }

    #[test]
    fn multiblock_messages() {
        let cipher = ChaCha20::from_shared_secret(42);
        let nonce = [1u8; 12];
        let msg = vec![0xA5u8; 1000]; // spans 16 blocks
        let ct = cipher.encrypt(5, &nonce, &msg);
        let rt = cipher.encrypt(5, &nonce, &ct);
        assert_eq!(rt, msg);
        // Wrong starting counter fails to decrypt.
        let bad = cipher.encrypt(6, &nonce, &ct);
        assert_ne!(bad, msg);
    }

    #[test]
    fn debug_redacts_key() {
        let c = ChaCha20::from_shared_secret(1);
        assert!(format!("{c:?}").contains("redacted"));
    }
}
