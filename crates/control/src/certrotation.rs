//! Certificate rotation waves: expiry-driven bundle cutting, distributed
//! through the [`crate::rollout`] machinery.
//!
//! §4.1.3 terminates every tenant's mTLS at the gateway, which turns trust
//! state — CA generation, revocation floor, cert expiry horizon — into
//! distributed control-plane state with the §2.2 outage potential of a
//! route table. A region rotates on the order of 100k workload certs per
//! tenant wave; pushing a bad bundle to the whole fleet at once is the
//! cert-shaped version of the bad-config outage. The
//! [`CertRotationController`] therefore never pushes a bundle directly:
//!
//! 1. **Schedule** — each registered tenant carries an expiry horizon; when
//!    `now + lead_time` crosses it (or the tenant's CA is flagged
//!    compromised), the controller cuts the next-generation bundle.
//! 2. **Validate** — the cut bundle runs the same content validation the
//!    gateways apply ([`ActiveCertBundle::validate`]); a bundle that fails
//!    here is never pushed anywhere (blast radius 0).
//! 3. **Distribute** — the bundle rides a [`RolloutController`] rollout:
//!    canary wave, NACK-gated exponential promotion, automatic rollback to
//!    the last *converged* bundle. A gateway that rejects the bundle
//!    (mismatched tenant, clock-skewed `not_after`, regressed generation)
//!    NACKs, and the fleet rolls back while every gateway keeps serving
//!    its running bundle (fail-static).
//! 4. **Observe** — a converged rotation advances the tenant's generation
//!    and expiry horizon; a rolled-back one leaves the tenant on its old
//!    bundle and retries after a backoff, so a persistently bad CA cannot
//!    melt the fleet by retrying in a tight loop.
//!
//! Compromise response ([`Self::flag_compromise`]) is the same wave with
//! two differences: it ignores the expiry schedule (rotates now) and the
//! cut bundle raises the revocation floor over every prior generation, so
//! stolen certs die fleet-wide the moment the wave converges.
//!
//! Everything runs on simulated time and folds into a [`Digest`]; double
//! runs are bit-identical.

use crate::rollout::{HealthSample, RolloutAction, RolloutConfig, RolloutController, RolloutResult};
use crate::versioned::TargetId;
use canal_gateway::certs::{ActiveCertBundle, CertBundleSpec, TrustBundle};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Most tenants a controller will track; registration beyond the cap is
/// refused (the roster is control-plane state, not request state).
pub const MAX_TENANTS: usize = 4096;

/// Most cut bundles retained for staging/rollback lookups; older bundles
/// that are no one's rollback target are evicted oldest-first.
pub const BUNDLE_CAP: usize = 256;

/// Rotation audit records kept (a bounded ring; older records evict).
pub const HISTORY_CAP: usize = 128;

/// Scheduling knobs for rotation waves.
#[derive(Debug, Clone, Copy)]
pub struct RotationConfig {
    /// Validity horizon of certs issued under a freshly cut bundle.
    pub cert_ttl: SimDuration,
    /// Rotation starts this long before the tenant's bundle expires.
    pub lead_time: SimDuration,
    /// A tenant whose rotation rolled back waits this long before the
    /// controller cuts another bundle for it.
    pub retry_backoff: SimDuration,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            cert_ttl: SimDuration::from_secs(24 * 3600),
            lead_time: SimDuration::from_secs(3600),
            retry_backoff: SimDuration::from_secs(300),
        }
    }
}

/// Per-tenant certificate state the scheduler works from.
#[derive(Debug, Clone, Copy)]
struct TenantCertState {
    /// CA generation currently converged on the fleet.
    generation: u64,
    /// Revocation floor currently converged (serials below it are dead).
    revocation_floor: u64,
    /// When the converged bundle's certs expire.
    expiry: SimTime,
    /// Next rotation for this tenant must revoke all prior generations.
    compromised: bool,
    /// Earliest instant a new rotation may be cut (rollback backoff).
    retry_after: SimTime,
    /// Converged rotations for this tenant.
    rotations: u64,
}

/// Audit record for one driven rotation wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationRecord {
    /// The rotating tenant.
    pub tenant: u64,
    /// Distribution version the bundle rode (0 if validation refused it).
    pub version: u64,
    /// CA generation the bundle carried.
    pub generation: u64,
    /// Whether the bundle revoked all prior generations (compromise).
    pub revoked_prior: bool,
    /// When the wave began.
    pub started_at: SimTime,
    /// When it reached a terminal phase.
    pub ended_at: SimTime,
    /// How the underlying rollout ended.
    pub result: RolloutResult,
}

/// The in-flight rotation (at most one; the rollout controller is serial).
#[derive(Debug, Clone, Copy)]
struct InFlightRotation {
    tenant: u64,
    version: u64,
    generation: u64,
    revoked_prior: bool,
    expiry: SimTime,
    revocation_floor: u64,
}

/// Drives expiry-scheduled (and compromise-forced) cert rotation waves
/// through an owned [`RolloutController`]; see the module docs for the
/// full lifecycle.
#[derive(Debug)]
pub struct CertRotationController {
    cfg: RotationConfig,
    rollout: RolloutController,
    tenants: BTreeMap<u64, TenantCertState>,
    /// Cut bundles by distribution version — what the harness stages on a
    /// gateway when applying a `Push`/`Rollback` action.
    bundles: BTreeMap<u64, CertBundleSpec>,
    bundles_evicted: u64,
    /// Last *converged* bundle version per tenant — the rollback target;
    /// protected from bundle eviction.
    converged_versions: BTreeMap<u64, u64>,
    in_flight: Option<InFlightRotation>,
    history: VecDeque<RotationRecord>,
    history_evicted: u64,
    /// Rollout outcomes already mapped back into tenant state.
    observed_outcomes: usize,
    rotations_started: u64,
    rotations_converged: u64,
    rotations_rolled_back: u64,
}

impl CertRotationController {
    /// Controller over an empty fleet and tenant roster.
    pub fn new(cfg: RotationConfig, rollout_cfg: RolloutConfig, debounce: SimDuration) -> Self {
        CertRotationController {
            cfg,
            rollout: RolloutController::new(rollout_cfg, debounce)
                .with_kind(crate::journal::RolloutKind::Cert),
            tenants: BTreeMap::new(),
            bundles: BTreeMap::new(),
            bundles_evicted: 0,
            converged_versions: BTreeMap::new(),
            in_flight: None,
            history: VecDeque::new(),
            history_evicted: 0,
            observed_outcomes: 0,
            rotations_started: 0,
            rotations_converged: 0,
            rotations_rolled_back: 0,
        }
    }

    /// Register a data-plane target (a gateway) with the owned rollout
    /// controller.
    pub fn add_target(&mut self, target: TargetId) {
        self.rollout.add_target(target);
    }

    /// Register a tenant with its currently-converged CA generation and
    /// cert expiry horizon. Returns false (and registers nothing) past
    /// [`MAX_TENANTS`] or if the generation is zero.
    pub fn register_tenant(&mut self, tenant: u64, generation: u64, expiry: SimTime) -> bool {
        if self.tenants.len() >= MAX_TENANTS && !self.tenants.contains_key(&tenant) {
            return false;
        }
        if generation == 0 {
            return false;
        }
        self.tenants.insert(
            tenant,
            TenantCertState {
                generation,
                revocation_floor: generation << 32,
                expiry,
                compromised: false,
                retry_after: SimTime::ZERO,
                rotations: 0,
            },
        );
        true
    }

    /// Flag a tenant's CA as compromised: the next tick cuts a rotation
    /// regardless of the expiry schedule, and the cut bundle raises the
    /// revocation floor over every prior generation.
    pub fn flag_compromise(&mut self, tenant: u64) -> bool {
        match self.tenants.get_mut(&tenant) {
            Some(st) => {
                st.compromised = true;
                true
            }
            None => false,
        }
    }

    /// An exposed gateway committed `version` for the in-flight bundle.
    pub fn ack(&mut self, target: TargetId, version: u64, now: SimTime) -> bool {
        self.rollout.ack(target, version, now)
    }

    /// An exposed gateway rejected `version` (its [`ActiveCertBundle`]
    /// refused to commit). The next tick rolls the wave back.
    pub fn nack(&mut self, target: TargetId, version: u64) -> bool {
        self.rollout.nack(target, version)
    }

    /// Advance the controller at `now`.
    ///
    /// * `health` feeds the rollout promotion gate (and anchors the
    ///   baseline of a wave begun this tick).
    /// * `clock_skew` models a skewed issuance clock at the controller
    ///   (the `cert-expiry-skew` fault): a cut bundle's horizon shrinks by
    ///   the skew, to a floor just above `now` — it passes the
    ///   controller-side check but is expired by the time a gateway's
    ///   clock sees it, so the canary NACKs and the wave rolls back.
    /// * `rng` shuffles the rollout push order (canary selection).
    ///
    /// Returns the data-plane actions to apply; resolve each action's
    /// version to its bundle via [`Self::bundle`].
    pub fn tick(
        &mut self,
        now: SimTime,
        health: Option<HealthSample>,
        clock_skew: Option<SimDuration>,
        rng: &mut SimRng,
    ) -> Vec<RolloutAction> {
        let mut actions = self.rollout.tick(now, health);
        // The rollout controller's last-known-good is global across driven
        // versions, but cert bundles are per-tenant: a rollback must
        // restore the *rotating tenant's* last converged bundle (0 when it
        // never converged one — gateways then just keep their running
        // bundle, fail-static).
        if let Some(fl) = &self.in_flight {
            for a in &mut actions {
                if let RolloutAction::Rollback { to, .. } = a {
                    *to = self.converged_versions.get(&fl.tenant).copied().unwrap_or(0);
                }
            }
        }
        self.observe_outcomes(now);
        if self.in_flight.is_none() {
            if let Some(tenant) = self.next_due(now) {
                actions.extend(self.cut_and_begin(tenant, now, health, clock_skew, rng));
            }
        }
        actions
    }

    /// The earliest-expiring tenant due for rotation: inside its lead
    /// window or compromised, and past its rollback backoff.
    fn next_due(&self, now: SimTime) -> Option<u64> {
        let mut due: Option<(SimTime, u64)> = None;
        for (&tenant, st) in &self.tenants {
            if now < st.retry_after {
                continue;
            }
            let horizon = now + self.cfg.lead_time;
            if !st.compromised && horizon < st.expiry {
                continue;
            }
            // Compromised tenants sort ahead of schedule-driven ones.
            let key = if st.compromised { SimTime::ZERO } else { st.expiry };
            if due.is_none_or(|(best, _)| key < best) {
                due = Some((key, tenant));
            }
        }
        due.map(|(_, t)| t)
    }

    /// Cut the next-generation bundle for `tenant` and begin its rollout.
    fn cut_and_begin(
        &mut self,
        tenant: u64,
        now: SimTime,
        health: Option<HealthSample>,
        clock_skew: Option<SimDuration>,
        rng: &mut SimRng,
    ) -> Vec<RolloutAction> {
        let st = self.tenants[&tenant];
        let generation = st.generation + 1;
        let revoked_prior = st.compromised;
        let revocation_floor = if revoked_prior {
            generation << 32
        } else {
            st.revocation_floor
        };
        let ttl = match clock_skew {
            Some(skew) => {
                let shrunk = self.cfg.cert_ttl.saturating_sub(skew);
                if shrunk == SimDuration::ZERO {
                    SimDuration::from_nanos(1)
                } else {
                    shrunk
                }
            }
            None => self.cfg.cert_ttl,
        };
        let mut spec = CertBundleSpec {
            trust: TrustBundle {
                version: 0, // patched once the rollout allocates one
                tenant,
                generation,
                revocation_floor,
                revoked: Vec::new(),
            },
            issued_at: now,
            not_after: now + ttl,
        };
        let valid = ActiveCertBundle::validate(&spec, now, tenant, st.generation).is_ok();
        let baseline = health.unwrap_or(HealthSample::HEALTHY);
        let actions = self.rollout.begin(now, valid, baseline, rng);
        self.rotations_started += 1;
        match actions.first() {
            Some(RolloutAction::Push { version, .. }) => {
                spec.trust.version = *version;
                self.in_flight = Some(InFlightRotation {
                    tenant,
                    version: *version,
                    generation,
                    revoked_prior,
                    expiry: spec.not_after,
                    revocation_floor,
                });
                self.retain_bundle(*version, spec);
            }
            _ => {
                // Refused controller-side (FailedValidation, blast radius
                // 0) — record it and back the tenant off.
                self.observe_outcomes(now);
            }
        }
        actions
    }

    /// Retain a cut bundle for staging/rollback lookups, evicting the
    /// oldest unprotected bundle past [`BUNDLE_CAP`].
    fn retain_bundle(&mut self, version: u64, spec: CertBundleSpec) {
        self.bundles.insert(version, spec);
        while self.bundles.len() > BUNDLE_CAP {
            let victim = self
                .bundles
                .keys()
                .find(|v| !self.converged_versions.values().any(|cv| cv == *v))
                .copied();
            match victim {
                Some(v) => {
                    self.bundles.remove(&v);
                    self.bundles_evicted += 1;
                }
                None => break,
            }
        }
    }

    /// Map freshly-terminal rollout outcomes back into tenant state.
    /// `observed_outcomes` counts lifetime outcomes, so the index into the
    /// bounded ring is offset by what the ring has evicted.
    fn observe_outcomes(&mut self, _now: SimTime) {
        let evicted = self.rollout.outcomes_evicted() as usize;
        self.observed_outcomes = self.observed_outcomes.max(evicted);
        while self.observed_outcomes < evicted + self.rollout.outcomes().len() {
            let outcome = self.rollout.outcomes()[self.observed_outcomes - evicted];
            self.observed_outcomes += 1;
            let Some(fl) = self.in_flight.take() else {
                // A FailedValidation begin never set in_flight; attribute
                // the outcome to the tenant we just tried to rotate via
                // the most recent cut. Tenant state: back off.
                self.record_failed_validation(outcome.version, outcome.ended_at);
                continue;
            };
            if outcome.version != fl.version {
                // Outcome for an older rollout (shouldn't happen with the
                // serial rollout controller); put the flight back.
                self.in_flight = Some(fl);
                continue;
            }
            let record = RotationRecord {
                tenant: fl.tenant,
                version: fl.version,
                generation: fl.generation,
                revoked_prior: fl.revoked_prior,
                started_at: outcome.started_at,
                ended_at: outcome.ended_at,
                result: outcome.result,
            };
            if let Some(st) = self.tenants.get_mut(&fl.tenant) {
                match outcome.result {
                    RolloutResult::Converged => {
                        st.generation = fl.generation;
                        st.revocation_floor = fl.revocation_floor;
                        st.expiry = fl.expiry;
                        st.compromised = false;
                        st.rotations += 1;
                        self.converged_versions.insert(fl.tenant, fl.version);
                        self.rotations_converged += 1;
                    }
                    RolloutResult::FailedValidation | RolloutResult::RolledBack(_) => {
                        st.retry_after = outcome.ended_at + self.cfg.retry_backoff;
                        self.rotations_rolled_back += 1;
                    }
                }
            }
            self.push_record(record);
        }
    }

    /// A begin that failed controller-side validation: no flight, no
    /// bundle. The due tenant (still due) gets the backoff so the
    /// controller does not re-cut the same bad bundle every tick.
    fn record_failed_validation(&mut self, version: u64, ended_at: SimTime) {
        let Some(tenant) = self.next_due(ended_at) else {
            return;
        };
        if let Some(st) = self.tenants.get_mut(&tenant) {
            let record = RotationRecord {
                tenant,
                version,
                generation: st.generation + 1,
                revoked_prior: st.compromised,
                started_at: ended_at,
                ended_at,
                result: RolloutResult::FailedValidation,
            };
            st.retry_after = ended_at + self.cfg.retry_backoff;
            self.rotations_rolled_back += 1;
            self.push_record(record);
        }
    }

    fn push_record(&mut self, record: RotationRecord) {
        self.history.push_back(record);
        while self.history.len() > HISTORY_CAP {
            self.history.pop_front();
            self.history_evicted += 1;
        }
    }

    /// The bundle cut for `version`, if still retained — what the harness
    /// stages on a gateway for a `Push` or `Rollback` action.
    pub fn bundle(&self, version: u64) -> Option<&CertBundleSpec> {
        self.bundles.get(&version)
    }

    /// The last converged bundle version for `tenant` (its rollback
    /// target), if any rotation has converged.
    pub fn converged_version(&self, tenant: u64) -> Option<u64> {
        self.converged_versions.get(&tenant).copied()
    }

    /// The tenant currently rotating, if a wave is in flight.
    pub fn rotating_tenant(&self) -> Option<u64> {
        self.in_flight.map(|f| f.tenant)
    }

    /// The tenant's converged CA generation.
    pub fn tenant_generation(&self, tenant: u64) -> Option<u64> {
        self.tenants.get(&tenant).map(|s| s.generation)
    }

    /// The tenant's converged expiry horizon.
    pub fn tenant_expiry(&self, tenant: u64) -> Option<SimTime> {
        self.tenants.get(&tenant).map(|s| s.expiry)
    }

    /// Rotation waves begun (including controller-side refusals).
    pub fn rotations_started(&self) -> u64 {
        self.rotations_started
    }

    /// Rotation waves that converged fleet-wide.
    pub fn rotations_converged(&self) -> u64 {
        self.rotations_converged
    }

    /// Rotation waves rolled back or refused.
    pub fn rotations_rolled_back(&self) -> u64 {
        self.rotations_rolled_back
    }

    /// The rotation audit ring (newest last).
    pub fn history(&self) -> impl Iterator<Item = &RotationRecord> {
        self.history.iter()
    }

    /// The owned rollout controller (phase, exposure, audit log).
    pub fn rollout(&self) -> &RolloutController {
        &self.rollout
    }

    /// Fold the full controller state into a digest.
    pub fn fold_digest(&self, d: &mut Digest) {
        self.rollout.fold_digest(d);
        d.write_u64(self.tenants.len() as u64);
        for (tenant, st) in &self.tenants {
            d.write_u64(*tenant)
                .write_u64(st.generation)
                .write_u64(st.revocation_floor)
                .write_u64(st.expiry.as_nanos())
                .write_u64(st.compromised as u64)
                .write_u64(st.retry_after.as_nanos())
                .write_u64(st.rotations);
        }
        d.write_u64(self.bundles.len() as u64);
        for (version, spec) in &self.bundles {
            d.write_u64(*version);
            spec.fold_digest(d);
        }
        d.write_u64(self.bundles_evicted);
        for (tenant, version) in &self.converged_versions {
            d.write_u64(*tenant).write_u64(*version);
        }
        match &self.in_flight {
            None => {
                d.write_u64(0);
            }
            Some(fl) => {
                d.write_u64(1)
                    .write_u64(fl.tenant)
                    .write_u64(fl.version)
                    .write_u64(fl.generation)
                    .write_u64(fl.revoked_prior as u64)
                    .write_u64(fl.expiry.as_nanos())
                    .write_u64(fl.revocation_floor);
            }
        }
        d.write_u64(self.history.len() as u64);
        for r in &self.history {
            d.write_u64(r.tenant)
                .write_u64(r.version)
                .write_u64(r.generation)
                .write_u64(r.started_at.as_nanos())
                .write_u64(r.ended_at.as_nanos());
        }
        d.write_u64(self.history_evicted)
            .write_u64(self.observed_outcomes as u64)
            .write_u64(self.rotations_started)
            .write_u64(self.rotations_converged)
            .write_u64(self.rotations_rolled_back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::RolloutPhase;

    fn quick_rollout() -> RolloutConfig {
        RolloutConfig {
            canary_size: 2,
            wave_growth: 4,
            bake_time: SimDuration::from_secs(5),
            ack_timeout: SimDuration::from_secs(5),
            ..RolloutConfig::default()
        }
    }

    fn controller(targets: u32) -> CertRotationController {
        let mut c = CertRotationController::new(
            RotationConfig {
                cert_ttl: SimDuration::from_secs(3600),
                lead_time: SimDuration::from_secs(600),
                retry_backoff: SimDuration::from_secs(120),
            },
            quick_rollout(),
            SimDuration::ZERO,
        );
        for t in 0..targets {
            c.add_target(t);
        }
        c
    }

    /// Ack every push in `actions` at `now`.
    fn ack_pushes(c: &mut CertRotationController, actions: &[RolloutAction], now: SimTime) {
        for a in actions {
            if let RolloutAction::Push { version, targets, .. } = a {
                assert!(c.bundle(*version).is_some(), "push resolves to a bundle");
                for t in targets {
                    c.ack(*t, *version, now);
                }
            }
        }
    }

    /// Drive a wave to convergence by acking every push immediately.
    fn drive_to_converged(c: &mut CertRotationController, start: SimTime, rng: &mut SimRng) {
        let mut now = start;
        for _ in 0..64 {
            let actions = c.tick(now, None, None, rng);
            ack_pushes(c, &actions, now);
            if c.rollout().phase() == RolloutPhase::Converged {
                return;
            }
            now += SimDuration::from_secs(1);
        }
        panic!("rotation did not converge");
    }

    #[test]
    fn expiry_schedules_rotation_inside_lead_window() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(7);
        c.register_tenant(1, 1, SimTime::from_secs(10_000));
        // Outside the lead window: nothing happens.
        let actions = c.tick(SimTime::from_secs(100), None, None, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(c.rotations_started(), 0);
        // Inside the lead window (expiry - lead = 9400s): a wave begins.
        let actions = c.tick(SimTime::from_secs(9_500), None, None, &mut rng);
        assert_eq!(actions.len(), 1);
        assert_eq!(c.rotating_tenant(), Some(1));
        ack_pushes(&mut c, &actions, SimTime::from_secs(9_500));
        drive_to_converged(&mut c, SimTime::from_secs(9_501), &mut rng);
        assert_eq!(c.tenant_generation(1), Some(2));
        assert_eq!(c.rotations_converged(), 1);
        // Expiry advanced: a fresh tick schedules nothing.
        let again = c.tick(SimTime::from_secs(9_560), None, None, &mut rng);
        assert!(again.is_empty());
    }

    #[test]
    fn nacked_bundle_rolls_back_and_backs_off() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(7);
        c.register_tenant(1, 1, SimTime::from_secs(1_000));
        // First rotation converges so there is a last-known-good.
        let t0 = SimTime::from_secs(500);
        let first = c.tick(t0, None, None, &mut rng);
        assert_eq!(first.len(), 1);
        ack_pushes(&mut c, &first, t0);
        drive_to_converged(&mut c, t0 + SimDuration::from_secs(1), &mut rng);
        let good = c.converged_version(1).unwrap();
        // Second rotation: the canary NACKs.
        let t1 = c.tenant_expiry(1).unwrap();
        let actions = c.tick(t1, None, None, &mut rng);
        let (version, canary) = match &actions[..] {
            [RolloutAction::Push { version, targets, .. }] => (*version, targets.clone()),
            other => panic!("expected one push, got {other:?}"),
        };
        c.nack(canary[0], version);
        let rb = c.tick(t1 + SimDuration::from_secs(1), None, None, &mut rng);
        assert!(
            rb.iter().any(|a| matches!(a, RolloutAction::Rollback { to, .. } if *to == good)),
            "rollback targets the last converged bundle: {rb:?}"
        );
        // Tenant state unchanged; retry is backed off.
        assert_eq!(c.tenant_generation(1), Some(2));
        assert_eq!(c.rotations_rolled_back(), 1);
        let quiet = c.tick(t1 + SimDuration::from_secs(2), None, None, &mut rng);
        assert!(quiet.is_empty(), "backoff holds: {quiet:?}");
        let retry = c.tick(t1 + SimDuration::from_secs(122), None, None, &mut rng);
        assert_eq!(retry.len(), 1, "rotation retries after backoff");
    }

    #[test]
    fn compromise_rotates_immediately_and_raises_floor() {
        let mut c = controller(4);
        let mut rng = SimRng::seed(3);
        c.register_tenant(9, 3, SimTime::from_secs(1_000_000));
        c.flag_compromise(9);
        let t0 = SimTime::from_secs(10);
        let actions = c.tick(t0, None, None, &mut rng);
        assert_eq!(actions.len(), 1, "compromise ignores the expiry schedule");
        let version = match &actions[0] {
            RolloutAction::Push { version, .. } => *version,
            other => panic!("expected push, got {other:?}"),
        };
        let spec = c.bundle(version).unwrap();
        assert_eq!(spec.trust.generation, 4);
        assert_eq!(spec.trust.revocation_floor, 4 << 32, "prior generations revoked");
        ack_pushes(&mut c, &actions, t0);
        drive_to_converged(&mut c, t0 + SimDuration::from_secs(1), &mut rng);
        assert_eq!(c.tenant_generation(9), Some(4));
    }

    #[test]
    fn clock_skew_poisons_the_cut_bundle_but_not_the_controller() {
        let mut c = controller(4);
        let mut rng = SimRng::seed(11);
        c.register_tenant(1, 1, SimTime::from_secs(100));
        let t0 = SimTime::from_secs(50);
        // Skew ≥ ttl: the bundle's horizon collapses to just above `now` —
        // it passes controller-side validation (and was pushed), but any
        // later gateway clock sees it expired.
        let actions = c.tick(t0, None, Some(SimDuration::from_secs(7200)), &mut rng);
        assert_eq!(actions.len(), 1, "poisoned bundle still passes the cut check");
        let version = match &actions[0] {
            RolloutAction::Push { version, .. } => *version,
            other => panic!("expected push, got {other:?}"),
        };
        let spec = c.bundle(version).unwrap();
        let later = t0 + SimDuration::from_secs(1);
        assert!(
            ActiveCertBundle::validate(spec, later, 1, 1).is_err(),
            "a gateway clock one second later rejects the bundle"
        );
    }

    #[test]
    fn double_run_digests_match() {
        let run = || {
            let mut c = controller(8);
            let mut rng = SimRng::seed(42);
            c.register_tenant(1, 1, SimTime::from_secs(700));
            c.register_tenant(2, 5, SimTime::from_secs(900));
            let mut now = SimTime::from_secs(200);
            for step in 0..400u64 {
                let actions = c.tick(now, None, None, &mut rng);
                for a in actions {
                    if let RolloutAction::Push { version, targets, .. } = a {
                        for t in targets {
                            if step % 17 == 3 {
                                c.nack(t, version);
                            } else {
                                c.ack(t, version, now);
                            }
                        }
                    }
                }
                now += SimDuration::from_secs(1);
            }
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tenant_roster_is_capped() {
        let mut c = controller(1);
        assert!(!c.register_tenant(1, 0, SimTime::ZERO), "generation 0 refused");
        for t in 0..MAX_TENANTS as u64 {
            assert!(c.register_tenant(t, 1, SimTime::MAX));
        }
        assert!(!c.register_tenant(u64::MAX, 1, SimTime::MAX), "roster capped");
        assert!(c.register_tenant(3, 2, SimTime::MAX), "re-registration allowed");
    }
}
