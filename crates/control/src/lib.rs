//! # canal-control
//!
//! The control plane of the reproduction:
//!
//! * [`configure`] — configuration building and pushing: the O(N²)
//!   southbound blow-up of per-pod sidecars vs per-node/per-service proxies
//!   vs Canal's single centralized gateway (Figs. 4/14/15, §2.2), plus the
//!   update-frequency model behind Table 2.
//! * [`monitor`] — multi-indicator monitoring and anomaly classification:
//!   backend/service/tenant alerts and the §6.2 decision rules (scale vs
//!   lossy/lossless sandbox migration vs throttling).
//! * [`rca`] — root-cause analysis (§4.3): trend-correlating top services
//!   against a backend's water level, with the multi-backend intersection
//!   speculation and its fallback.
//! * [`scaling`] — precise scaling: the `Reuse` / `New` strategies, their
//!   completion-time models (P50 ≈ 55 s vs ≈ 17 min, Fig. 17 / Table 4),
//!   and the scaling ledger behind Fig. 18.
//! * [`inphase`] — traffic-pattern monitoring and the §6.3 in-phase service
//!   migration planner (HWHM sampling, complementary-pattern target
//!   selection).
//! * [`proofing`] — the §6.4 full-mesh L7 prober: diverse app instances in
//!   every AZ, a (src AZ × dst AZ × protocol) matrix, and the
//!   innocence-or-infra-fault verdict for tenant complaints.
//! * [`region`] — the assembled control loop on the discrete-event engine:
//!   workloads → gateway → monitor → decisions, with scaling capacity that
//!   only lands at its completion instant.
//! * [`versioned`] — xDS-style versioned config distribution: debounced
//!   update coalescing, per-target ack/nack tracking, fleet convergence.
//! * [`rollout`] — safe config rollout (§2.2's outage vector, defended):
//!   validate → canary wave → health-gated exponential promotion →
//!   converged, with automatic rollback to last-known-good on NACK,
//!   health regression, or ack timeout, and a per-version audit log.
//! * [`certrotation`] — certificate rotation waves: expiry-driven (and
//!   compromise-forced) bundle cutting, distributed through [`rollout`] so
//!   a poisoned bundle NACKs at the canary and rolls the fleet back to the
//!   last converged trust state while gateways serve fail-static.
//! * [`journal`] — the write-ahead rollout journal (DESIGN.md §15):
//!   every begin / wave-cut / ack / nack / rollback / converge intent is
//!   journaled before the southbound push, so a crashed controller's
//!   replacement can replay the journal, reconcile against the fleet, and
//!   resume or abort the in-flight wave under a fresh fencing epoch.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod certrotation;
pub mod configure;
pub mod inphase;
pub mod journal;
pub mod monitor;
pub mod proofing;
pub mod rca;
pub mod region;
pub mod rollout;
pub mod versioned;
pub mod scaling;

pub use certrotation::{CertRotationController, RotationConfig, RotationRecord};
pub use configure::{ConfigPlane, PushReport};
pub use inphase::{InPhasePlanner, MigrationPlan};
pub use monitor::{
    AlertKind, Classification, MonitorDecision, OverloadAssessment, WaterLevelMonitor,
};
pub use journal::{
    Journal, JournalRecord, PendingRollback, ReplayRollout, ReplayState, RolloutKind,
    JOURNAL_RETAIN_CAP,
};
pub use proofing::{FaultVerdict, FullMeshProber, ProbeProtocol};
pub use rca::{candidate_causes, CandidateCause, RootCauseAnalyzer, RcaVerdict};
pub use region::{RegionEvent, RegionReport, RegionSimulation};
pub use rollout::{
    HealthSample, RollbackReason, RolloutAction, RolloutConfig, RolloutController,
    RolloutOutcome, RolloutPhase, RolloutResult,
};
pub use scaling::{ScalingEngine, ScalingKind, ScalingRecord};
pub use versioned::VersionedConfigStore;
