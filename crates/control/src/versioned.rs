//! Versioned configuration distribution with acknowledgement tracking.
//!
//! §2.2's control-plane pain is churn: "any sidecar configuration change
//! triggers a global pod update", at the Table 2 frequencies. This module
//! is the xDS-style bookkeeping that makes that churn observable and
//! bounded:
//!
//! * every config change bumps a monotonically increasing **version**;
//! * changes inside a **debounce window** coalesce into one push (the
//!   standard mitigation for update storms);
//! * each target (sidecar / proxy / gateway) tracks its **acked** version;
//!   the store answers "which targets are stale" and "has the fleet
//!   converged" — the signal behind Fig. 4's "update completion" time;
//! * NACKs (a target rejecting a config) are surfaced instead of silently
//!   retried, since a misconfigured proxy is §2.2's outage vector.

use canal_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of a configuration target (one proxy).
pub type TargetId = u32;

/// A target's acknowledgement state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckState {
    /// Highest version the target acknowledged.
    pub acked: u64,
    /// Version the target rejected, if any (cleared by a later ack).
    pub nacked: Option<u64>,
    /// When the last ack arrived.
    pub acked_at: SimTime,
}

/// The versioned store.
#[derive(Debug)]
pub struct VersionedConfigStore {
    version: u64,
    /// Version when the currently-open debounce window started, if any.
    pending_since: Option<SimTime>,
    debounce: SimDuration,
    targets: BTreeMap<TargetId, AckState>,
    pushes_issued: u64,
    updates_coalesced: u64,
}

impl VersionedConfigStore {
    /// Store with the given debounce window (0 disables coalescing).
    pub fn new(debounce: SimDuration) -> Self {
        VersionedConfigStore {
            version: 0,
            pending_since: None,
            debounce,
            targets: BTreeMap::new(),
            pushes_issued: 0,
            updates_coalesced: 0,
        }
    }

    /// Register a target at version 0 (nothing delivered yet).
    pub fn add_target(&mut self, target: TargetId) {
        self.targets.entry(target).or_insert(AckState {
            acked: 0,
            nacked: None,
            acked_at: SimTime::ZERO,
        });
    }

    /// Remove a target (proxy decommissioned).
    pub fn remove_target(&mut self, target: TargetId) -> bool {
        self.targets.remove(&target).is_some()
    }

    /// Fast-forward the version counter to at least `version` — crash
    /// recovery seeding: a store rebuilt by `RolloutController::recover`
    /// must accept acks for (and allocate versions after) everything the
    /// journal or the fleet has already seen. Never moves backward.
    pub fn restore_version(&mut self, version: u64) {
        self.version = self.version.max(version);
    }

    /// Record a configuration change at `now`. Returns the version the
    /// change landed in. Changes within the debounce window share a version
    /// (they will be pushed together).
    pub fn record_change(&mut self, now: SimTime) -> u64 {
        match self.pending_since {
            Some(since) if now.since(since) < self.debounce => {
                self.updates_coalesced += 1;
                self.version
            }
            _ => {
                self.version += 1;
                self.pending_since = Some(now);
                self.version
            }
        }
    }

    /// Close the current debounce window and mark the version pushed to all
    /// targets. Returns `(version, stale_target_count)` or `None` if there
    /// is nothing pending.
    pub fn flush_push(&mut self, _now: SimTime) -> Option<(u64, usize)> {
        self.pending_since.take()?;
        self.pushes_issued += 1;
        let stale = self
            .targets
            .values()
            .filter(|t| t.acked < self.version)
            .count();
        Some((self.version, stale))
    }

    /// A target acknowledges a version. Later versions clear earlier NACKs.
    /// Returns false for unknown targets or acks of unissued versions.
    pub fn ack(&mut self, target: TargetId, version: u64, now: SimTime) -> bool {
        if version > self.version {
            return false;
        }
        match self.targets.get_mut(&target) {
            Some(state) => {
                if version > state.acked {
                    state.acked = version;
                    state.acked_at = now;
                    if state.nacked.is_some_and(|n| n <= version) {
                        state.nacked = None;
                    }
                }
                true
            }
            None => false,
        }
    }

    /// A target rejects a version (config invalid for it).
    pub fn nack(&mut self, target: TargetId, version: u64) -> bool {
        match self.targets.get_mut(&target) {
            Some(state) => {
                state.nacked = Some(version);
                true
            }
            None => false,
        }
    }

    /// Current (latest) version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A target's acknowledgement state, if registered.
    pub fn ack_state(&self, target: TargetId) -> Option<AckState> {
        self.targets.get(&target).copied()
    }

    /// All registered targets, ascending.
    pub fn target_ids(&self) -> Vec<TargetId> {
        self.targets.keys().copied().collect()
    }

    /// Targets behind the latest version.
    pub fn stale_targets(&self) -> Vec<TargetId> {
        self.targets
            .iter()
            .filter(|(_, s)| s.acked < self.version)
            .map(|(&t, _)| t)
            .collect()
    }

    /// Targets currently rejecting a config.
    pub fn nacked_targets(&self) -> Vec<TargetId> {
        self.targets
            .iter()
            .filter(|(_, s)| s.nacked.is_some())
            .map(|(&t, _)| t)
            .collect()
    }

    /// Whether every target runs the latest version (Fig. 4's "completion").
    pub fn converged(&self) -> bool {
        self.targets.values().all(|s| s.acked >= self.version)
    }

    /// Instant the fleet converged on the current version (max ack time),
    /// or `None` while still converging.
    pub fn converged_at(&self) -> Option<SimTime> {
        if !self.converged() || self.targets.is_empty() {
            return None;
        }
        self.targets.values().map(|s| s.acked_at).max()
    }

    /// Lifetime counters `(pushes_issued, updates_coalesced)` — how much
    /// southbound traffic the debounce window saved.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushes_issued, self.updates_coalesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    fn store_with_targets(n: u32) -> VersionedConfigStore {
        let mut s = VersionedConfigStore::new(SimDuration::from_secs(2));
        for t in 0..n {
            s.add_target(t);
        }
        s
    }

    #[test]
    fn change_push_ack_converges() {
        let mut s = store_with_targets(3);
        let v = s.record_change(T(0));
        assert_eq!(v, 1);
        let (pushed, stale) = s.flush_push(T(0)).unwrap();
        assert_eq!((pushed, stale), (1, 3));
        assert!(!s.converged());
        for t in 0..3 {
            assert!(s.ack(t, 1, T(1 + t as u64)));
        }
        assert!(s.converged());
        assert_eq!(s.converged_at(), Some(T(3)));
        assert!(s.stale_targets().is_empty());
    }

    #[test]
    fn debounce_coalesces_update_storms() {
        // Table 2: 40–70 updates/min on big clusters. A 2s window turns a
        // burst of changes into one version.
        let mut s = store_with_targets(2);
        let v1 = s.record_change(T(0));
        let v2 = s.record_change(T(1)); // within the window
        assert_eq!(v1, v2);
        let (_, coalesced) = s.stats();
        assert_eq!(coalesced, 1);
        // After the window, a new change opens a new version.
        s.flush_push(T(2));
        let v3 = s.record_change(T(10));
        assert_eq!(v3, v1 + 1);
    }

    #[test]
    fn stale_targets_tracked_per_version() {
        let mut s = store_with_targets(3);
        s.record_change(T(0));
        s.flush_push(T(0));
        s.ack(0, 1, T(1));
        assert_eq!(s.stale_targets(), vec![1, 2]);
        // A second version leaves the early acker stale again.
        s.record_change(T(10));
        s.flush_push(T(10));
        assert_eq!(s.stale_targets(), vec![0, 1, 2]);
        assert!(!s.converged());
    }

    #[test]
    fn nack_surfaces_until_later_ack() {
        let mut s = store_with_targets(2);
        s.record_change(T(0));
        s.flush_push(T(0));
        assert!(s.nack(1, 1));
        assert_eq!(s.nacked_targets(), vec![1]);
        // Version 2 fixes it; the target acks and the NACK clears.
        s.record_change(T(5));
        s.flush_push(T(5));
        s.ack(1, 2, T(6));
        assert!(s.nacked_targets().is_empty());
    }

    #[test]
    fn invalid_acks_rejected() {
        let mut s = store_with_targets(1);
        s.record_change(T(0));
        assert!(!s.ack(0, 99, T(0)), "cannot ack an unissued version");
        assert!(!s.ack(42, 1, T(0)), "unknown target");
        assert!(!s.nack(42, 1));
        // Stale acks don't regress the state.
        s.flush_push(T(0));
        s.ack(0, 1, T(1));
        s.record_change(T(10));
        s.flush_push(T(10));
        s.ack(0, 2, T(11));
        assert!(s.ack(0, 1, T(12)), "stale ack accepted but ignored");
        assert!(s.converged());
    }

    #[test]
    fn target_lifecycle() {
        let mut s = store_with_targets(2);
        s.record_change(T(0));
        s.flush_push(T(0));
        s.ack(0, 1, T(1));
        // Removing the laggard makes the fleet converged.
        assert!(s.remove_target(1));
        assert!(s.converged());
        // New targets join stale.
        s.add_target(7);
        assert!(!s.converged());
        assert_eq!(s.stale_targets(), vec![7]);
        assert!(!s.remove_target(99));
    }

    #[test]
    fn empty_flush_is_none() {
        let mut s = store_with_targets(1);
        assert!(s.flush_push(T(0)).is_none());
        s.record_change(T(0));
        assert!(s.flush_push(T(0)).is_some());
        assert!(s.flush_push(T(1)).is_none(), "window consumed");
    }
}
