//! Traffic-pattern monitoring and in-phase service migration (§4.2
//! "Traffic pattern monitoring", §6.3).
//!
//! Services sharing a backend whose daily peaks coincide defeat peak
//! shaving: CPU surges when they all peak together. The planner:
//!
//! 1. **Detects** phase synchronization by correlating services' 24-hour
//!    RPS series.
//! 2. **Selects services to migrate** — higher RPS first (fewer moves,
//!    HTTPS weighted 3× per the paper's resource observation), fewer
//!    long-lived sessions first (faster drain).
//! 3. **Selects target backends** by the paper's exact algorithm: take the
//!    service's HWHM window, sample it at 10 fixed points, sample candidate
//!    same-AZ backends at the same points (set `G`), take the 5 backends
//!    with the lowest sums, then compare their full-day sums (`G'`) and
//!    pick the lowest — a backend that is cold when this service is hot
//!    *and* not generally overloaded.

use canal_gateway::gateway::BackendId;
use canal_net::{AzId, GlobalServiceId};
use canal_sim::stats::{hwhm_window, pearson};

/// A service's daily traffic profile on some backend.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    /// The service.
    pub service: GlobalServiceId,
    /// 24-hour RPS series (fixed sampling, e.g. 96 points).
    pub series: Vec<f64>,
    /// Long-lived sessions currently open (migration drag).
    pub long_sessions: usize,
    /// Fraction of traffic that is HTTPS (≈3× resource weight, §6.3).
    pub https_fraction: f64,
}

impl ServiceProfile {
    /// Resource-weighted mean RPS: HTTPS counts 3×.
    pub fn weighted_rps(&self) -> f64 {
        let mean = if self.series.is_empty() {
            0.0
        } else {
            self.series.iter().sum::<f64>() / self.series.len() as f64
        };
        mean * (1.0 + 2.0 * self.https_fraction.clamp(0.0, 1.0))
    }
}

/// A candidate backend's daily load profile.
#[derive(Debug, Clone)]
pub struct BackendProfile {
    /// The backend.
    pub backend: BackendId,
    /// Its AZ.
    pub az: AzId,
    /// 24-hour load series aligned with the service series.
    pub series: Vec<f64>,
}

/// A planned set of moves.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// `(service, destination backend)` pairs.
    pub moves: Vec<(GlobalServiceId, BackendId)>,
}

/// The §6.3 planner.
#[derive(Debug, Clone, Copy)]
pub struct InPhasePlanner {
    /// Pearson correlation above which two services count as in-phase.
    pub phase_threshold: f64,
    /// HWHM sampling points (paper: 10).
    pub hwhm_samples: usize,
    /// Candidate short-list size before the `G'` comparison (paper: 5).
    pub shortlist: usize,
}

impl Default for InPhasePlanner {
    fn default() -> Self {
        InPhasePlanner {
            phase_threshold: 0.8,
            hwhm_samples: 10,
            shortlist: 5,
        }
    }
}

impl InPhasePlanner {
    /// Pairs of in-phase services (correlation ≥ threshold) on one backend.
    pub fn detect_in_phase(
        &self,
        services: &[ServiceProfile],
    ) -> Vec<(GlobalServiceId, GlobalServiceId, f64)> {
        let mut out = Vec::new();
        for i in 0..services.len() {
            for j in (i + 1)..services.len() {
                let a = &services[i];
                let b = &services[j];
                if a.series.len() != b.series.len() || a.series.len() < 4 {
                    continue;
                }
                let r = pearson(&a.series, &b.series);
                if r >= self.phase_threshold {
                    out.push((a.service, b.service, r));
                }
            }
        }
        out
    }

    /// Order in-phase services by migration priority: resource-weighted RPS
    /// descending (principle i), long-session count ascending as the
    /// tiebreak (principle ii).
    pub fn migration_order<'a>(&self, group: &[&'a ServiceProfile]) -> Vec<&'a ServiceProfile> {
        let mut sorted: Vec<&ServiceProfile> = group.to_vec();
        sorted.sort_by(|a, b| {
            b.weighted_rps()
                .total_cmp(&a.weighted_rps())
                .then(a.long_sessions.cmp(&b.long_sessions))
        });
        sorted
    }

    /// The fixed sample indices inside the service's HWHM window.
    fn hwhm_points(&self, series: &[f64]) -> Vec<usize> {
        let Some((lo, hi)) = hwhm_window(series) else {
            return Vec::new();
        };
        let span = hi.saturating_sub(lo);
        (0..self.hwhm_samples)
            .map(|k| lo + (span * k) / self.hwhm_samples.max(1))
            .collect()
    }

    /// The paper's target-selection algorithm for one service.
    pub fn select_target(
        &self,
        service: &ServiceProfile,
        service_az: AzId,
        candidates: &[BackendProfile],
    ) -> Option<BackendId> {
        let points = self.hwhm_points(&service.series);
        if points.is_empty() {
            return None;
        }
        // G: candidate sums at the service's hot points, same AZ only.
        let mut g: Vec<(&BackendProfile, f64)> = candidates
            .iter()
            .filter(|c| c.az == service_az && c.series.len() == service.series.len())
            .map(|c| {
                let sum: f64 = points.iter().map(|&p| c.series[p]).sum();
                (c, sum)
            })
            .collect();
        g.sort_by(|a, b| a.1.total_cmp(&b.1));
        g.truncate(self.shortlist);
        // G': compare the shortlist's full-day sums; lowest wins.
        g.iter()
            .min_by(|a, b| {
                let fa: f64 = a.0.series.iter().sum();
                let fb: f64 = b.0.series.iter().sum();
                fa.total_cmp(&fb)
            })
            .map(|(c, _)| c.backend)
    }

    /// Plan migrations for an overloaded backend: walk the in-phase group in
    /// priority order, assigning each service a complementary target, until
    /// `moves_needed` services are placed.
    pub fn plan(
        &self,
        group: &[&ServiceProfile],
        service_az: AzId,
        candidates: &[BackendProfile],
        moves_needed: usize,
    ) -> MigrationPlan {
        let mut moves = Vec::new();
        for svc in self.migration_order(group) {
            if moves.len() >= moves_needed {
                break;
            }
            if let Some(target) = self.select_target(svc, service_az, candidates) {
                moves.push((svc.service, target));
            }
        }
        MigrationPlan { moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    /// A day curve peaking at `phase` (0..96), amplitude `amp`.
    fn day_curve(phase: usize, amp: f64) -> Vec<f64> {
        (0..96)
            .map(|i| {
                let x = (i as f64 - phase as f64) / 96.0 * std::f64::consts::TAU;
                amp * (1.0 + x.cos()) / 2.0 + 5.0
            })
            .collect()
    }

    fn profile(id: u32, phase: usize, amp: f64, long: usize, https: f64) -> ServiceProfile {
        ServiceProfile {
            service: svc(id),
            series: day_curve(phase, amp),
            long_sessions: long,
            https_fraction: https,
        }
    }

    #[test]
    fn detects_synchronized_peaks() {
        let planner = InPhasePlanner::default();
        let services = vec![
            profile(1, 40, 100.0, 0, 0.0),
            profile(2, 40, 80.0, 0, 0.0),  // same phase as 1
            profile(3, 88, 120.0, 0, 0.0), // opposite phase
        ];
        let pairs = planner.detect_in_phase(&services);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (svc(1), svc(2)));
        assert!(pairs[0].2 > 0.95);
    }

    #[test]
    fn weighted_rps_triples_https() {
        let http = profile(1, 0, 100.0, 0, 0.0);
        let https = profile(2, 0, 100.0, 0, 1.0);
        assert!((https.weighted_rps() / http.weighted_rps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn migration_order_prefers_high_rps_then_few_long_sessions() {
        let planner = InPhasePlanner::default();
        let big = profile(1, 0, 200.0, 50, 0.0);
        let small = profile(2, 0, 50.0, 0, 0.0);
        let big_sticky = profile(3, 0, 200.0, 500, 0.0);
        let order = planner.migration_order(&[&small, &big_sticky, &big]);
        let ids: Vec<GlobalServiceId> = order.iter().map(|p| p.service).collect();
        // big (same RPS as big_sticky but fewer long sessions) first.
        assert_eq!(ids, vec![svc(1), svc(3), svc(2)]);
    }

    #[test]
    fn target_is_complementary_and_same_az() {
        let planner = InPhasePlanner::default();
        let service = profile(1, 40, 100.0, 0, 0.0);
        let candidates = vec![
            BackendProfile {
                backend: 10,
                az: AzId(0),
                series: day_curve(40, 500.0), // in-phase: hot when svc is hot
            },
            BackendProfile {
                backend: 11,
                az: AzId(0),
                series: day_curve(88, 500.0), // complementary
            },
            BackendProfile {
                backend: 12,
                az: AzId(1),
                series: vec![0.0; 96], // colder but wrong AZ
            },
        ];
        let target = planner.select_target(&service, AzId(0), &candidates);
        assert_eq!(target, Some(11));
    }

    #[test]
    fn g_prime_breaks_ties_by_total_load() {
        // Two equally complementary backends at the hot window; the one with
        // the lower full-day load wins.
        let planner = InPhasePlanner::default();
        let service = profile(1, 40, 100.0, 0, 0.0);
        let mut flat_low = vec![10.0; 96];
        let mut flat_high = vec![10.0; 96];
        // Same values inside the HWHM window of the service (≈ around 40).
        for i in 0..96 {
            if !(25..=55).contains(&i) {
                flat_high[i] = 400.0;
                flat_low[i] = 20.0;
            }
        }
        let candidates = vec![
            BackendProfile { backend: 20, az: AzId(0), series: flat_high },
            BackendProfile { backend: 21, az: AzId(0), series: flat_low },
        ];
        assert_eq!(planner.select_target(&service, AzId(0), &candidates), Some(21));
    }

    #[test]
    fn plan_moves_at_most_requested() {
        let planner = InPhasePlanner::default();
        let a = profile(1, 40, 100.0, 0, 0.0);
        let b = profile(2, 40, 90.0, 0, 0.0);
        let c = profile(3, 40, 80.0, 0, 0.0);
        let candidates = vec![BackendProfile {
            backend: 30,
            az: AzId(0),
            series: day_curve(88, 100.0),
        }];
        let plan = planner.plan(&[&a, &b, &c], AzId(0), &candidates, 2);
        assert_eq!(plan.moves.len(), 2);
        // Highest-RPS services picked.
        assert_eq!(plan.moves[0].0, svc(1));
        assert_eq!(plan.moves[1].0, svc(2));
    }

    #[test]
    fn no_candidates_no_plan() {
        let planner = InPhasePlanner::default();
        let a = profile(1, 40, 100.0, 0, 0.0);
        let plan = planner.plan(&[&a], AzId(0), &[], 1);
        assert!(plan.moves.is_empty());
        assert_eq!(planner.select_target(&a, AzId(0), &[]), None);
    }
}
