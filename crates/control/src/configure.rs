//! Configuration building and pushing (§2.2, Figs. 4/14/15, Table 2).
//!
//! The paper's control-plane cost decomposition:
//!
//! * **Build** — CPU-bound; each target's config is assembled by the
//!   controller. A sidecar's config covers *all* pods (full-config push), so
//!   build cost is `targets × per-entry-cost × pods` — quadratic for Istio.
//! * **Push** — I/O-bound; southbound bytes = Σ per-target config size.
//!   Istio pushes O(N) bytes to each of N sidecars = O(N²); Ambient pushes
//!   node- and service-scoped configs; Canal pushes once to the gateway.
//! * **Completion** — pod creation additionally pays per-pod infra setup
//!   common to all architectures; the config component is what
//!   differentiates them (Fig. 14's 1.5–2.1× / 1.2–1.5×).

use canal_mesh::arch::{Architecture, ClusterShape};
use canal_sim::{SimDuration, SimTime};

/// Controller-side model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConfigCosts {
    /// Serialized bytes per config entry (one pod's routing+security rules).
    pub bytes_per_entry: usize,
    /// Fixed bytes per target (envelope, TLS, metadata).
    pub base_bytes_per_target: usize,
    /// Controller CPU per built entry.
    pub build_cpu_per_entry: SimDuration,
    /// Southbound bandwidth (bytes/s) available for pushing.
    pub southbound_bandwidth: f64,
    /// Per-target push round trip (connection + ack).
    pub per_target_push_rtt: SimDuration,
    /// Per-pod infra setup common to all architectures (scheduling, image,
    /// IP allocation) when creating pods.
    pub pod_setup: SimDuration,
    /// Parallelism of the pusher (concurrent target streams).
    pub push_fanout: usize,
    /// Waypoint deployments run replicated (Ambient defaults to 2).
    pub waypoint_replicas: usize,
    /// A waypoint's config is scoped to its service plus the services it
    /// talks to: `pods_per_service × dependency_fanout` entries (capped at
    /// the full cluster).
    pub dependency_fanout: usize,
    /// A waypoint's config carries inbound+outbound policy and certs —
    /// larger than one sidecar's share by this factor.
    pub waypoint_config_scale: f64,
    /// The Canal gateway's multi-tenant config (routing + security +
    /// session/bucket/tunnel tables) relative to one sidecar's full config.
    pub gateway_config_scale: f64,
    /// Per-20-pod-wave bootstrap on pod creation: sidecar injection and
    /// restart (Istio).
    pub sidecar_bootstrap_per_wave: SimDuration,
    /// Per-wave bootstrap: ztunnel identity/cert issuance (Ambient).
    pub ambient_bootstrap_per_wave: SimDuration,
    /// Per-wave bootstrap: nothing node-local beyond registration (Canal).
    pub canal_bootstrap_per_wave: SimDuration,
}

impl Default for ConfigCosts {
    fn default() -> Self {
        ConfigCosts {
            bytes_per_entry: 600,
            base_bytes_per_target: 4 * 1024,
            build_cpu_per_entry: SimDuration::from_micros(12),
            southbound_bandwidth: 25e6 / 8.0, // 25 Mbit/s controller egress
            per_target_push_rtt: SimDuration::from_millis(4),
            pod_setup: SimDuration::from_secs(2),
            push_fanout: 64,
            waypoint_replicas: 2,
            dependency_fanout: 3,
            waypoint_config_scale: 2.0,
            gateway_config_scale: 3.0,
            sidecar_bootstrap_per_wave: SimDuration::from_millis(1200),
            ambient_bootstrap_per_wave: SimDuration::from_millis(500),
            canal_bootstrap_per_wave: SimDuration::from_millis(100),
        }
    }
}

/// Result of one configuration round.
#[derive(Debug, Clone, Copy)]
pub struct PushReport {
    /// Proxies configured.
    pub targets: usize,
    /// Total southbound bytes.
    pub southbound_bytes: u64,
    /// Controller CPU spent building.
    pub build_cpu: SimDuration,
    /// Wall-clock push time (I/O-bound, fanout-limited).
    pub push_time: SimDuration,
    /// Build + push.
    pub total_time: SimDuration,
}

/// The configuration plane for one architecture.
#[derive(Debug, Clone)]
pub struct ConfigPlane {
    /// Which architecture's push topology to use.
    pub arch: Architecture,
    /// Cost parameters.
    pub costs: ConfigCosts,
}

impl ConfigPlane {
    /// Plane with default costs.
    pub fn new(arch: Architecture) -> Self {
        ConfigPlane {
            arch,
            costs: ConfigCosts::default(),
        }
    }

    /// Config size for one target in a cluster of the given shape.
    ///
    /// * Sidecars each carry the *full* config — entries for every pod
    ///   (§2.2's O(N)-per-proxy, O(N²) total).
    /// * Ambient ztunnels also need cluster-wide workload identities (full
    ///   config); each service's waypoint (× its replicas) carries a
    ///   policy-and-cert bundle `waypoint_config_scale`× one sidecar's.
    /// * The Canal gateway is a single target whose multi-tenant config is
    ///   `gateway_config_scale`× one sidecar's full config.
    pub fn bytes_per_target(&self, shape: &ClusterShape) -> Vec<usize> {
        let c = &self.costs;
        let full = c.base_bytes_per_target + c.bytes_per_entry * shape.pods;
        match self.arch {
            Architecture::NoMesh => Vec::new(),
            Architecture::Sidecar => vec![full; shape.pods],
            Architecture::Ambient => {
                let mut targets = vec![full; shape.nodes];
                let pods_per_service = (shape.pods / shape.services.max(1)).max(1);
                let entries = (pods_per_service * c.dependency_fanout).min(shape.pods);
                let waypoint = ((c.base_bytes_per_target + c.bytes_per_entry * entries) as f64
                    * c.waypoint_config_scale) as usize;
                targets.extend(vec![waypoint; shape.services * c.waypoint_replicas]);
                targets
            }
            Architecture::Canal => vec![(full as f64 * c.gateway_config_scale) as usize],
        }
    }

    /// Execute one full configuration round (e.g. a routing-policy update)
    /// over the cluster. This is the Fig. 15 measurement.
    pub fn push_update(&self, shape: &ClusterShape) -> PushReport {
        let c = &self.costs;
        let per_target = self.bytes_per_target(shape);
        let targets = per_target.len();
        let southbound_bytes: u64 = per_target.iter().map(|&b| b as u64).sum();
        let entries_built: u64 = per_target
            .iter()
            .map(|&b| ((b - c.base_bytes_per_target.min(b)) / c.bytes_per_entry.max(1)) as u64)
            .sum();
        let build_cpu = c.build_cpu_per_entry.scale(entries_built as f64);
        // I/O-bound push: bandwidth-limited transfer + fanout-limited RTTs.
        let transfer = SimDuration::from_secs_f64(southbound_bytes as f64 / c.southbound_bandwidth);
        let rtt_waves = (targets + c.push_fanout - 1) / c.push_fanout.max(1);
        let push_time = transfer + c.per_target_push_rtt.times(rtt_waves as u64);
        PushReport {
            targets,
            southbound_bytes,
            build_cpu,
            push_time,
            total_time: build_cpu + push_time,
        }
    }

    /// One *rollout wave*: push the update to only `targets` of the
    /// architecture's config targets (a canary slice, then exponentially
    /// growing waves — `canal_control::rollout`). Build CPU is paid once
    /// per wave for the wave's entries; southbound bytes and RTTs scale
    /// with the wave size. `targets` is clamped to the architecture's
    /// target count.
    pub fn push_wave(&self, shape: &ClusterShape, targets: usize) -> PushReport {
        let c = &self.costs;
        let per_target = self.bytes_per_target(shape);
        let wave: &[usize] = &per_target[..targets.min(per_target.len())];
        let targets = wave.len();
        let southbound_bytes: u64 = wave.iter().map(|&b| b as u64).sum();
        let entries_built: u64 = wave
            .iter()
            .map(|&b| ((b - c.base_bytes_per_target.min(b)) / c.bytes_per_entry.max(1)) as u64)
            .sum();
        let build_cpu = c.build_cpu_per_entry.scale(entries_built as f64);
        let transfer = SimDuration::from_secs_f64(southbound_bytes as f64 / c.southbound_bandwidth);
        let rtt_waves = (targets + c.push_fanout - 1) / c.push_fanout.max(1);
        let push_time = transfer + c.per_target_push_rtt.times(rtt_waves as u64);
        PushReport {
            targets,
            southbound_bytes,
            build_cpu,
            push_time,
            total_time: build_cpu + push_time,
        }
    }

    /// [`ConfigPlane::push_update`] under a fault-injected control-plane
    /// stall: a chaos plan's `config-push degrade` adds `extra` wall-clock
    /// delay to the push (controller partition, southbound congestion).
    /// Build CPU is unaffected — the controller still computes; only
    /// delivery stalls.
    pub fn push_update_delayed(&self, shape: &ClusterShape, extra: SimDuration) -> PushReport {
        let report = self.push_update(shape);
        PushReport {
            push_time: report.push_time + extra,
            total_time: report.total_time + extra,
            ..report
        }
    }

    /// An *incremental* configuration round: only the entries that changed
    /// are pushed (`changed_entries` of them), instead of the full config.
    /// The paper notes "incremental update would be preferable, \[but\] Istio
    /// currently lacks good support for it" (§2.2) — this models what the
    /// southbound load would look like with delta support, for the
    /// `abl-push` ablation.
    pub fn push_incremental(&self, shape: &ClusterShape, changed_entries: usize) -> PushReport {
        let c = &self.costs;
        let targets = match self.arch {
            Architecture::NoMesh => 0,
            Architecture::Sidecar => shape.pods,
            Architecture::Ambient => shape.nodes + shape.services * c.waypoint_replicas,
            Architecture::Canal => 1,
        };
        // Every target that carries the affected entries receives just the
        // delta plus the per-target envelope.
        let per_target = c.base_bytes_per_target / 8 + c.bytes_per_entry * changed_entries;
        let southbound_bytes = (per_target * targets) as u64;
        let build_cpu = c
            .build_cpu_per_entry
            .scale((changed_entries * targets.max(1)) as f64);
        let transfer = SimDuration::from_secs_f64(southbound_bytes as f64 / c.southbound_bandwidth);
        let rtt_waves = (targets + c.push_fanout - 1) / c.push_fanout.max(1);
        let push_time = transfer + c.per_target_push_rtt.times(rtt_waves as u64);
        PushReport {
            targets,
            southbound_bytes,
            build_cpu,
            push_time,
            total_time: build_cpu + push_time,
        }
    }

    /// P90-style completion time for creating `new_pods` pods in a cluster
    /// (the Fig. 14 measurement): common pod setup (parallelized by K8s)
    /// plus the architecture's configuration round reflecting the grown
    /// cluster.
    pub fn pod_creation_completion(&self, shape: &ClusterShape, new_pods: usize) -> SimDuration {
        let grown = ClusterShape {
            pods: shape.pods + new_pods,
            nodes: shape.nodes,
            services: shape.services,
        };
        // Pod setup proceeds in parallel waves of ~20 concurrent creations.
        let waves = new_pods.div_ceil(20) as u64;
        let setup = self.costs.pod_setup.times(waves);
        let bootstrap = match self.arch {
            Architecture::NoMesh => SimDuration::ZERO,
            Architecture::Sidecar => self.costs.sidecar_bootstrap_per_wave.times(waves),
            Architecture::Ambient => self.costs.ambient_bootstrap_per_wave.times(waves),
            Architecture::Canal => self.costs.canal_bootstrap_per_wave.times(waves),
        };
        setup + bootstrap + self.push_update(&grown).total_time
    }
}

/// Table 2's empirical law: configuration updates per minute as a function
/// of cluster size (larger clusters host more services, each updating at
/// its own cadence).
pub fn update_frequency_per_min(pods: usize) -> f64 {
    // Fitted to Table 2: 100–500 pods → 1–5/min; 700–1100 → 10–20;
    // 1500–3000 → 40–70. Slightly superlinear in pod count.
    0.004 * (pods as f64).powf(1.2)
}

/// Cross-region deployment check (§2.2's VPN saturation case): peak
/// southbound rate in bits/s when an update burst of `updates_per_min`
/// rounds hits a remote cluster over a constrained link.
pub fn peak_southbound_bps(plane: &ConfigPlane, shape: &ClusterShape, updates_per_min: f64) -> f64 {
    let per_update = plane.push_update(shape).southbound_bytes as f64 * 8.0;
    per_update * updates_per_min / 60.0
}

/// When during a simulated day config updates land, Poisson at the Table-2
/// rate — used by the timeline experiments.
pub fn update_times(
    rng: &mut canal_sim::SimRng,
    pods: usize,
    horizon: SimTime,
) -> Vec<SimTime> {
    let rate_per_sec = update_frequency_per_min(pods) / 60.0;
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(1.0 / rate_per_sec.max(1e-9));
        let at = SimTime::from_nanos((t * 1e9) as u64);
        if at > horizon {
            break;
        }
        out.push(at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(pods: usize) -> ClusterShape {
        ClusterShape::production(pods)
    }

    #[test]
    fn sidecar_southbound_is_quadratic() {
        let plane = ConfigPlane::new(Architecture::Sidecar);
        let small = plane.push_update(&shape(500)).southbound_bytes as f64;
        let large = plane.push_update(&shape(5000)).southbound_bytes as f64;
        // 10x pods → ~100x bytes.
        let growth = large / small;
        assert!((70.0..130.0).contains(&growth), "{growth}");
    }

    #[test]
    fn canal_southbound_is_linear_and_single_target() {
        let plane = ConfigPlane::new(Architecture::Canal);
        let r = plane.push_update(&shape(5000));
        assert_eq!(r.targets, 1);
        let small = plane.push_update(&shape(500)).southbound_bytes as f64;
        let growth = r.southbound_bytes as f64 / small;
        assert!((8.0..12.0).contains(&growth), "{growth}");
    }

    #[test]
    fn fig15_southbound_ratios() {
        // The paper's testbed shape: 2 nodes / 30 pods / 3 services.
        let shape = ClusterShape {
            pods: 30,
            nodes: 2,
            services: 3,
        };
        let istio = ConfigPlane::new(Architecture::Sidecar)
            .push_update(&shape)
            .southbound_bytes as f64;
        let ambient = ConfigPlane::new(Architecture::Ambient)
            .push_update(&shape)
            .southbound_bytes as f64;
        let canal = ConfigPlane::new(Architecture::Canal)
            .push_update(&shape)
            .southbound_bytes as f64;
        let r_istio = istio / canal;
        let r_ambient = ambient / canal;
        // Fig. 15: 9.8x and 4.6x.
        assert!((7.0..13.0).contains(&r_istio), "istio/canal {r_istio}");
        assert!((3.0..6.5).contains(&r_ambient), "ambient/canal {r_ambient}");
    }

    #[test]
    fn fig4_build_cpu_grows_with_cluster_push_is_io_bound() {
        let plane = ConfigPlane::new(Architecture::Sidecar);
        let small = plane.push_update(&shape(500));
        let large = plane.push_update(&shape(2000));
        // Build CPU scales with cluster size.
        assert!(large.build_cpu > small.build_cpu.times(10));
        // Push time grows too (I/O), and dominates CPU for large clusters.
        assert!(large.push_time > small.push_time);
        assert!(large.push_time > large.build_cpu);
    }

    #[test]
    fn fig14_completion_ratios() {
        let shape = ClusterShape {
            pods: 30,
            nodes: 2,
            services: 3,
        };
        let n = 100; // create 100 pods
        let istio = ConfigPlane::new(Architecture::Sidecar)
            .pod_creation_completion(&shape, n)
            .as_secs_f64();
        let ambient = ConfigPlane::new(Architecture::Ambient)
            .pod_creation_completion(&shape, n)
            .as_secs_f64();
        let canal = ConfigPlane::new(Architecture::Canal)
            .pod_creation_completion(&shape, n)
            .as_secs_f64();
        let r_i = istio / canal;
        let r_a = ambient / canal;
        assert!((1.4..2.2).contains(&r_i), "istio/canal {r_i}");
        assert!((1.1..1.6).contains(&r_a), "ambient/canal {r_a}");
    }

    #[test]
    fn table2_update_frequency_bands() {
        // 100–500 pods → 1–5/min.
        assert!((0.5..6.0).contains(&update_frequency_per_min(300)));
        // 700–1100 → 10–20.
        assert!((8.0..22.0).contains(&update_frequency_per_min(900)));
        // 1500–3000 → 40–70.
        assert!((30.0..80.0).contains(&update_frequency_per_min(2500)));
    }

    #[test]
    fn vpn_saturation_case() {
        // §2.2: thousands of pods, 100 Mbit VPN, peak 120 Mbit.
        let plane = ConfigPlane::new(Architecture::Sidecar);
        let s = shape(3000);
        let bps = peak_southbound_bps(&plane, &s, update_frequency_per_min(3000));
        assert!(bps > 100e6, "peak {bps} should exceed a 100Mbit VPN");
        // Canal fits within the same VPN with two orders of magnitude spare
        // vs Istio.
        let canal_bps =
            peak_southbound_bps(&ConfigPlane::new(Architecture::Canal), &s, update_frequency_per_min(3000));
        assert!(canal_bps < 100e6, "canal peak {canal_bps}");
        assert!(canal_bps < bps / 100.0);
    }

    #[test]
    fn update_times_are_ordered_and_bounded() {
        let mut rng = canal_sim::SimRng::seed(1);
        let horizon = SimTime::from_secs(3600);
        let times = update_times(&mut rng, 900, horizon);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t <= horizon));
        // ~15/min for an hour ≈ 900 events; allow wide tolerance.
        assert!((500..1400).contains(&times.len()), "{}", times.len());
    }

    #[test]
    fn ambient_stays_below_istio_at_production_scale() {
        // Service-scoped waypoint configs must not blow past per-pod
        // sidecars when services are numerous (pods:services ≈ 2:1).
        let shape = ClusterShape::production(600);
        let istio = ConfigPlane::new(Architecture::Sidecar)
            .push_update(&shape)
            .southbound_bytes;
        let ambient = ConfigPlane::new(Architecture::Ambient)
            .push_update(&shape)
            .southbound_bytes;
        assert!(ambient < istio / 2, "{ambient} vs {istio}");
    }

    #[test]
    fn incremental_push_is_far_cheaper_than_full() {
        let shape = shape(1000);
        for arch in [Architecture::Sidecar, Architecture::Canal] {
            let plane = ConfigPlane::new(arch);
            let full = plane.push_update(&shape);
            let delta = plane.push_incremental(&shape, 3);
            assert!(delta.southbound_bytes * 20 < full.southbound_bytes);
            assert_eq!(delta.targets, full.targets);
        }
        // But Istio's *incremental* push still fans out to every sidecar —
        // Canal's stays a single message; the gap persists.
        let istio = ConfigPlane::new(Architecture::Sidecar).push_incremental(&shape, 3);
        let canal = ConfigPlane::new(Architecture::Canal).push_incremental(&shape, 3);
        assert!(istio.southbound_bytes > canal.southbound_bytes * 100);
    }

    #[test]
    fn delayed_push_adds_exactly_the_injected_stall() {
        let plane = ConfigPlane::new(Architecture::Canal);
        let s = shape(300);
        let healthy = plane.push_update(&s);
        let stall = SimDuration::from_secs(5);
        let delayed = plane.push_update_delayed(&s, stall);
        assert_eq!(delayed.total_time, healthy.total_time + stall);
        assert_eq!(delayed.push_time, healthy.push_time + stall);
        assert_eq!(delayed.build_cpu, healthy.build_cpu);
        assert_eq!(delayed.southbound_bytes, healthy.southbound_bytes);
        assert_eq!(
            plane.push_update_delayed(&s, SimDuration::ZERO).total_time,
            healthy.total_time
        );
    }

    #[test]
    fn wave_push_costs_scale_with_wave_size() {
        let plane = ConfigPlane::new(Architecture::Sidecar);
        let s = shape(1000);
        let full = plane.push_update(&s);
        let canary = plane.push_wave(&s, 10);
        assert_eq!(canary.targets, 10);
        assert!(canary.southbound_bytes < full.southbound_bytes / 50);
        assert!(canary.push_time < full.push_time);
        // Pushing "all" as one wave costs exactly a full push.
        let all = plane.push_wave(&s, usize::MAX);
        assert_eq!(all.targets, full.targets);
        assert_eq!(all.southbound_bytes, full.southbound_bytes);
        assert_eq!(all.total_time, full.total_time);
        // An empty wave costs nothing southbound.
        assert_eq!(plane.push_wave(&s, 0).southbound_bytes, 0);
    }

    #[test]
    fn no_mesh_pushes_nothing() {
        let plane = ConfigPlane::new(Architecture::NoMesh);
        let r = plane.push_update(&shape(1000));
        assert_eq!(r.targets, 0);
        assert_eq!(r.southbound_bytes, 0);
    }
}
