//! Multi-indicator monitoring and anomaly-triggered rapid intervention
//! (§4.2 "Anomaly detection-triggered rapid intervention", §6.2).
//!
//! The monitor consumes the gateway's per-window [`canal_gateway::gateway::WaterLevel`]
//! reports and classifies breaches:
//!
//! * RPS and water level rising together, history-consistent → **normal
//!   growth** → scale (Reuse/New).
//! * TCP sessions surging *without* a matching RPS rise → **attack
//!   signature** (§6.2 Case #1) → lossy sandbox migration.
//! * Slow unusual growth triggering repeated auto-scaling (Case #2) →
//!   lossless migration after user confirmation.
//! * Tenant cluster near 100% under inbound flood (Case #3) → throttle at
//!   the gateway.

use canal_gateway::gateway::{BackendId, WaterLevel};
use canal_gateway::overload::{BrownoutLevel, OverloadSignals};
use canal_net::GlobalServiceId;
use canal_sim::{Digest, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Alert levels of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A backend's water level breached the threshold.
    Backend(BackendId),
    /// A metered service is running out of its purchased resources.
    Service(GlobalServiceId),
    /// The tenant's own cluster is saturating.
    Tenant(canal_net::TenantId),
    /// The gateway's overload pipeline reported pressure.
    Overload,
    /// A config rollout entered flight or rolled back — any anomaly in the
    /// same window has "config change" as a suspect dimension (§2.2).
    ConfigRollout,
    /// The network-policy plane denied an anomalous fraction of this
    /// window's traffic — a deny spike is how a wrongly-scoped (but
    /// semantically valid) policy push announces itself, and it must feed
    /// the rollout health gate before the push leaves the canary.
    PolicyDeny,
}

/// What the gateway's overload telemetry says about the pressure state.
///
/// Water levels are *utilization* signals — they saturate at 1.0 exactly
/// when it is too late to scale gracefully. Overload signals (queue depth,
/// sojourn p99, brownout, shed rate) move *before* utilization pins, which
/// is what lets precise scaling act pre-saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadAssessment {
    /// Queues drain promptly, nothing shed, no brownout.
    Calm,
    /// Pressure is building — sojourn over the SLO or brownout engaged —
    /// but no request has been dropped yet. Scale now.
    PreSaturation,
    /// Requests are being shed (caps or CoDel): the gateway is saturated;
    /// scale and consider sandboxing the top offender.
    Shedding,
}

/// What the monitor believes is happening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Organic traffic increase.
    NormalGrowth,
    /// Session surge without RPS surge — attack signature.
    SessionAttack,
    /// Sustained unusual growth pattern (vs history).
    UnusualGrowth,
    /// Cannot determine.
    Undetermined,
}

/// The §6.2 decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorDecision {
    /// Scale the pinpointed service (precise scaling, §4.3).
    Scale(GlobalServiceId),
    /// Migrate to the sandbox, resetting sessions.
    MigrateLossy(GlobalServiceId),
    /// Migrate to the sandbox, draining existing sessions.
    MigrateLossless(GlobalServiceId),
    /// Throttle the service at the redirector.
    Throttle(GlobalServiceId),
    /// Keep watching.
    Observe,
}

#[derive(Debug, Default, Clone)]
struct BackendHistory {
    utilization: VecDeque<f64>,
    sessions: VecDeque<f64>,
    rps: VecDeque<f64>,
}

const HISTORY_CAP: usize = 24;

/// Denied fraction of a window's policy decisions beyond which
/// [`WaterLevelMonitor::ingest_policy`] raises [`AlertKind::PolicyDeny`].
pub const POLICY_DENY_SPIKE: f64 = 0.2;

/// Water-level monitor with per-backend history.
#[derive(Debug, Default)]
pub struct WaterLevelMonitor {
    history: BTreeMap<BackendId, BackendHistory>,
    alerts: Vec<(SimTime, AlertKind)>,
    rollout_in_flight: bool,
    rollbacks_seen: u64,
    policy_spike: bool,
    policy_denials: u64,
}

impl WaterLevelMonitor {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_bounded(q: &mut VecDeque<f64>, v: f64) {
        q.push_back(v);
        while q.len() > HISTORY_CAP {
            q.pop_front();
        }
    }

    /// Ingest one monitoring window. Returns decisions (one per alerting
    /// backend). `threshold` is the CPU water-level alert line.
    pub fn ingest(
        &mut self,
        now: SimTime,
        levels: &[WaterLevel],
        threshold: f64,
    ) -> Vec<(BackendId, Classification, MonitorDecision)> {
        let mut out = Vec::new();
        for level in levels {
            let h = self.history.entry(level.backend).or_default();
            let total_rps: u64 = level.top_services.iter().map(|&(_, n)| n).sum();
            let prev_rps = h.rps.back().copied().unwrap_or(0.0);
            let prev_sessions = h.sessions.back().copied().unwrap_or(0.0);
            // Baseline: the median of recorded history (robust to the spike
            // itself, so a sustained surge keeps classifying as growth until
            // history catches up — the paper keeps scaling while hot).
            let baseline_rps = {
                let mut v: Vec<f64> = h.rps.iter().copied().collect();
                if v.is_empty() {
                    0.0
                } else {
                    v.sort_by(|a, b| a.total_cmp(b));
                    v[v.len() / 2]
                }
            };
            Self::push_bounded(&mut h.utilization, level.utilization);
            Self::push_bounded(&mut h.sessions, level.session_occupancy);
            Self::push_bounded(&mut h.rps, total_rps as f64);

            if level.utilization < threshold && level.session_occupancy < 0.8 {
                continue;
            }
            self.alerts.push((now, AlertKind::Backend(level.backend)));
            let top = level.top_services.first().map(|&(s, _)| s);

            // Attack signature: session occupancy jumped while RPS did not
            // (§6.2 Case #1: "#TCP sessions surged without a corresponding
            // increase in RPS").
            let session_jump = level.session_occupancy > prev_sessions + 0.3;
            let rps_flat = total_rps as f64 <= prev_rps * 1.3 + 10.0;
            let classification = if session_jump && rps_flat {
                Classification::SessionAttack
            } else if total_rps as f64 > baseline_rps * 1.5 + 10.0 {
                Classification::NormalGrowth
            } else if h.utilization.len() >= 4
                && h.utilization.iter().rev().take(4).all(|&u| u >= threshold * 0.9)
            {
                Classification::UnusualGrowth
            } else {
                Classification::Undetermined
            };

            let decision = match (classification, top) {
                (Classification::SessionAttack, Some(s)) => MonitorDecision::MigrateLossy(s),
                (Classification::NormalGrowth, Some(s)) => MonitorDecision::Scale(s),
                (Classification::UnusualGrowth, Some(s)) => MonitorDecision::MigrateLossless(s),
                (Classification::Undetermined, Some(s)) => MonitorDecision::Throttle(s),
                (_, None) => MonitorDecision::Observe,
            };
            out.push((level.backend, classification, decision));
        }
        out
    }

    /// Ingest one overload telemetry window from the gateway's pipeline.
    /// `sojourn_slo` is the queueing-delay budget; a p99 beyond it counts
    /// as pressure even before anything is shed. Alerting windows are
    /// recorded under [`AlertKind::Overload`].
    pub fn ingest_overload(
        &mut self,
        now: SimTime,
        sig: &OverloadSignals,
        sojourn_slo: SimDuration,
    ) -> OverloadAssessment {
        let assessment = if sig.shed_caps + sig.shed_codel > 0 {
            OverloadAssessment::Shedding
        } else if sig.brownout > BrownoutLevel::Normal
            || (sig.offered > 0 && sig.sojourn_p99 > sojourn_slo)
        {
            OverloadAssessment::PreSaturation
        } else {
            OverloadAssessment::Calm
        };
        if assessment != OverloadAssessment::Calm {
            self.alerts.push((now, AlertKind::Overload));
        }
        assessment
    }

    /// Ingest the rollout controller's state for this window
    /// (`RolloutController::in_flight()` / `rollbacks()`). Raises a
    /// [`AlertKind::ConfigRollout`] alert when a rollout *starts* and when
    /// the lifetime rollback count grows, so scaling and RCA windows that
    /// overlap a config change see it as a suspect dimension instead of
    /// mis-attributing the anomaly to traffic.
    pub fn ingest_rollout(&mut self, now: SimTime, in_flight: bool, rollbacks: u64) {
        if in_flight && !self.rollout_in_flight {
            self.alerts.push((now, AlertKind::ConfigRollout));
        }
        if rollbacks > self.rollbacks_seen {
            self.alerts.push((now, AlertKind::ConfigRollout));
            self.rollbacks_seen = rollbacks;
        }
        self.rollout_in_flight = in_flight;
    }

    /// Ingest one window of policy-plane decisions: how many flows/requests
    /// the compiled policy evaluated (`offered`) and how many it denied.
    /// Edge-triggered like [`ingest_rollout`](Self::ingest_rollout): the
    /// window where the denied fraction first exceeds
    /// [`POLICY_DENY_SPIKE`] raises one [`AlertKind::PolicyDeny`]; the
    /// spike must clear before it can alert again.
    pub fn ingest_policy(&mut self, now: SimTime, offered: u64, denied: u64) {
        self.policy_denials += denied;
        let spiking = offered > 0 && denied as f64 > offered as f64 * POLICY_DENY_SPIKE;
        if spiking && !self.policy_spike {
            self.alerts.push((now, AlertKind::PolicyDeny));
        }
        self.policy_spike = spiking;
    }

    /// Whether the last ingested policy window was a deny spike.
    pub fn policy_deny_spike(&self) -> bool {
        self.policy_spike
    }

    /// Lifetime policy denials across ingested windows.
    pub fn policy_denials(&self) -> u64 {
        self.policy_denials
    }

    /// Whether a config change is currently in flight (last ingested state).
    pub fn config_change_in_flight(&self) -> bool {
        self.rollout_in_flight
    }

    /// Lifetime rollbacks reported by the rollout controller.
    pub fn rollbacks_seen(&self) -> u64 {
        self.rollbacks_seen
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[(SimTime, AlertKind)] {
        &self.alerts
    }

    /// Fold the monitor state into a digest: every backend's `history`
    /// window, the `alerts` log, and the rollout view
    /// (`rollout_in_flight`, `rollbacks_seen`).
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.history.len() as u64);
        for (&backend, h) in &self.history {
            d.write_u64(backend as u64);
            for q in [&h.utilization, &h.sessions, &h.rps] {
                d.write_u64(q.len() as u64);
                for &v in q {
                    d.write_f64(v);
                }
            }
        }
        d.write_u64(self.alerts.len() as u64);
        for &(t, kind) in &self.alerts {
            d.write_u64(t.as_nanos());
            match kind {
                AlertKind::Backend(b) => d.write_u64(1).write_u64(b as u64),
                AlertKind::Service(s) => d.write_u64(2).write_u64(s.0),
                AlertKind::Tenant(tenant) => d.write_u64(3).write_u64(tenant.0 as u64),
                AlertKind::Overload => d.write_u64(4),
                AlertKind::ConfigRollout => d.write_u64(5),
                AlertKind::PolicyDeny => d.write_u64(6),
            };
        }
        d.write_u64(self.rollout_in_flight as u64)
            .write_u64(self.rollbacks_seen)
            .write_u64(self.policy_spike as u64)
            .write_u64(self.policy_denials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    fn level(
        backend: BackendId,
        util: f64,
        sessions: f64,
        top: &[(GlobalServiceId, u64)],
    ) -> WaterLevel {
        WaterLevel {
            backend,
            utilization: util,
            session_occupancy: sessions,
            top_services: top.to_vec(),
            alert: util > 0.7,
        }
    }

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    #[test]
    fn quiet_backend_produces_no_decision() {
        let mut m = WaterLevelMonitor::new();
        let out = m.ingest(T(0), &[level(1, 0.3, 0.1, &[(svc(1), 100)])], 0.7);
        assert!(out.is_empty());
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn rps_surge_classifies_as_growth_and_scales() {
        let mut m = WaterLevelMonitor::new();
        m.ingest(T(0), &[level(1, 0.4, 0.1, &[(svc(1), 100)])], 0.7);
        let out = m.ingest(T(60), &[level(1, 0.85, 0.15, &[(svc(1), 5000)])], 0.7);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, Classification::NormalGrowth);
        assert_eq!(out[0].2, MonitorDecision::Scale(svc(1)));
    }

    #[test]
    fn session_surge_without_rps_is_attack() {
        // §6.2 Case #1: 80% of backend sessions saturated, RPS flat.
        let mut m = WaterLevelMonitor::new();
        m.ingest(T(0), &[level(1, 0.4, 0.2, &[(svc(7), 1000)])], 0.7);
        let out = m.ingest(T(60), &[level(1, 0.75, 0.8, &[(svc(7), 1000)])], 0.7);
        assert_eq!(out[0].1, Classification::SessionAttack);
        assert_eq!(out[0].2, MonitorDecision::MigrateLossy(svc(7)));
    }

    #[test]
    fn sustained_high_water_without_rps_change_goes_lossless() {
        let mut m = WaterLevelMonitor::new();
        // Slow creep: high utilization for 4+ windows, RPS flat.
        for i in 0..5 {
            m.ingest(
                T(i * 60),
                &[level(1, 0.72 + i as f64 * 0.01, 0.2, &[(svc(2), 1000)])],
                0.7,
            );
        }
        let out = m.ingest(T(360), &[level(1, 0.78, 0.2, &[(svc(2), 1005)])], 0.7);
        assert_eq!(out[0].1, Classification::UnusualGrowth);
        assert_eq!(out[0].2, MonitorDecision::MigrateLossless(svc(2)));
    }

    #[test]
    fn session_alert_fires_even_below_cpu_threshold() {
        let mut m = WaterLevelMonitor::new();
        m.ingest(T(0), &[level(1, 0.2, 0.1, &[(svc(1), 500)])], 0.7);
        // CPU fine (30%), sessions at 85% — must still alert.
        let out = m.ingest(T(60), &[level(1, 0.3, 0.85, &[(svc(1), 520)])], 0.7);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, Classification::SessionAttack);
    }

    #[test]
    fn alerts_are_recorded_per_backend() {
        let mut m = WaterLevelMonitor::new();
        m.ingest(
            T(0),
            &[
                level(1, 0.9, 0.1, &[(svc(1), 100)]),
                level(2, 0.1, 0.1, &[(svc(2), 100)]),
            ],
            0.7,
        );
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].1, AlertKind::Backend(1));
    }

    #[test]
    fn empty_top_services_just_observes() {
        let mut m = WaterLevelMonitor::new();
        let out = m.ingest(T(0), &[level(1, 0.95, 0.1, &[])], 0.7);
        assert_eq!(out[0].2, MonitorDecision::Observe);
    }

    const SLO: SimDuration = SimDuration::from_millis(2);

    #[test]
    fn overload_calm_window_raises_nothing() {
        let mut m = WaterLevelMonitor::new();
        let sig = OverloadSignals {
            offered: 1000,
            started: 1000,
            sojourn_p99: SimDuration::from_micros(100),
            ..OverloadSignals::default()
        };
        assert_eq!(m.ingest_overload(T(0), &sig, SLO), OverloadAssessment::Calm);
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn overload_brownout_or_sojourn_flags_pre_saturation() {
        let mut m = WaterLevelMonitor::new();
        let browned = OverloadSignals {
            offered: 1000,
            started: 1000,
            brownout: BrownoutLevel::NoObservability,
            ..OverloadSignals::default()
        };
        assert_eq!(
            m.ingest_overload(T(0), &browned, SLO),
            OverloadAssessment::PreSaturation
        );
        let slow = OverloadSignals {
            offered: 1000,
            started: 1000,
            sojourn_p99: SimDuration::from_millis(5),
            ..OverloadSignals::default()
        };
        assert_eq!(
            m.ingest_overload(T(60), &slow, SLO),
            OverloadAssessment::PreSaturation
        );
        assert_eq!(m.alerts().len(), 2);
        assert!(m.alerts().iter().all(|&(_, k)| k == AlertKind::Overload));
    }

    #[test]
    fn overload_sheds_classify_as_shedding() {
        let mut m = WaterLevelMonitor::new();
        let sig = OverloadSignals {
            offered: 1000,
            started: 900,
            shed_codel: 60,
            shed_caps: 40,
            shed_rate: 0.1,
            sojourn_p99: SimDuration::from_millis(8),
            brownout: BrownoutLevel::NoCanary,
            ..OverloadSignals::default()
        };
        assert_eq!(
            m.ingest_overload(T(0), &sig, SLO),
            OverloadAssessment::Shedding
        );
    }

    #[test]
    fn rollout_state_surfaces_as_suspect_dimension() {
        let mut m = WaterLevelMonitor::new();
        assert!(!m.config_change_in_flight());
        // Quiet windows: nothing.
        m.ingest_rollout(T(0), false, 0);
        assert!(m.alerts().is_empty());
        // A rollout entering flight alerts once, not every window.
        m.ingest_rollout(T(10), true, 0);
        m.ingest_rollout(T(20), true, 0);
        assert!(m.config_change_in_flight());
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].1, AlertKind::ConfigRollout);
        // A rollback alerts again even as the rollout leaves flight.
        m.ingest_rollout(T(30), false, 1);
        assert!(!m.config_change_in_flight());
        assert_eq!(m.rollbacks_seen(), 1);
        assert_eq!(m.alerts().len(), 2);
        // The next rollout alerts afresh.
        m.ingest_rollout(T(40), true, 1);
        assert_eq!(m.alerts().len(), 3);
    }

    #[test]
    fn policy_deny_spike_alerts_on_the_edge() {
        let mut m = WaterLevelMonitor::new();
        // Healthy windows: a few denials are normal zero-trust noise.
        m.ingest_policy(T(0), 100, 5);
        assert!(!m.policy_deny_spike());
        assert!(m.alerts().is_empty());
        // A deny spike alerts once, not every window it persists.
        m.ingest_policy(T(10), 100, 40);
        m.ingest_policy(T(20), 100, 55);
        assert!(m.policy_deny_spike());
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].1, AlertKind::PolicyDeny);
        // Spike clears, then returns: a fresh alert.
        m.ingest_policy(T(30), 100, 2);
        assert!(!m.policy_deny_spike());
        m.ingest_policy(T(40), 100, 90);
        assert_eq!(m.alerts().len(), 2);
        assert_eq!(m.policy_denials(), 5 + 40 + 55 + 2 + 90);
        // An idle window (no offered traffic) is not a spike.
        m.ingest_policy(T(50), 0, 0);
        assert!(!m.policy_deny_spike());
    }
}
