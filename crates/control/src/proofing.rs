//! Proof for absence of failure (§6.4).
//!
//! Tenant complaints are ambiguous: the fault may be in the underlay, the
//! overlay, the mesh gateway, or the tenant's own service. The paper's
//! answer: deploy *diverse* app instances (WebSocket, HTTP, HTTPS, gRPC)
//! across every AZ and periodically probe the **full mesh** of
//! (source AZ × destination AZ × protocol) paths. When a complaint arrives,
//! the latest matrix either pinpoints an infra path (our fault) or shows
//! every path healthy (innocence proven — the issue is in the hosted
//! service). Unlike ping meshes, this exercises L7 protocols end to end.

use canal_net::AzId;
use canal_sim::{Digest, SimDuration, SimTime};
use std::collections::BTreeMap;

/// The probe app protocols deployed in every AZ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProbeProtocol {
    /// Plain HTTP request/response.
    Http,
    /// TLS-wrapped HTTP.
    Https,
    /// Long-lived WebSocket echo.
    WebSocket,
    /// gRPC unary call.
    Grpc,
}

impl ProbeProtocol {
    /// All deployed protocols.
    pub const ALL: [ProbeProtocol; 4] = [
        ProbeProtocol::Http,
        ProbeProtocol::Https,
        ProbeProtocol::WebSocket,
        ProbeProtocol::Grpc,
    ];
}

/// One full-mesh path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProbePath {
    /// Source AZ.
    pub from: AzId,
    /// Destination AZ.
    pub to: AzId,
    /// Protocol exercised.
    pub protocol: ProbeProtocol,
}

/// Result of one probe round on one path.
#[derive(Debug, Clone, Copy)]
pub struct ProbeResult {
    /// When it ran.
    pub at: SimTime,
    /// Whether the L7 exchange completed.
    pub success: bool,
    /// Measured latency (meaningful when successful).
    pub latency: SimDuration,
}

/// Where the evidence points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Every infra path is healthy: the issue is in the hosted service.
    InnocenceProven,
    /// Specific paths are failing: our infra, on these paths.
    InfraFault(Vec<ProbePath>),
    /// Not enough recent data to say.
    InsufficientData,
}

/// The full-mesh prober state.
#[derive(Debug)]
pub struct FullMeshProber {
    azs: Vec<AzId>,
    /// Latest result per path.
    // lint:allow(bounded-state) reason=keyed by the fixed AZ*AZ*protocol path set; inserts overwrite in place
    latest: BTreeMap<ProbePath, ProbeResult>,
    /// Probe staleness horizon: older results don't count as evidence.
    pub freshness: SimDuration,
    rounds: u64,
}

impl FullMeshProber {
    /// Prober over the given AZs with a 60 s evidence freshness horizon.
    pub fn new(azs: &[AzId]) -> Self {
        assert!(!azs.is_empty());
        FullMeshProber {
            azs: azs.to_vec(),
            latest: BTreeMap::new(),
            freshness: SimDuration::from_secs(60),
            rounds: 0,
        }
    }

    /// Every path of the full mesh (including intra-AZ) × every protocol.
    pub fn paths(&self) -> Vec<ProbePath> {
        let mut out = Vec::new();
        for &from in &self.azs {
            for &to in &self.azs {
                for protocol in ProbeProtocol::ALL {
                    out.push(ProbePath { from, to, protocol });
                }
            }
        }
        out
    }

    /// Record one round of probes from a measurement function. `probe_fn`
    /// returns `(success, latency)` for a path — in production this is the
    /// actual L7 exchange; in tests it is the fault-injection oracle.
    pub fn run_round<F>(&mut self, now: SimTime, mut probe_fn: F)
    where
        F: FnMut(&ProbePath) -> (bool, SimDuration),
    {
        for path in self.paths() {
            let (success, latency) = probe_fn(&path);
            self.latest.insert(
                path,
                ProbeResult {
                    at: now,
                    success,
                    latency,
                },
            );
        }
        self.rounds += 1;
    }

    /// Probe rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Paths probed per round (AZ² × protocols — the coverage claim).
    pub fn paths_per_round(&self) -> usize {
        self.azs.len() * self.azs.len() * ProbeProtocol::ALL.len()
    }

    /// The §6.4 verdict for a complaint arriving at `now`.
    pub fn verdict(&self, now: SimTime) -> FaultVerdict {
        if self.latest.is_empty() {
            return FaultVerdict::InsufficientData;
        }
        let fresh: Vec<(&ProbePath, &ProbeResult)> = self
            .latest
            .iter()
            .filter(|(_, r)| now.since(r.at) <= self.freshness)
            .collect();
        if fresh.len() < self.paths_per_round() {
            return FaultVerdict::InsufficientData;
        }
        let failing: Vec<ProbePath> = fresh
            .iter()
            .filter(|(_, r)| !r.success)
            .map(|(p, _)| **p)
            .collect();
        if failing.is_empty() {
            FaultVerdict::InnocenceProven
        } else {
            FaultVerdict::InfraFault(failing)
        }
    }

    /// Mean latency of fresh successful probes between two AZs, across
    /// protocols (an SLA evidence number).
    pub fn mean_latency(&self, now: SimTime, from: AzId, to: AzId) -> Option<SimDuration> {
        let samples: Vec<f64> = self
            .latest
            .iter()
            .filter(|(p, r)| {
                p.from == from && p.to == to && r.success && now.since(r.at) <= self.freshness
            })
            .map(|(_, r)| r.latency.as_micros_f64())
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(SimDuration::from_micros_f64(
                samples.iter().sum::<f64>() / samples.len() as f64,
            ))
        }
    }

    /// Fold the prober's evidence into a digest: the `azs` roster, every
    /// path's `latest` result, the `freshness` horizon and `rounds` run.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_u64(self.azs.len() as u64);
        for &az in &self.azs {
            d.write_u64(az.0 as u64);
        }
        d.write_u64(self.latest.len() as u64);
        for (path, r) in &self.latest {
            let proto = match path.protocol {
                ProbeProtocol::Http => 1,
                ProbeProtocol::Https => 2,
                ProbeProtocol::WebSocket => 3,
                ProbeProtocol::Grpc => 4,
            };
            d.write_u64(path.from.0 as u64)
                .write_u64(path.to.0 as u64)
                .write_u64(proto)
                .write_u64(r.at.as_nanos())
                .write_u64(r.success as u64)
                .write_u64(r.latency.as_nanos());
        }
        d.write_u64(self.freshness.as_nanos()).write_u64(self.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;
    const HEALTHY: fn(&ProbePath) -> (bool, SimDuration) =
        |_| (true, SimDuration::from_micros(900));

    fn prober() -> FullMeshProber {
        FullMeshProber::new(&[AzId(0), AzId(1), AzId(2)])
    }

    #[test]
    fn full_mesh_covers_all_paths_and_protocols() {
        let p = prober();
        assert_eq!(p.paths_per_round(), 3 * 3 * 4);
        let paths = p.paths();
        // Includes intra-AZ and every protocol.
        assert!(paths.iter().any(|p| p.from == p.to));
        for proto in ProbeProtocol::ALL {
            assert!(paths.iter().any(|p| p.protocol == proto));
        }
    }

    #[test]
    fn all_healthy_proves_innocence() {
        let mut p = prober();
        p.run_round(T(10), HEALTHY);
        assert_eq!(p.verdict(T(15)), FaultVerdict::InnocenceProven);
        assert_eq!(p.rounds(), 1);
    }

    #[test]
    fn l7_specific_fault_is_localized() {
        // The distinguishing §6.4 capability: HTTPS between AZ0→AZ1 broken
        // (e.g. a certificate problem at the gateway) while plain pings
        // would look fine.
        let mut p = prober();
        p.run_round(T(10), |path| {
            let broken = path.from == AzId(0)
                && path.to == AzId(1)
                && path.protocol == ProbeProtocol::Https;
            (!broken, SimDuration::from_micros(900))
        });
        match p.verdict(T(20)) {
            FaultVerdict::InfraFault(paths) => {
                assert_eq!(paths.len(), 1);
                assert_eq!(paths[0].protocol, ProbeProtocol::Https);
                assert_eq!((paths[0].from, paths[0].to), (AzId(0), AzId(1)));
            }
            v => panic!("expected localized infra fault, got {v:?}"),
        }
    }

    #[test]
    fn stale_evidence_is_insufficient() {
        let mut p = prober();
        p.run_round(T(10), HEALTHY);
        // 5 minutes later the old round no longer proves anything.
        assert_eq!(p.verdict(T(400)), FaultVerdict::InsufficientData);
        // And with no rounds at all:
        assert_eq!(prober().verdict(T(0)), FaultVerdict::InsufficientData);
    }

    #[test]
    fn latency_evidence_between_azs() {
        let mut p = prober();
        p.run_round(T(10), |path| {
            let cross = path.from != path.to;
            (
                true,
                if cross {
                    SimDuration::from_micros(1800)
                } else {
                    SimDuration::from_micros(400)
                },
            )
        });
        let intra = p.mean_latency(T(12), AzId(0), AzId(0)).unwrap();
        let cross = p.mean_latency(T(12), AzId(0), AzId(1)).unwrap();
        assert!(cross > intra);
        assert!(p.mean_latency(T(500), AzId(0), AzId(1)).is_none(), "stale");
    }

    #[test]
    fn newer_rounds_replace_older_evidence() {
        let mut p = prober();
        p.run_round(T(10), |_| (false, SimDuration::ZERO)); // outage
        p.run_round(T(40), HEALTHY); // recovered
        assert_eq!(p.verdict(T(45)), FaultVerdict::InnocenceProven);
    }
}
