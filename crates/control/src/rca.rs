//! Root-cause analysis for precise scaling (§4.3).
//!
//! Two algorithms from the paper:
//!
//! * **Basic** — on an alerting backend, sample per-service RPS trends and
//!   correlate each top service's trend with the backend's water-level
//!   trend; the best-correlated, sufficiently-strong match is the culprit.
//! * **Intersection speculation** — when several backends alert together
//!   (a service's load balancing raises all its backends), intersect the
//!   service sets of the alerting backends; a singleton intersection names
//!   the culprit immediately. The paper runs this *once* up front and falls
//!   back to the basic algorithm when it is inconclusive — so does
//!   [`RootCauseAnalyzer::analyze`].

use canal_gateway::gateway::BackendId;
use canal_net::GlobalServiceId;
use canal_sim::stats::pearson;
use std::collections::BTreeMap;

/// Trend samples for one backend: its water level over the last windows and
/// each top service's RPS over the same windows.
#[derive(Debug, Clone)]
pub struct BackendTrends {
    /// Backend id.
    pub backend: BackendId,
    /// Water-level samples (oldest first).
    pub water_level: Vec<f64>,
    /// Per-service RPS samples aligned with `water_level`.
    pub service_rps: BTreeMap<GlobalServiceId, Vec<f64>>,
}

/// Outcome of root-cause analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RcaVerdict {
    /// A single service pinpointed, with its correlation score.
    Pinpointed(GlobalServiceId, f64),
    /// No service's trend matches the water level strongly enough.
    Inconclusive,
}

/// The analyzer.
#[derive(Debug, Clone, Copy)]
pub struct RootCauseAnalyzer {
    /// Minimum Pearson correlation to accept a culprit.
    pub min_correlation: f64,
}

impl Default for RootCauseAnalyzer {
    fn default() -> Self {
        RootCauseAnalyzer {
            min_correlation: 0.8,
        }
    }
}

impl RootCauseAnalyzer {
    /// The basic algorithm on one backend.
    pub fn basic(&self, trends: &BackendTrends) -> RcaVerdict {
        let mut best: Option<(GlobalServiceId, f64)> = None;
        for (&svc, rps) in &trends.service_rps {
            if rps.len() != trends.water_level.len() || rps.len() < 3 {
                continue;
            }
            let r = pearson(rps, &trends.water_level);
            if r >= self.min_correlation && best.is_none_or(|(_, b)| r > b) {
                best = Some((svc, r));
            }
        }
        match best {
            Some((svc, r)) => RcaVerdict::Pinpointed(svc, r),
            None => RcaVerdict::Inconclusive,
        }
    }

    /// The intersection speculation across simultaneously alerting backends:
    /// conclusive only when exactly one service is on *all* of them.
    pub fn intersection(&self, alerting: &[&BackendTrends]) -> RcaVerdict {
        if alerting.len() < 2 {
            return RcaVerdict::Inconclusive;
        }
        let mut common: Vec<GlobalServiceId> =
            alerting[0].service_rps.keys().copied().collect();
        for t in &alerting[1..] {
            common.retain(|s| t.service_rps.contains_key(s));
        }
        if common.len() == 1 {
            RcaVerdict::Pinpointed(common[0], 1.0)
        } else {
            RcaVerdict::Inconclusive
        }
    }

    /// The paper's combined procedure: try the intersection speculation once
    /// when multiple backends alert; fall back to the basic algorithm on the
    /// hottest backend.
    pub fn analyze(&self, alerting: &[&BackendTrends]) -> RcaVerdict {
        if alerting.is_empty() {
            return RcaVerdict::Inconclusive;
        }
        if alerting.len() >= 2 {
            if let v @ RcaVerdict::Pinpointed(..) = self.intersection(alerting) {
                return v;
            }
        }
        let hottest = alerting.iter().max_by(|a, b| {
            let wa = a.water_level.last().copied().unwrap_or(0.0);
            let wb = b.water_level.last().copied().unwrap_or(0.0);
            wa.total_cmp(&wb)
        });
        match hottest {
            Some(h) => self.basic(h),
            None => RcaVerdict::Inconclusive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    fn trends(backend: BackendId, entries: &[(u32, Vec<f64>)], water: Vec<f64>) -> BackendTrends {
        BackendTrends {
            backend,
            water_level: water,
            service_rps: entries
                .iter()
                .map(|(id, rps)| (svc(*id), rps.clone()))
                .collect(),
        }
    }

    #[test]
    fn basic_pinpoints_the_growing_service() {
        // Water level follows service 2's ramp; service 1 is flat.
        let water = vec![0.2, 0.35, 0.5, 0.65, 0.8];
        let t = trends(
            1,
            &[
                (1, vec![100.0, 101.0, 99.0, 100.0, 100.5]),
                (2, vec![100.0, 400.0, 700.0, 1000.0, 1300.0]),
            ],
            water,
        );
        let v = RootCauseAnalyzer::default().basic(&t);
        match v {
            RcaVerdict::Pinpointed(s, r) => {
                assert_eq!(s, svc(2));
                assert!(r > 0.95);
            }
            _ => panic!("expected pinpoint"),
        }
    }

    #[test]
    fn basic_is_inconclusive_when_nothing_correlates() {
        let t = trends(
            1,
            &[(1, vec![100.0, 99.0, 101.0, 100.0])],
            vec![0.2, 0.5, 0.3, 0.9],
        );
        assert_eq!(RootCauseAnalyzer::default().basic(&t), RcaVerdict::Inconclusive);
    }

    #[test]
    fn intersection_identifies_the_shared_service() {
        // Service 5 is the only one on both alerting backends.
        let a = trends(1, &[(5, vec![1.0]), (2, vec![1.0])], vec![0.9]);
        let b = trends(2, &[(5, vec![1.0]), (3, vec![1.0])], vec![0.85]);
        let v = RootCauseAnalyzer::default().intersection(&[&a, &b]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(5)));
    }

    #[test]
    fn intersection_inconclusive_when_overlap_is_not_singleton() {
        let a = trends(1, &[(5, vec![1.0]), (6, vec![1.0])], vec![0.9]);
        let b = trends(2, &[(5, vec![1.0]), (6, vec![1.0])], vec![0.85]);
        assert_eq!(
            RootCauseAnalyzer::default().intersection(&[&a, &b]),
            RcaVerdict::Inconclusive
        );
    }

    #[test]
    fn analyze_falls_back_to_basic_on_hottest_backend() {
        // Intersection ambiguous (two shared services), but the hottest
        // backend's water level tracks service 6.
        let ramp = vec![100.0, 300.0, 500.0, 700.0];
        let flat = vec![100.0, 100.0, 101.0, 100.0];
        let a = trends(
            1,
            &[(5, flat.clone()), (6, ramp.clone())],
            vec![0.3, 0.5, 0.7, 0.9],
        );
        let b = trends(2, &[(5, flat.clone()), (6, flat)], vec![0.2, 0.2, 0.2, 0.2]);
        let v = RootCauseAnalyzer::default().analyze(&[&a, &b]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(6)));
    }

    #[test]
    fn analyze_single_backend_skips_intersection() {
        let t = trends(
            1,
            &[(9, vec![10.0, 20.0, 30.0])],
            vec![0.3, 0.6, 0.9],
        );
        let v = RootCauseAnalyzer::default().analyze(&[&t]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(9)));
        assert_eq!(
            RootCauseAnalyzer::default().analyze(&[]),
            RcaVerdict::Inconclusive
        );
    }

    #[test]
    fn mismatched_sample_lengths_are_skipped() {
        let t = trends(1, &[(1, vec![1.0, 2.0])], vec![0.1, 0.2, 0.3]);
        assert_eq!(RootCauseAnalyzer::default().basic(&t), RcaVerdict::Inconclusive);
    }
}
