//! Root-cause analysis for precise scaling (§4.3).
//!
//! Two algorithms from the paper:
//!
//! * **Basic** — on an alerting backend, sample per-service RPS trends and
//!   correlate each top service's trend with the backend's water-level
//!   trend; the best-correlated, sufficiently-strong match is the culprit.
//! * **Intersection speculation** — when several backends alert together
//!   (a service's load balancing raises all its backends), intersect the
//!   service sets of the alerting backends; a singleton intersection names
//!   the culprit immediately. The paper runs this *once* up front and falls
//!   back to the basic algorithm when it is inconclusive — so does
//!   [`RootCauseAnalyzer::analyze`].
//!
//! Plus a third, trace-driven localizer built on `canal-telemetry`:
//!
//! * **Span evidence** ([`SpanEvidenceRca`]) — compare each hop's mean
//!   *exclusive* latency (from assembled traces' critical paths) against a
//!   calm-period baseline; the first window where a hop inflates past a
//!   multiplicative threshold names that hop directly. Because the baseline
//!   stands ready before the fault, one bad window suffices — whereas the
//!   trend-correlation formulation ([`TrendHopRca`]) must accumulate
//!   several post-onset windows before a Pearson correlation over hop
//!   series is even defined, let alone strong.

use canal_gateway::gateway::BackendId;
use canal_net::GlobalServiceId;
use canal_sim::stats::pearson;
use canal_telemetry::HopSite;
use std::collections::BTreeMap;

/// Trend samples for one backend: its water level over the last windows and
/// each top service's RPS over the same windows.
#[derive(Debug, Clone)]
pub struct BackendTrends {
    /// Backend id.
    pub backend: BackendId,
    /// Water-level samples (oldest first).
    pub water_level: Vec<f64>,
    /// Per-service RPS samples aligned with `water_level`.
    pub service_rps: BTreeMap<GlobalServiceId, Vec<f64>>,
}

/// Outcome of root-cause analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RcaVerdict {
    /// A single service pinpointed, with its correlation score.
    Pinpointed(GlobalServiceId, f64),
    /// No service's trend matches the water level strongly enough.
    Inconclusive,
}

/// The analyzer.
#[derive(Debug, Clone, Copy)]
pub struct RootCauseAnalyzer {
    /// Minimum Pearson correlation to accept a culprit.
    pub min_correlation: f64,
}

impl Default for RootCauseAnalyzer {
    fn default() -> Self {
        RootCauseAnalyzer {
            min_correlation: 0.8,
        }
    }
}

impl RootCauseAnalyzer {
    /// The basic algorithm on one backend.
    pub fn basic(&self, trends: &BackendTrends) -> RcaVerdict {
        let mut best: Option<(GlobalServiceId, f64)> = None;
        for (&svc, rps) in &trends.service_rps {
            if rps.len() != trends.water_level.len() || rps.len() < 3 {
                continue;
            }
            let r = pearson(rps, &trends.water_level);
            if r >= self.min_correlation && best.is_none_or(|(_, b)| r > b) {
                best = Some((svc, r));
            }
        }
        match best {
            Some((svc, r)) => RcaVerdict::Pinpointed(svc, r),
            None => RcaVerdict::Inconclusive,
        }
    }

    /// The intersection speculation across simultaneously alerting backends:
    /// conclusive only when exactly one service is on *all* of them.
    pub fn intersection(&self, alerting: &[&BackendTrends]) -> RcaVerdict {
        if alerting.len() < 2 {
            return RcaVerdict::Inconclusive;
        }
        let mut common: Vec<GlobalServiceId> =
            alerting[0].service_rps.keys().copied().collect();
        for t in &alerting[1..] {
            common.retain(|s| t.service_rps.contains_key(s));
        }
        if common.len() == 1 {
            RcaVerdict::Pinpointed(common[0], 1.0)
        } else {
            RcaVerdict::Inconclusive
        }
    }

    /// The paper's combined procedure: try the intersection speculation once
    /// when multiple backends alert; fall back to the basic algorithm on the
    /// hottest backend.
    pub fn analyze(&self, alerting: &[&BackendTrends]) -> RcaVerdict {
        if alerting.is_empty() {
            return RcaVerdict::Inconclusive;
        }
        if alerting.len() >= 2 {
            if let v @ RcaVerdict::Pinpointed(..) = self.intersection(alerting) {
                return v;
            }
        }
        let hottest = alerting.iter().max_by(|a, b| {
            let wa = a.water_level.last().copied().unwrap_or(0.0);
            let wb = b.water_level.last().copied().unwrap_or(0.0);
            wa.total_cmp(&wb)
        });
        match hottest {
            Some(h) => self.basic(h),
            None => RcaVerdict::Inconclusive,
        }
    }
}

/// Per-window hop evidence distilled from assembled traces: mean exclusive
/// milliseconds spent at each hop over the traces collected in one
/// monitoring window (the output of critical-path extraction).
#[derive(Debug, Clone, Default)]
pub struct HopWindowStats {
    /// Mean exclusive latency per hop, in milliseconds.
    pub hops: BTreeMap<HopSite, f64>,
}

impl HopWindowStats {
    /// Stats over an explicit hop→ms list.
    pub fn from_pairs(pairs: &[(HopSite, f64)]) -> Self {
        HopWindowStats {
            hops: pairs.iter().copied().collect(),
        }
    }
}

/// Outcome of hop-level localization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanRcaVerdict {
    /// A hop named, after consuming `windows` post-onset windows. `score`
    /// is the inflation ratio (span evidence) or the Pearson correlation
    /// (trend formulation).
    Localized {
        /// The hop whose exclusive latency explains the regression.
        hop: HopSite,
        /// Post-onset windows consumed before the verdict (time to detect).
        windows: usize,
        /// Evidence strength.
        score: f64,
    },
    /// No hop stands out.
    Inconclusive,
}

/// Trace-driven localizer: a hop whose mean exclusive latency inflates past
/// `inflation`× its standing baseline is the culprit. Detects on the first
/// bad window because the baseline predates the fault.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvidenceRca {
    /// Multiplicative inflation over baseline that names a hop.
    pub inflation: f64,
    /// Ignore hops below this absolute level (ms) — noise floor.
    pub min_ms: f64,
}

impl Default for SpanEvidenceRca {
    fn default() -> Self {
        SpanEvidenceRca {
            inflation: 3.0,
            min_ms: 0.2,
        }
    }
}

impl SpanEvidenceRca {
    /// Scan post-onset windows (oldest first) against the calm baseline;
    /// the first window with an inflated hop localizes. Ties go to the
    /// largest inflation ratio.
    pub fn detect(
        &self,
        baseline: &BTreeMap<HopSite, f64>,
        windows: &[HopWindowStats],
    ) -> SpanRcaVerdict {
        for (w, stats) in windows.iter().enumerate() {
            let mut best: Option<(HopSite, f64)> = None;
            for (&hop, &ms) in &stats.hops {
                if ms < self.min_ms {
                    continue;
                }
                let base = baseline.get(&hop).copied().unwrap_or(0.0).max(1e-6);
                let ratio = ms / base;
                if ratio >= self.inflation && best.is_none_or(|(_, b)| ratio > b) {
                    best = Some((hop, ratio));
                }
            }
            if let Some((hop, score)) = best {
                return SpanRcaVerdict::Localized {
                    hop,
                    windows: w + 1,
                    score,
                };
            }
        }
        SpanRcaVerdict::Inconclusive
    }
}

/// The trend-correlation formulation applied to hops instead of services:
/// correlate each hop's per-window exclusive-latency series against the
/// end-to-end latency series and accept the strongest correlation. Needs at
/// least `min_windows` post-onset windows before Pearson is defined — the
/// head-to-head handicap the trace experiment measures.
#[derive(Debug, Clone, Copy)]
pub struct TrendHopRca {
    /// Minimum Pearson correlation to accept a culprit hop.
    pub min_correlation: f64,
    /// Minimum number of windows before correlating at all.
    pub min_windows: usize,
}

impl Default for TrendHopRca {
    fn default() -> Self {
        TrendHopRca {
            min_correlation: 0.8,
            min_windows: 3,
        }
    }
}

impl TrendHopRca {
    /// Consume windows one at a time (as a live monitor would) and return
    /// the earliest verdict: for each prefix of ≥ `min_windows` windows,
    /// correlate every hop's series with the total-latency series.
    pub fn detect(&self, windows: &[HopWindowStats], totals: &[f64]) -> SpanRcaVerdict {
        let n = windows.len().min(totals.len());
        let mut hops: Vec<HopSite> = Vec::new();
        for w in windows.iter().take(n) {
            for &h in w.hops.keys() {
                if !hops.contains(&h) {
                    hops.push(h);
                }
            }
        }
        for k in self.min_windows..=n {
            let mut best: Option<(HopSite, f64)> = None;
            for &hop in &hops {
                let series: Vec<f64> = windows
                    .iter()
                    .take(k)
                    .map(|w| w.hops.get(&hop).copied().unwrap_or(0.0))
                    .collect();
                let r = pearson(&series, &totals[..k]);
                if r >= self.min_correlation && best.is_none_or(|(_, b)| r > b) {
                    best = Some((hop, r));
                }
            }
            if let Some((hop, score)) = best {
                return SpanRcaVerdict::Localized {
                    hop,
                    windows: k,
                    score,
                };
            }
        }
        SpanRcaVerdict::Inconclusive
    }
}

/// One suspect dimension for an anomaly window: hop-level span evidence,
/// or operational context the spans cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandidateCause {
    /// A hop whose exclusive latency inflated (span-evidence verdict).
    Hop {
        /// The inflated hop.
        hop: HopSite,
        /// Evidence strength (inflation ratio or correlation).
        score: f64,
    },
    /// A config rollout overlapped the window (§2.2: configuration is the
    /// prior-probability outage vector — always a suspect while in flight
    /// or freshly rolled back).
    ConfigRollout,
}

/// Rank candidate causes for an anomaly window by combining hop-level span
/// evidence with the monitor's rollout state
/// (`WaterLevelMonitor::config_change_in_flight`). A config change in
/// flight is listed *first*: when a rollout and a latency regression
/// coincide, operators check the config before chasing the datapath.
pub fn candidate_causes(verdict: &SpanRcaVerdict, rollout_in_flight: bool) -> Vec<CandidateCause> {
    let mut causes = Vec::new();
    if rollout_in_flight {
        causes.push(CandidateCause::ConfigRollout);
    }
    if let SpanRcaVerdict::Localized { hop, score, .. } = *verdict {
        causes.push(CandidateCause::Hop { hop, score });
    }
    causes
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    fn trends(backend: BackendId, entries: &[(u32, Vec<f64>)], water: Vec<f64>) -> BackendTrends {
        BackendTrends {
            backend,
            water_level: water,
            service_rps: entries
                .iter()
                .map(|(id, rps)| (svc(*id), rps.clone()))
                .collect(),
        }
    }

    #[test]
    fn basic_pinpoints_the_growing_service() {
        // Water level follows service 2's ramp; service 1 is flat.
        let water = vec![0.2, 0.35, 0.5, 0.65, 0.8];
        let t = trends(
            1,
            &[
                (1, vec![100.0, 101.0, 99.0, 100.0, 100.5]),
                (2, vec![100.0, 400.0, 700.0, 1000.0, 1300.0]),
            ],
            water,
        );
        let v = RootCauseAnalyzer::default().basic(&t);
        match v {
            RcaVerdict::Pinpointed(s, r) => {
                assert_eq!(s, svc(2));
                assert!(r > 0.95);
            }
            _ => panic!("expected pinpoint"),
        }
    }

    #[test]
    fn basic_is_inconclusive_when_nothing_correlates() {
        let t = trends(
            1,
            &[(1, vec![100.0, 99.0, 101.0, 100.0])],
            vec![0.2, 0.5, 0.3, 0.9],
        );
        assert_eq!(RootCauseAnalyzer::default().basic(&t), RcaVerdict::Inconclusive);
    }

    #[test]
    fn intersection_identifies_the_shared_service() {
        // Service 5 is the only one on both alerting backends.
        let a = trends(1, &[(5, vec![1.0]), (2, vec![1.0])], vec![0.9]);
        let b = trends(2, &[(5, vec![1.0]), (3, vec![1.0])], vec![0.85]);
        let v = RootCauseAnalyzer::default().intersection(&[&a, &b]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(5)));
    }

    #[test]
    fn intersection_inconclusive_when_overlap_is_not_singleton() {
        let a = trends(1, &[(5, vec![1.0]), (6, vec![1.0])], vec![0.9]);
        let b = trends(2, &[(5, vec![1.0]), (6, vec![1.0])], vec![0.85]);
        assert_eq!(
            RootCauseAnalyzer::default().intersection(&[&a, &b]),
            RcaVerdict::Inconclusive
        );
    }

    #[test]
    fn analyze_falls_back_to_basic_on_hottest_backend() {
        // Intersection ambiguous (two shared services), but the hottest
        // backend's water level tracks service 6.
        let ramp = vec![100.0, 300.0, 500.0, 700.0];
        let flat = vec![100.0, 100.0, 101.0, 100.0];
        let a = trends(
            1,
            &[(5, flat.clone()), (6, ramp.clone())],
            vec![0.3, 0.5, 0.7, 0.9],
        );
        let b = trends(2, &[(5, flat.clone()), (6, flat)], vec![0.2, 0.2, 0.2, 0.2]);
        let v = RootCauseAnalyzer::default().analyze(&[&a, &b]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(6)));
    }

    #[test]
    fn analyze_single_backend_skips_intersection() {
        let t = trends(
            1,
            &[(9, vec![10.0, 20.0, 30.0])],
            vec![0.3, 0.6, 0.9],
        );
        let v = RootCauseAnalyzer::default().analyze(&[&t]);
        assert!(matches!(v, RcaVerdict::Pinpointed(s, _) if s == svc(9)));
        assert_eq!(
            RootCauseAnalyzer::default().analyze(&[]),
            RcaVerdict::Inconclusive
        );
    }

    #[test]
    fn mismatched_sample_lengths_are_skipped() {
        let t = trends(1, &[(1, vec![1.0, 2.0])], vec![0.1, 0.2, 0.3]);
        assert_eq!(RootCauseAnalyzer::default().basic(&t), RcaVerdict::Inconclusive);
    }

    fn baseline() -> BTreeMap<HopSite, f64> {
        [
            (HopSite::ClientNodeProxy, 0.3),
            (HopSite::Gateway, 0.5),
            (HopSite::App, 1.0),
        ]
        .into_iter()
        .collect()
    }

    /// Post-onset windows where the App hop inflates ~6× and the others
    /// wobble around baseline, plus the matching end-to-end totals.
    fn app_fault_windows() -> (Vec<HopWindowStats>, Vec<f64>) {
        let windows: Vec<HopWindowStats> = [
            [0.31, 0.52, 5.9],
            [0.29, 0.48, 6.2],
            [0.30, 0.51, 6.0],
            [0.32, 0.49, 6.1],
        ]
        .iter()
        .map(|&[np, gw, app]| {
            HopWindowStats::from_pairs(&[
                (HopSite::ClientNodeProxy, np),
                (HopSite::Gateway, gw),
                (HopSite::App, app),
            ])
        })
        .collect();
        let totals = windows
            .iter()
            .map(|w| w.hops.values().sum::<f64>())
            .collect();
        (windows, totals)
    }

    #[test]
    fn span_evidence_localizes_on_first_window() {
        let (windows, _) = app_fault_windows();
        let v = SpanEvidenceRca::default().detect(&baseline(), &windows);
        match v {
            SpanRcaVerdict::Localized { hop, windows, score } => {
                assert_eq!(hop, HopSite::App);
                assert_eq!(windows, 1, "standing baseline ⇒ one window suffices");
                assert!(score > 5.0);
            }
            SpanRcaVerdict::Inconclusive => panic!("expected localization"),
        }
    }

    #[test]
    fn span_evidence_ignores_calm_windows() {
        let calm = HopWindowStats::from_pairs(&[
            (HopSite::ClientNodeProxy, 0.31),
            (HopSite::Gateway, 0.49),
            (HopSite::App, 1.05),
        ]);
        assert_eq!(
            SpanEvidenceRca::default().detect(&baseline(), &[calm]),
            SpanRcaVerdict::Inconclusive
        );
    }

    #[test]
    fn trend_hop_needs_minimum_windows() {
        let (windows, totals) = app_fault_windows();
        let trend = TrendHopRca::default();
        assert_eq!(
            trend.detect(&windows[..2], &totals[..2]),
            SpanRcaVerdict::Inconclusive,
            "pearson undefined below min_windows"
        );
        match trend.detect(&windows, &totals) {
            SpanRcaVerdict::Localized { hop, windows, .. } => {
                assert_eq!(hop, HopSite::App);
                assert!(windows >= 3);
            }
            SpanRcaVerdict::Inconclusive => panic!("expected eventual localization"),
        }
    }

    #[test]
    fn span_evidence_beats_trend_head_to_head() {
        let (windows, totals) = app_fault_windows();
        let span = SpanEvidenceRca::default().detect(&baseline(), &windows);
        let trend = TrendHopRca::default().detect(&windows, &totals);
        let (SpanRcaVerdict::Localized { windows: ws, .. }, SpanRcaVerdict::Localized { windows: wt, .. }) =
            (span, trend)
        else {
            panic!("both must localize on this data");
        };
        assert!(ws < wt, "span evidence ({ws}) must detect before trend ({wt})");
    }

    #[test]
    fn config_rollout_is_ranked_before_hop_evidence() {
        let (windows, _) = app_fault_windows();
        let verdict = SpanEvidenceRca::default().detect(&baseline(), &windows);
        // Rollout in flight: config change leads the suspect list even
        // though a hop is localized.
        let causes = candidate_causes(&verdict, true);
        assert_eq!(causes.len(), 2);
        assert_eq!(causes[0], CandidateCause::ConfigRollout);
        assert!(matches!(causes[1], CandidateCause::Hop { hop: HopSite::App, .. }));
        // No rollout: the hop stands alone.
        let causes = candidate_causes(&verdict, false);
        assert_eq!(causes.len(), 1);
        assert!(matches!(causes[0], CandidateCause::Hop { .. }));
        // Inconclusive spans + rollout: config is still a suspect.
        let causes = candidate_causes(&SpanRcaVerdict::Inconclusive, true);
        assert_eq!(causes, vec![CandidateCause::ConfigRollout]);
        assert!(candidate_causes(&SpanRcaVerdict::Inconclusive, false).is_empty());
    }
}
