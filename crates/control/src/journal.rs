//! Write-ahead rollout journal: the crash-recovery substrate for the
//! control plane (DESIGN.md §15).
//!
//! Every rollout intent — begin, wave cut, ack, nack, rollback, converge —
//! is appended to the [`Journal`] *before* the corresponding southbound
//! push leaves the controller. A controller incarnation that crashes
//! mid-wave can therefore be replaced by a new incarnation that replays
//! the journal ([`Journal::replay`]), reconciles the result against the
//! fleet's reported running versions (anti-entropy), and either resumes
//! the in-flight wave or aborts to `last_known_good`.
//!
//! Three properties the property tests pin down:
//!
//! * **Write-ahead**: a target can only be reconstructed as exposed if the
//!   journal recorded the wave cut that pushed it. Crash-truncated
//!   prefixes may *over*-report exposure relative to what actually left
//!   the wire (the record lands before the push), which is safe — the
//!   recovery re-push is idempotent — but never under-report.
//! * **Idempotent replay**: records fold into [`ReplayState`] with
//!   max/union semantics, so replaying a journal twice equals once.
//! * **Bounded**: the record ring holds at most [`JOURNAL_RETAIN_CAP`]
//!   entries. Eviction folds the oldest record into a checkpoint
//!   [`ReplayState`] first, so `replay()` is invariant under eviction,
//!   and bumps an eviction counter that the digest covers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use canal_sim::invariant::Digest;
use canal_sim::time::SimTime;

use crate::versioned::TargetId;

/// Maximum journal records retained in memory. Older records are folded
/// into the checkpoint [`ReplayState`] and evicted; the retained window
/// comfortably covers any single in-flight rollout at region scale.
pub const JOURNAL_RETAIN_CAP: usize = 4096;

/// Which distribution plane a journaled rollout belongs to. The journal
/// itself is payload-agnostic — versions are opaque `u64`s — but recovery
/// needs to know which southbound store to reconcile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RolloutKind {
    /// Route/config table distribution (PR 5).
    Config,
    /// Certificate bundle rotation waves (PR 6).
    Cert,
    /// Compiled policy table cuts (PR 8).
    Policy,
}

impl RolloutKind {
    fn tag(self) -> u64 {
        match self {
            RolloutKind::Config => 1,
            RolloutKind::Cert => 2,
            RolloutKind::Policy => 3,
        }
    }
}

/// One journal entry. Every record carries the epoch of the controller
/// incarnation that wrote it and the sim time of the write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A new controller incarnation came up with this epoch.
    Epoch {
        /// The incarnation's fencing epoch (monotone across restarts).
        epoch: u64,
        /// When the incarnation started.
        at: SimTime,
    },
    /// A rollout began: version, fallback, and the full shuffled push
    /// order (the fleet roster at begin time).
    Begin {
        /// Writing incarnation.
        epoch: u64,
        /// Which distribution plane.
        kind: RolloutKind,
        /// Version being rolled out.
        version: u64,
        /// Converged fallback if this rollout aborts.
        last_known_good: u64,
        /// Seeded-shuffle push order over the whole fleet.
        order: Vec<TargetId>,
        /// Journal write time.
        at: SimTime,
    },
    /// A wave was cut: these targets are about to receive the push.
    /// Written *before* the push actions are handed south.
    WaveCut {
        /// Writing incarnation.
        epoch: u64,
        /// Version being pushed.
        version: u64,
        /// Wave ordinal within the rollout (0 = canary).
        wave: usize,
        /// Targets covered by this wave.
        targets: Vec<TargetId>,
        /// Journal write time.
        at: SimTime,
    },
    /// A target acknowledged a version.
    Ack {
        /// Writing incarnation.
        epoch: u64,
        /// Acking target.
        target: TargetId,
        /// Version acknowledged.
        version: u64,
        /// Journal write time.
        at: SimTime,
    },
    /// A target rejected a version.
    Nack {
        /// Writing incarnation.
        epoch: u64,
        /// Nacking target.
        target: TargetId,
        /// Version rejected.
        version: u64,
        /// Journal write time.
        at: SimTime,
    },
    /// The rollout of `version` was aborted; `targets` are being rolled
    /// back to `to`. Written *before* the rollback pushes leave.
    Rollback {
        /// Writing incarnation.
        epoch: u64,
        /// Version being abandoned.
        version: u64,
        /// Fallback version the fleet is being returned to.
        to: u64,
        /// Exposed targets that must be rolled back.
        targets: Vec<TargetId>,
        /// Journal write time.
        at: SimTime,
    },
    /// Every target acked `version`; it is the new `last_known_good`.
    Converge {
        /// Writing incarnation.
        epoch: u64,
        /// Newly converged version.
        version: u64,
        /// Journal write time.
        at: SimTime,
    },
}

impl JournalRecord {
    /// The epoch of the incarnation that wrote this record.
    pub fn epoch(&self) -> u64 {
        match self {
            JournalRecord::Epoch { epoch, .. }
            | JournalRecord::Begin { epoch, .. }
            | JournalRecord::WaveCut { epoch, .. }
            | JournalRecord::Ack { epoch, .. }
            | JournalRecord::Nack { epoch, .. }
            | JournalRecord::Rollback { epoch, .. }
            | JournalRecord::Converge { epoch, .. } => *epoch,
        }
    }

    /// Fold the record into a digest (order- and content-sensitive).
    pub fn fold_digest(&self, digest: &mut Digest) {
        match self {
            JournalRecord::Epoch { epoch, at } => {
                digest.write_u64(1).write_u64(*epoch).write_u64(at.as_nanos());
            }
            JournalRecord::Begin { epoch, kind, version, last_known_good, order, at } => {
                digest
                    .write_u64(2)
                    .write_u64(*epoch)
                    .write_u64(kind.tag())
                    .write_u64(*version)
                    .write_u64(*last_known_good)
                    .write_u64(at.as_nanos());
                for t in order {
                    digest.write_u64(u64::from(*t));
                }
            }
            JournalRecord::WaveCut { epoch, version, wave, targets, at } => {
                digest
                    .write_u64(3)
                    .write_u64(*epoch)
                    .write_u64(*version)
                    .write_u64(*wave as u64)
                    .write_u64(at.as_nanos());
                for t in targets {
                    digest.write_u64(u64::from(*t));
                }
            }
            JournalRecord::Ack { epoch, target, version, at } => {
                digest
                    .write_u64(4)
                    .write_u64(*epoch)
                    .write_u64(u64::from(*target))
                    .write_u64(*version)
                    .write_u64(at.as_nanos());
            }
            JournalRecord::Nack { epoch, target, version, at } => {
                digest
                    .write_u64(5)
                    .write_u64(*epoch)
                    .write_u64(u64::from(*target))
                    .write_u64(*version)
                    .write_u64(at.as_nanos());
            }
            JournalRecord::Rollback { epoch, version, to, targets, at } => {
                digest
                    .write_u64(6)
                    .write_u64(*epoch)
                    .write_u64(*version)
                    .write_u64(*to)
                    .write_u64(at.as_nanos());
                for t in targets {
                    digest.write_u64(u64::from(*t));
                }
            }
            JournalRecord::Converge { epoch, version, at } => {
                digest.write_u64(7).write_u64(*epoch).write_u64(*version).write_u64(at.as_nanos());
            }
        }
    }
}

/// The in-flight rollout reconstructed by replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayRollout {
    /// Which distribution plane the rollout belongs to.
    pub kind: Option<RolloutKind>,
    /// Version in flight.
    pub version: u64,
    /// Converged fallback recorded at begin.
    pub last_known_good: u64,
    /// Full push order (fleet roster at begin).
    pub order: Vec<TargetId>,
    /// Targets covered by a journaled wave cut (write-ahead: a superset
    /// of what actually left the wire before a crash).
    pub exposed: BTreeSet<TargetId>,
    /// Highest wave ordinal journaled.
    pub wave: usize,
    /// When the rollout began.
    pub started_at: SimTime,
}

/// A journaled rollback whose completion the old incarnation never
/// confirmed — the new incarnation must finish it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRollback {
    /// The abandoned version.
    pub version: u64,
    /// The version the fleet is being returned to.
    pub to: u64,
    /// Exposed targets that must end up running `to`.
    pub targets: Vec<TargetId>,
}

/// State reconstructed from a journal by [`Journal::replay`]. All record
/// application is idempotent (max/union semantics), so replaying a
/// journal — or any prefix twice — folds to the same state as once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayState {
    /// Highest epoch any record carries.
    pub epoch: u64,
    /// Highest converged version.
    pub last_good: u64,
    /// Highest version any Begin record carries (used to discard
    /// superseded rollback records on re-application).
    pub latest_begun: u64,
    /// The non-terminal rollout, if the journal ends mid-flight.
    pub in_flight: Option<ReplayRollout>,
    /// A journaled rollback not yet superseded by a later begin/converge.
    pub pending_rollback: Option<PendingRollback>,
    /// Highest version each target acknowledged (per the journal).
    pub acked: BTreeMap<TargetId, u64>,
    /// Highest version each target rejected (per the journal).
    pub nacked: BTreeMap<TargetId, u64>,
}

impl ReplayState {
    /// Fold one record into the state. Idempotent: applying the same
    /// record again (in order) leaves the state unchanged.
    pub fn apply(&mut self, rec: &JournalRecord) {
        match rec {
            JournalRecord::Epoch { epoch, .. } => {
                self.epoch = self.epoch.max(*epoch);
            }
            JournalRecord::Begin { epoch, kind, version, last_known_good, order, at } => {
                self.epoch = self.epoch.max(*epoch);
                if *version < self.latest_begun {
                    return; // stale re-application of a superseded rollout
                }
                self.latest_begun = *version;
                if self.in_flight.as_ref().map(|r| r.version) != Some(*version) {
                    self.in_flight = Some(ReplayRollout {
                        kind: Some(*kind),
                        version: *version,
                        last_known_good: *last_known_good,
                        order: order.clone(),
                        exposed: BTreeSet::new(),
                        wave: 0,
                        started_at: *at,
                    });
                }
                if self.pending_rollback.as_ref().is_some_and(|p| p.version < *version) {
                    self.pending_rollback = None;
                }
            }
            JournalRecord::WaveCut { epoch, version, wave, targets, .. } => {
                self.epoch = self.epoch.max(*epoch);
                if let Some(fl) = self.in_flight.as_mut() {
                    if fl.version == *version {
                        fl.wave = fl.wave.max(*wave);
                        fl.exposed.extend(targets.iter().copied());
                    }
                }
            }
            JournalRecord::Ack { epoch, target, version, .. } => {
                self.epoch = self.epoch.max(*epoch);
                let e = self.acked.entry(*target).or_insert(0);
                *e = (*e).max(*version);
            }
            JournalRecord::Nack { epoch, target, version, .. } => {
                self.epoch = self.epoch.max(*epoch);
                let e = self.nacked.entry(*target).or_insert(0);
                *e = (*e).max(*version);
            }
            JournalRecord::Rollback { epoch, version, to, targets, .. } => {
                self.epoch = self.epoch.max(*epoch);
                if *version < self.latest_begun
                    && self.in_flight.as_ref().map(|r| r.version) != Some(*version)
                {
                    return; // superseded by a later rollout
                }
                if self.in_flight.as_ref().map(|r| r.version) == Some(*version) {
                    self.in_flight = None;
                }
                self.pending_rollback = Some(PendingRollback {
                    version: *version,
                    to: *to,
                    targets: targets.clone(),
                });
            }
            JournalRecord::Converge { epoch, version, .. } => {
                self.epoch = self.epoch.max(*epoch);
                self.last_good = self.last_good.max(*version);
                if self.in_flight.as_ref().map(|r| r.version) == Some(*version) {
                    self.in_flight = None;
                }
                if self.pending_rollback.as_ref().is_some_and(|p| p.version <= *version) {
                    self.pending_rollback = None;
                }
            }
        }
    }

    /// Is the target exposed to a non-converged version per the journal?
    pub fn is_exposed(&self, target: TargetId) -> bool {
        self.in_flight.as_ref().is_some_and(|fl| fl.exposed.contains(&target))
    }

    /// Fold the replay state into a digest.
    pub fn fold_digest(&self, digest: &mut Digest) {
        digest
            .write_u64(self.epoch)
            .write_u64(self.last_good)
            .write_u64(self.latest_begun);
        match &self.in_flight {
            None => {
                digest.write_u64(0);
            }
            Some(fl) => {
                digest
                    .write_u64(1)
                    .write_u64(fl.kind.map_or(0, RolloutKind::tag))
                    .write_u64(fl.version)
                    .write_u64(fl.last_known_good)
                    .write_u64(fl.wave as u64)
                    .write_u64(fl.started_at.as_nanos());
                for t in &fl.order {
                    digest.write_u64(u64::from(*t));
                }
                for t in &fl.exposed {
                    digest.write_u64(u64::from(*t));
                }
            }
        }
        match &self.pending_rollback {
            None => {
                digest.write_u64(0);
            }
            Some(p) => {
                digest.write_u64(1).write_u64(p.version).write_u64(p.to);
                for t in &p.targets {
                    digest.write_u64(u64::from(*t));
                }
            }
        }
        for (t, v) in &self.acked {
            digest.write_u64(u64::from(*t)).write_u64(*v);
        }
        for (t, v) in &self.nacked {
            digest.write_u64(u64::from(*t)).write_u64(*v);
        }
    }
}

/// The deterministic, digest-covered, bounded write-ahead journal.
///
/// Records are appended by the controller *before* the corresponding
/// southbound action is handed out; a chained digest covers every record
/// ever appended (including evicted ones), so two journals with the same
/// chain value saw the same record stream.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Retained record ring, newest at the back. Bounded by
    /// [`JOURNAL_RETAIN_CAP`]; overflow folds into `checkpoint`.
    records: VecDeque<JournalRecord>,
    /// Replay state of everything evicted from the ring.
    checkpoint: ReplayState,
    /// How many records have been evicted into the checkpoint.
    evicted: u64,
    /// Total records ever appended.
    appended: u64,
    /// Chained digest over every record ever appended, in order.
    chain: u64,
    /// Highest epoch any appended record carried.
    epoch: u64,
}

impl Journal {
    /// An empty journal at epoch 0 (no incarnation has started).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record; write-ahead callers do this before acting on it.
    pub fn append(&mut self, rec: JournalRecord) {
        let mut d = Digest::new();
        d.write_u64(self.chain);
        rec.fold_digest(&mut d);
        self.chain = d.value();
        self.epoch = self.epoch.max(rec.epoch());
        self.appended += 1;
        self.records.push_back(rec);
        while self.records.len() > JOURNAL_RETAIN_CAP {
            if let Some(old) = self.records.pop_front() {
                self.checkpoint.apply(&old);
                self.evicted += 1;
            }
        }
    }

    /// Start a new controller incarnation: bump the fencing epoch past
    /// everything journaled and record it. Returns the new epoch.
    pub fn begin_incarnation(&mut self, at: SimTime) -> u64 {
        let epoch = self.epoch + 1;
        self.append(JournalRecord::Epoch { epoch, at });
        epoch
    }

    /// Replay checkpoint + retained records into a [`ReplayState`].
    pub fn replay(&self) -> ReplayState {
        let mut state = self.checkpoint.clone();
        for rec in &self.records {
            state.apply(rec);
        }
        state
    }

    /// A copy of this journal as a crash at record boundary `keep` would
    /// leave it: the checkpoint plus only the first `keep` retained
    /// records survive; the tail (records the old incarnation appended
    /// but never flushed) is lost, and the chain is recomputed over the
    /// surviving stream.
    pub fn truncated(&self, keep: usize) -> Journal {
        let mut out = Journal {
            records: VecDeque::new(),
            checkpoint: self.checkpoint.clone(),
            evicted: self.evicted,
            appended: self.evicted,
            chain: 0,
            epoch: self.checkpoint.epoch,
        };
        for rec in self.records.iter().take(keep) {
            out.append(rec.clone());
        }
        out
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &JournalRecord> {
        self.records.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was ever appended or retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.appended == 0
    }

    /// Records evicted into the checkpoint so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total records ever appended.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Chained digest over every record ever appended.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Highest epoch any appended record carried.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fold the journal — ring, checkpoint, counters, chain — into a
    /// digest.
    pub fn fold_digest(&self, digest: &mut Digest) {
        digest
            .write_u64(self.evicted)
            .write_u64(self.appended)
            .write_u64(self.chain)
            .write_u64(self.epoch)
            .write_u64(self.records.len() as u64);
        self.checkpoint.fold_digest(digest);
        for rec in &self.records {
            rec.fold_digest(digest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_sim::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn sample_stream() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Epoch { epoch: 1, at: t(0) },
            JournalRecord::Begin {
                epoch: 1,
                kind: RolloutKind::Config,
                version: 2,
                last_known_good: 1,
                order: vec![0, 1, 2, 3],
                at: t(1),
            },
            JournalRecord::WaveCut { epoch: 1, version: 2, wave: 0, targets: vec![0, 1], at: t(1) },
            JournalRecord::Ack { epoch: 1, target: 0, version: 2, at: t(2) },
            JournalRecord::Ack { epoch: 1, target: 1, version: 2, at: t(2) },
            JournalRecord::WaveCut { epoch: 1, version: 2, wave: 1, targets: vec![2, 3], at: t(3) },
            JournalRecord::Ack { epoch: 1, target: 2, version: 2, at: t(4) },
            JournalRecord::Ack { epoch: 1, target: 3, version: 2, at: t(4) },
            JournalRecord::Converge { epoch: 1, version: 2, at: t(5) },
        ]
    }

    #[test]
    fn replay_reconstructs_converged_rollout() {
        let mut j = Journal::new();
        for rec in sample_stream() {
            j.append(rec);
        }
        let state = j.replay();
        assert_eq!(state.epoch, 1);
        assert_eq!(state.last_good, 2);
        assert!(state.in_flight.is_none());
        assert!(state.pending_rollback.is_none());
        assert_eq!(state.acked.get(&3), Some(&2));
    }

    #[test]
    fn truncated_journal_reconstructs_in_flight_wave() {
        let mut j = Journal::new();
        for rec in sample_stream() {
            j.append(rec);
        }
        // Crash right after the second wave cut: targets 2,3 journaled as
        // exposed, their acks lost.
        let crashed = j.truncated(6);
        let state = crashed.replay();
        let fl = state.in_flight.as_ref().unwrap();
        assert_eq!(fl.version, 2);
        assert_eq!(fl.exposed, BTreeSet::from([0, 1, 2, 3]));
        assert_eq!(fl.wave, 1);
        assert_eq!(state.acked.get(&2), None);
        assert_eq!(state.last_good, 0);
    }

    #[test]
    fn rollback_record_survives_as_pending() {
        let mut j = Journal::new();
        j.append(JournalRecord::Epoch { epoch: 1, at: t(0) });
        j.append(JournalRecord::Begin {
            epoch: 1,
            kind: RolloutKind::Policy,
            version: 5,
            last_known_good: 4,
            order: vec![7, 8, 9],
            at: t(1),
        });
        j.append(JournalRecord::WaveCut {
            epoch: 1,
            version: 5,
            wave: 0,
            targets: vec![7],
            at: t(1),
        });
        j.append(JournalRecord::Nack { epoch: 1, target: 7, version: 5, at: t(2) });
        j.append(JournalRecord::Rollback {
            epoch: 1,
            version: 5,
            to: 4,
            targets: vec![7],
            at: t(2),
        });
        let state = j.replay();
        assert!(state.in_flight.is_none());
        let p = state.pending_rollback.as_ref().unwrap();
        assert_eq!((p.version, p.to), (5, 4));
        assert_eq!(p.targets, vec![7]);
        assert_eq!(state.nacked.get(&7), Some(&5));
    }

    #[test]
    fn begin_incarnation_is_monotone() {
        let mut j = Journal::new();
        let e1 = j.begin_incarnation(t(0));
        let e2 = j.begin_incarnation(t(9));
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(j.epoch(), 2);
    }

    #[test]
    fn eviction_preserves_replay_and_counts() {
        let mut j = Journal::new();
        j.append(JournalRecord::Epoch { epoch: 1, at: t(0) });
        // Enough converged singleton rollouts to overflow the ring.
        let rounds = (JOURNAL_RETAIN_CAP as u64 / 2) + 8;
        for v in 1..=rounds {
            j.append(JournalRecord::Begin {
                epoch: 1,
                kind: RolloutKind::Config,
                version: v,
                last_known_good: v.saturating_sub(1),
                order: vec![0],
                at: t(v),
            });
            j.append(JournalRecord::Converge { epoch: 1, version: v, at: t(v) });
        }
        assert!(j.evicted() > 0, "ring should have overflowed");
        assert_eq!(j.len(), JOURNAL_RETAIN_CAP);
        let state = j.replay();
        assert_eq!(state.last_good, rounds);
        assert!(state.in_flight.is_none());
        assert_eq!(j.appended(), 1 + rounds * 2);
    }

    #[test]
    fn chain_digest_is_order_sensitive() {
        let mut a = Journal::new();
        let mut b = Journal::new();
        let r1 = JournalRecord::Ack { epoch: 1, target: 0, version: 1, at: t(1) };
        let r2 = JournalRecord::Ack { epoch: 1, target: 1, version: 1, at: t(1) };
        a.append(r1.clone());
        a.append(r2.clone());
        b.append(r2);
        b.append(r1);
        assert_ne!(a.chain(), b.chain());
    }
}
