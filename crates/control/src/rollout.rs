//! Safe config rollout: canary waves, NACK-gated promotion, automatic
//! rollback.
//!
//! §2.2 names configuration as the mesh's primary outage vector; nothing a
//! health check can say after the fact un-ships a bad config that already
//! reached the fleet. This module is the control-plane half of the defense
//! (the data-plane half is `canal_gateway::config`'s fail-static
//! [`ActiveConfig`](../../canal_gateway/config/struct.ActiveConfig.html)):
//! a [`RolloutController`] drives each config version through
//!
//! ```text
//! validate ──→ canary wave ──→ health-gated promotion waves ──→ converged
//!     │             │                    │
//!     └─(invalid)   └──(NACK / health regression / ack timeout)──→ rollback
//!                                                          to last-known-good
//! ```
//!
//! * **Validate** — a version that fails controller-side validation is
//!   never pushed anywhere (blast radius 0).
//! * **Canary** — the first wave reaches a deliberately small slice of the
//!   fleet, chosen by a caller-supplied [`SimRng`] shuffle (the
//!   `seed-dataflow` lint rule polices how that generator is seeded).
//! * **Promotion** — waves grow exponentially, and each wave must (a) fully
//!   ack within `ack_timeout`, then (b) bake for `bake_time` with the
//!   health signal (error-rate / P99 deltas vs the pre-rollout baseline)
//!   inside bounds, before the next wave is pushed.
//! * **Rollback** — any NACK, health regression, or ack timeout rolls every
//!   exposed target back to the last-known-good version, automatically.
//!   Last-known-good is the last version the fleet *converged* on — it
//!   advances only when a rollout reaches `Converged`, so a version that
//!   was NACKed, rolled back, or never fully acked can never become a
//!   rollback target.
//! * **Partition awareness** — a target the control plane cannot reach
//!   ([`RolloutController::set_reachable`]) is *not* a NACK and never
//!   triggers an ack-timeout rollback: waves ack on their reachable
//!   members, promotion additionally requires a quorum fraction of pushed
//!   targets to be reachable (below quorum the wave **holds**), a
//!   partitioned gateway serves fail-static under a config lease
//!   ([`RolloutController::lease_valid`]), and when the partition heals a
//!   monotone catch-up push reconciles the stale target forward — never
//!   backward — so at most one converged active version exists fleet-wide.
//!
//! The controller is payload-agnostic: it decides *who* gets *which
//! version when*; the harness carries the actual `ConfigSpec` bytes and the
//! gateways' `ActiveConfig` performs the semantic validation whose verdict
//! comes back here as an ack or NACK through the owned
//! [`VersionedConfigStore`]. Everything runs on simulated time and folds
//! into a [`Digest`], so double runs are bit-identical.

use crate::versioned::{TargetId, VersionedConfigStore};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Wave sizing, bake times, and health-gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RolloutConfig {
    /// Targets in the canary wave (clamped to ≥ 1).
    pub canary_size: usize,
    /// Each promotion wave is this many times larger than the previous one.
    pub wave_growth: usize,
    /// How long a fully-acked wave bakes before the next wave is pushed.
    pub bake_time: SimDuration,
    /// A wave that has not fully acked within this window rolls back.
    pub ack_timeout: SimDuration,
    /// Health gate: max tolerated error-rate increase over baseline
    /// (absolute, e.g. 0.01 = one extra point of errors).
    pub max_error_delta: f64,
    /// Health gate: max tolerated P99 inflation over baseline (ratio).
    pub max_p99_inflation: f64,
    /// Partition gate: the fraction of *pushed* targets that must be
    /// reachable for the wave to ack and promote. Unreachable targets are
    /// not NACKs — below quorum the rollout *holds* instead of rolling back
    /// or promoting blind.
    pub reachable_quorum: f64,
    /// Config lease: how long a partitioned gateway's last-committed config
    /// is considered fresh while it serves fail-static
    /// ([`RolloutController::lease_valid`]).
    pub lease_duration: SimDuration,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            canary_size: 2,
            wave_growth: 4,
            bake_time: SimDuration::from_secs(30),
            ack_timeout: SimDuration::from_secs(10),
            max_error_delta: 0.01,
            max_p99_inflation: 1.5,
            reachable_quorum: 0.5,
            lease_duration: SimDuration::from_secs(60),
        }
    }
}

/// One observation of the health signal the promotion gate consumes
/// (sourced from `canal_telemetry` hop stats / `OverloadSignals`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSample {
    /// Fraction of requests erroring.
    pub error_rate: f64,
    /// Tail latency.
    pub p99: SimDuration,
}

impl HealthSample {
    /// A perfectly healthy sample (no errors, zero latency) — a neutral
    /// baseline. With a zero-p99 baseline the controller applies only the
    /// error-rate gate (there is no latency signal to measure inflation
    /// against), so real observed tail latencies do not trip a rollback.
    pub const HEALTHY: HealthSample = HealthSample {
        error_rate: 0.0,
        p99: SimDuration::ZERO,
    };
}

/// Where a rollout currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// No rollout in flight.
    Idle,
    /// Canary wave pushed; waiting for acks + bake.
    Canary,
    /// Promotion wave `wave` (1-based) pushed; waiting for acks + bake.
    Promoting {
        /// Which promotion wave is in flight.
        wave: usize,
    },
    /// Every target acked the new version.
    Converged,
    /// Rolled back to last-known-good; terminal for this version.
    RolledBack,
}

/// Why a rollout was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackReason {
    /// A target rejected the version (data-plane semantic validation).
    Nack {
        /// The rejecting target.
        target: TargetId,
    },
    /// The health signal regressed past the configured gate during bake.
    HealthRegression,
    /// The in-flight wave did not fully ack within `ack_timeout`.
    AckTimeout,
}

/// Terminal result of one driven version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutResult {
    /// Every target acked the version.
    Converged,
    /// Controller-side validation refused the version; nothing was pushed.
    FailedValidation,
    /// Exposed targets were rolled back to last-known-good.
    RolledBack(RollbackReason),
}

/// Audit-log entry for one driven version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutOutcome {
    /// The version driven.
    pub version: u64,
    /// The last-known-good version a rollback would (or did) restore.
    pub rolled_back_to: u64,
    /// When the rollout began.
    pub started_at: SimTime,
    /// When it reached a terminal phase.
    pub ended_at: SimTime,
    /// How it ended.
    pub result: RolloutResult,
    /// Waves pushed before the terminal phase (canary counts as one).
    pub waves_pushed: usize,
    /// Targets the version was ever pushed to — the blast-radius numerator.
    pub exposed_targets: usize,
}

/// What the caller must do to the data plane after a driving call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutAction {
    /// Push `version` to `targets` (stage + commit on each gateway).
    Push {
        /// The version to push.
        version: u64,
        /// Receiving targets.
        targets: Vec<TargetId>,
    },
    /// Roll `targets` back to version `to` (last-known-good).
    Rollback {
        /// The version to restore.
        to: u64,
        /// Every target the bad version was pushed to.
        targets: Vec<TargetId>,
    },
}

/// In-flight state of the version being driven.
#[derive(Debug)]
struct ActiveRollout {
    version: u64,
    last_known_good: u64,
    started_at: SimTime,
    baseline: HealthSample,
    /// Shuffled push order; `pushed` is how many of these have been pushed.
    order: Vec<TargetId>,
    pushed: usize,
    /// 0 = canary.
    wave: usize,
    wave_pushed_at: SimTime,
    /// Set when the current wave fully acked (bake starts).
    wave_acked_at: Option<SimTime>,
}

/// Drives config versions through validate → canary → health-gated
/// promotion → converged, with automatic rollback. Owns the
/// [`VersionedConfigStore`] whose ack/NACK state gates every transition.
#[derive(Debug)]
pub struct RolloutController {
    cfg: RolloutConfig,
    store: VersionedConfigStore,
    // lint:allow(bounded-state) reason=the fleet roster, registered at setup; add_target deduplicates
    targets: Vec<TargetId>,
    phase: RolloutPhase,
    active: Option<ActiveRollout>,
    // lint:allow(bounded-state) reason=one audit record per driven rollout; the run horizon bounds the log
    outcomes: Vec<RolloutOutcome>,
    rollbacks: u64,
    /// The last version the whole fleet converged on (0 = nothing yet).
    /// Advances only in the `Converged` branch of [`Self::tick`]; this is
    /// what a rollback restores, so a NACKed / rolled-back / half-pushed
    /// version can never become the rollback target.
    last_good: u64,
    /// Targets currently partitioned from the control plane. Unreachable
    /// ≠ NACK: membership gates quorum and leases, never rollback. At most
    /// one entry per registered target; removed again on heal.
    unreachable: BTreeSet<TargetId>,
    /// When each partitioned target was last reachable — the lease anchor.
    unreachable_since: BTreeMap<TargetId, SimTime>,
    /// Ticks an acked-but-quorum-starved wave spent holding instead of
    /// promoting or rolling back.
    partition_holds: u64,
    /// Monotone catch-up pushes emitted when partitions healed.
    catch_up_pushes: u64,
}

impl RolloutController {
    /// Controller over an empty fleet. `debounce` configures the owned
    /// store's update-coalescing window.
    pub fn new(cfg: RolloutConfig, debounce: SimDuration) -> Self {
        RolloutController {
            cfg,
            store: VersionedConfigStore::new(debounce),
            targets: Vec::new(),
            phase: RolloutPhase::Idle,
            active: None,
            outcomes: Vec::new(),
            rollbacks: 0,
            last_good: 0,
            unreachable: BTreeSet::new(),
            unreachable_since: BTreeMap::new(),
            partition_holds: 0,
            catch_up_pushes: 0,
        }
    }

    /// Register a data-plane target (a gateway backend / proxy).
    pub fn add_target(&mut self, target: TargetId) {
        if !self.targets.contains(&target) {
            self.targets.push(target);
            self.store.add_target(target);
        }
    }

    /// Begin driving a new version. `valid` is the controller-side
    /// validation verdict (an invalid version is never pushed — blast
    /// radius 0). `baseline` anchors the health gate; `rng` shuffles the
    /// push order so the canary slice is unbiased but reproducible.
    /// Returns the actions to apply (the canary push, or nothing).
    ///
    /// One rollout at a time: while a rollout is in flight
    /// ([`Self::in_flight`]), the call is refused — no version is
    /// allocated, no state changes, and no actions are returned. The
    /// alternative (silently abandoning the in-flight version) would leave
    /// exposed targets running it with no `Rollback` ever emitted and no
    /// [`RolloutOutcome`] recorded.
    pub fn begin(
        &mut self,
        now: SimTime,
        valid: bool,
        baseline: HealthSample,
        rng: &mut SimRng,
    ) -> Vec<RolloutAction> {
        if self.active.is_some() {
            return Vec::new();
        }
        let last_known_good = self.last_good;
        let version = self.store.record_change(now);
        self.store.flush_push(now);
        if !valid {
            self.phase = RolloutPhase::RolledBack;
            self.outcomes.push(RolloutOutcome {
                version,
                rolled_back_to: last_known_good,
                started_at: now,
                ended_at: now,
                result: RolloutResult::FailedValidation,
                waves_pushed: 0,
                exposed_targets: 0,
            });
            return Vec::new();
        }
        let mut order = self.targets.clone();
        rng.shuffle(&mut order);
        let canary = self.cfg.canary_size.max(1).min(order.len());
        let wave_targets: Vec<TargetId> = order[..canary].to_vec();
        self.active = Some(ActiveRollout {
            version,
            last_known_good,
            started_at: now,
            baseline,
            order,
            pushed: canary,
            wave: 0,
            wave_pushed_at: now,
            wave_acked_at: None,
        });
        self.phase = RolloutPhase::Canary;
        vec![RolloutAction::Push { version, targets: wave_targets }]
    }

    /// An exposed target acknowledged `version`.
    pub fn ack(&mut self, target: TargetId, version: u64, now: SimTime) -> bool {
        self.store.ack(target, version, now)
    }

    /// An exposed target rejected `version` (its `ActiveConfig` refused to
    /// commit). The next [`Self::tick`] rolls back.
    pub fn nack(&mut self, target: TargetId, version: u64) -> bool {
        self.store.nack(target, version)
    }

    /// Record a reachability transition for `target` — the state of the
    /// control-plane link, not of the target itself. Marking a target
    /// unreachable starts its config lease and takes it out of quorum;
    /// marking it reachable again ends the partition and emits the monotone
    /// catch-up that reconciles it: the in-flight version if the target's
    /// wave came and went while it was partitioned (with a fresh ack
    /// clock), else the fleet's last-known-good when the target's acked
    /// version is older. Catch-up only ever pushes *forward* — a healed
    /// target is never downgraded — so once every partition heals at most
    /// one converged active version exists fleet-wide.
    pub fn set_reachable(
        &mut self,
        target: TargetId,
        reachable: bool,
        now: SimTime,
    ) -> Vec<RolloutAction> {
        if !reachable {
            if self.unreachable.insert(target) {
                self.unreachable_since.insert(target, now);
            }
            return Vec::new();
        }
        if !self.unreachable.remove(&target) {
            return Vec::new();
        }
        self.unreachable_since.remove(&target);
        let acked = self.store.ack_state(target).map_or(0, |s| s.acked);
        if let Some(active) = &mut self.active {
            if active.order[..active.pushed].contains(&target) && acked < active.version {
                active.wave_pushed_at = now;
                self.catch_up_pushes += 1;
                return vec![RolloutAction::Push {
                    version: active.version,
                    targets: vec![target],
                }];
            }
        }
        if acked < self.last_good {
            self.catch_up_pushes += 1;
            return vec![RolloutAction::Push {
                version: self.last_good,
                targets: vec![target],
            }];
        }
        Vec::new()
    }

    /// Whether `target`'s fail-static config lease is still fresh at `now`:
    /// a reachable target always holds a valid lease; a partitioned
    /// target's lease expires `lease_duration` after it was last reachable.
    /// An expired lease does not stop fail-static serving — it marks the
    /// served config as stale for operators and the drill gate.
    pub fn lease_valid(&self, target: TargetId, now: SimTime) -> bool {
        match self.unreachable_since.get(&target) {
            None => true,
            Some(&since) => now.since(since) < self.cfg.lease_duration,
        }
    }

    /// Advance the state machine at `now` with the latest health
    /// observation (if one is available this tick). Returns the actions the
    /// caller must apply to the data plane.
    pub fn tick(&mut self, now: SimTime, health: Option<HealthSample>) -> Vec<RolloutAction> {
        let Some(active) = &mut self.active else {
            return Vec::new();
        };
        // 1. A NACK of the in-flight version anywhere ends the rollout
        //    immediately. Stale NACKs from an earlier, already-rolled-back
        //    version must not poison later rollouts.
        let version = active.version;
        let nacked = self.store.nacked_targets().into_iter().find(|&t| {
            self.store
                .ack_state(t)
                .and_then(|s| s.nacked)
                .is_some_and(|v| v >= version)
        });
        if let Some(target) = nacked {
            return self.roll_back(now, RollbackReason::Nack { target });
        }
        // 2. Wave ack progress. Unreachable targets neither ack nor NACK:
        //    the wave acks once every *reachable* pushed target acked, and
        //    promotion additionally requires the reachable fraction of
        //    pushed targets to meet quorum. A quorum-starved wave holds —
        //    the ack timeout fires only when a reachable target failed to
        //    ack (a real fault, not a partition).
        if active.wave_acked_at.is_none() {
            let pushed_slice = &active.order[..active.pushed];
            let reachable: Vec<TargetId> = pushed_slice
                .iter()
                .copied()
                .filter(|t| !self.unreachable.contains(t))
                .collect();
            let reachable_acked = reachable.iter().all(|&t| {
                self.store
                    .ack_state(t)
                    .is_some_and(|s| s.acked >= active.version)
            });
            let quorum_met = reachable.len() as f64
                >= self.cfg.reachable_quorum * pushed_slice.len() as f64;
            if reachable_acked && quorum_met {
                active.wave_acked_at = Some(now);
            } else if now.since(active.wave_pushed_at) >= self.cfg.ack_timeout {
                if !reachable_acked {
                    return self.roll_back(now, RollbackReason::AckTimeout);
                }
                self.partition_holds += 1;
            }
        }
        // 3. Health gate: any regression past the thresholds while exposed.
        //    A zero baseline p99 means the caller had no latency signal to
        //    anchor the gate (e.g. no traffic yet), so only the error-rate
        //    gate applies — otherwise any real tail latency would read as
        //    infinite inflation and roll back a healthy rollout.
        if let Some(h) = health {
            let err_breach = h.error_rate > active.baseline.error_rate + self.cfg.max_error_delta;
            let p99_breach = active.baseline.p99 > SimDuration::ZERO
                && h.p99.as_nanos() as f64
                    > active.baseline.p99.as_nanos() as f64 * self.cfg.max_p99_inflation;
            if err_breach || p99_breach {
                return self.roll_back(now, RollbackReason::HealthRegression);
            }
        }
        // 4. Fully-acked wave that finished baking promotes the next wave.
        if let Some(acked_at) = active.wave_acked_at {
            if now.since(acked_at) >= self.cfg.bake_time {
                if active.pushed == active.order.len() {
                    // Nothing left to push: converged. This version is now
                    // the fleet's last-known-good.
                    self.last_good = active.version;
                    let outcome = RolloutOutcome {
                        version: active.version,
                        rolled_back_to: active.last_known_good,
                        started_at: active.started_at,
                        ended_at: now,
                        result: RolloutResult::Converged,
                        waves_pushed: active.wave + 1,
                        exposed_targets: active.pushed,
                    };
                    self.outcomes.push(outcome);
                    self.active = None;
                    self.phase = RolloutPhase::Converged;
                    return Vec::new();
                }
                let prev = active.pushed;
                let next_size = (prev * self.cfg.wave_growth.max(2))
                    .min(active.order.len())
                    - prev;
                let next_size = next_size.max(1);
                let end = (prev + next_size).min(active.order.len());
                let targets: Vec<TargetId> = active.order[prev..end].to_vec();
                active.pushed = end;
                active.wave += 1;
                active.wave_pushed_at = now;
                active.wave_acked_at = None;
                let version = active.version;
                self.phase = RolloutPhase::Promoting { wave: active.wave };
                return vec![RolloutAction::Push { version, targets }];
            }
        }
        Vec::new()
    }

    fn roll_back(&mut self, now: SimTime, reason: RollbackReason) -> Vec<RolloutAction> {
        let Some(active) = self.active.take() else {
            return Vec::new();
        };
        self.rollbacks += 1;
        self.phase = RolloutPhase::RolledBack;
        self.outcomes.push(RolloutOutcome {
            version: active.version,
            rolled_back_to: active.last_known_good,
            started_at: active.started_at,
            ended_at: now,
            result: RolloutResult::RolledBack(reason),
            waves_pushed: active.wave + 1,
            exposed_targets: active.pushed,
        });
        vec![RolloutAction::Rollback {
            to: active.last_known_good,
            targets: active.order[..active.pushed].to_vec(),
        }]
    }

    /// Current phase.
    pub fn phase(&self) -> RolloutPhase {
        self.phase
    }

    /// Whether a config change is in flight (pushed somewhere, not yet
    /// terminal) — the "suspect dimension" the monitor/RCA consume.
    pub fn in_flight(&self) -> bool {
        self.active.is_some()
    }

    /// Targets the current version has been pushed to so far.
    pub fn exposed_count(&self) -> usize {
        self.active.as_ref().map_or(0, |a| a.pushed)
    }

    /// Lifetime automatic rollbacks.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Whether the control plane can currently reach `target`.
    pub fn is_reachable(&self, target: TargetId) -> bool {
        !self.unreachable.contains(&target)
    }

    /// How many registered targets are currently partitioned.
    pub fn unreachable_count(&self) -> usize {
        self.unreachable.len()
    }

    /// Ticks a fully-acked-but-quorum-starved wave spent holding.
    pub fn partition_holds(&self) -> u64 {
        self.partition_holds
    }

    /// Monotone catch-up pushes emitted on partition heal.
    pub fn catch_up_pushes(&self) -> u64 {
        self.catch_up_pushes
    }

    /// The last version the whole fleet converged on — what a rollback
    /// restores (0 until any rollout converges).
    pub fn last_known_good(&self) -> u64 {
        self.last_good
    }

    /// The per-version audit log, oldest first.
    pub fn outcomes(&self) -> &[RolloutOutcome] {
        &self.outcomes
    }

    /// The owned ack/NACK store (read-only).
    pub fn store(&self) -> &VersionedConfigStore {
        &self.store
    }

    /// Fold phase, fleet roster, in-flight rollout, counters, and the
    /// audit log into `d` — the experiment's double-run bit-identity
    /// covers the whole state machine.
    pub fn fold_digest(&self, d: &mut Digest) {
        let phase_tag = match self.phase {
            RolloutPhase::Idle => 0,
            RolloutPhase::Canary => 1,
            RolloutPhase::Promoting { wave } => 100 + wave as u64,
            RolloutPhase::Converged => 2,
            RolloutPhase::RolledBack => 3,
        };
        d.write_u64(phase_tag);
        d.write_u64(self.store.version());
        d.write_u64(self.targets.len() as u64);
        for &t in &self.targets {
            d.write_u64(t as u64);
        }
        match &self.active {
            None => {
                d.write_u64(0);
            }
            Some(a) => {
                d.write_u64(1)
                    .write_u64(a.version)
                    .write_u64(a.last_known_good)
                    .write_u64(a.started_at.as_nanos())
                    .write_f64(a.baseline.error_rate)
                    .write_u64(a.baseline.p99.as_nanos())
                    .write_u64(a.order.len() as u64);
                for &t in &a.order {
                    d.write_u64(t as u64);
                }
                d.write_u64(a.pushed as u64)
                    .write_u64(a.wave as u64)
                    .write_u64(a.wave_pushed_at.as_nanos())
                    .write_u64(a.wave_acked_at.map_or(u64::MAX, |t| t.as_nanos()));
            }
        }
        d.write_u64(self.last_good);
        d.write_u64(self.unreachable.len() as u64);
        for &t in &self.unreachable {
            d.write_u64(t as u64);
        }
        for (&t, &since) in &self.unreachable_since {
            d.write_u64(t as u64).write_u64(since.as_nanos());
        }
        d.write_u64(self.partition_holds);
        d.write_u64(self.catch_up_pushes);
        d.write_u64(self.rollbacks);
        d.write_u64(self.outcomes.len() as u64);
        for o in &self.outcomes {
            d.write_u64(o.version);
            d.write_u64(o.rolled_back_to);
            d.write_u64(o.started_at.as_nanos());
            d.write_u64(o.ended_at.as_nanos());
            d.write_u64(match o.result {
                RolloutResult::Converged => 1,
                RolloutResult::FailedValidation => 2,
                RolloutResult::RolledBack(RollbackReason::Nack { target }) => {
                    1000 + target as u64
                }
                RolloutResult::RolledBack(RollbackReason::HealthRegression) => 3,
                RolloutResult::RolledBack(RollbackReason::AckTimeout) => 4,
            });
            d.write_u64(o.waves_pushed as u64);
            d.write_u64(o.exposed_targets as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    fn controller(n: u32) -> RolloutController {
        let mut c = RolloutController::new(RolloutConfig::default(), SimDuration::ZERO);
        for t in 0..n {
            c.add_target(t);
        }
        c
    }

    /// Apply Push actions as instant acks (a healthy fleet).
    fn ack_all(c: &mut RolloutController, actions: &[RolloutAction], now: SimTime) {
        for a in actions {
            if let RolloutAction::Push { version, targets } = a {
                for &t in targets {
                    assert!(c.ack(t, *version, now));
                }
            }
        }
    }

    /// Begin a rollout at `now` and ack/bake it through to convergence,
    /// collecting pushed wave sizes. Returns the time convergence landed.
    fn drive_to_converged(
        c: &mut RolloutController,
        rng: &mut SimRng,
        mut now: SimTime,
        wave_sizes: &mut Vec<usize>,
    ) -> SimTime {
        let mut actions = c.begin(now, true, HealthSample::HEALTHY, rng);
        let mut guard = 0;
        while c.phase() != RolloutPhase::Converged {
            for a in &actions {
                if let RolloutAction::Push { targets, .. } = a {
                    wave_sizes.push(targets.len());
                }
            }
            ack_all(c, &actions, now);
            now += SimDuration::from_secs(1);
            // One tick to latch acks, then jump past the bake window.
            actions = c.tick(now, Some(HealthSample::HEALTHY));
            if actions.is_empty() && c.phase() != RolloutPhase::Converged {
                now += RolloutConfig::default().bake_time;
                actions = c.tick(now, Some(HealthSample::HEALTHY));
            }
            guard += 1;
            assert!(guard < 50, "rollout did not converge");
        }
        now
    }

    #[test]
    fn healthy_rollout_converges_in_exponential_waves() {
        let mut c = controller(16);
        let mut rng = SimRng::seed(7);
        let mut wave_sizes = Vec::new();
        drive_to_converged(&mut c, &mut rng, T(0), &mut wave_sizes);
        // canary 2, then 6 (to reach 8 = 2*4), then 8 (to reach 16... capped)
        assert_eq!(wave_sizes.iter().sum::<usize>(), 16);
        assert_eq!(wave_sizes[0], 2, "canary wave is small");
        assert!(wave_sizes.windows(2).all(|w| w[1] >= w[0]), "waves grow");
        assert!(c.store().converged());
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.result, RolloutResult::Converged);
        assert_eq!(o.exposed_targets, 16);
    }

    #[test]
    fn nack_rolls_back_and_poison_never_reaches_second_wave() {
        let mut c = controller(12);
        let mut rng = SimRng::seed(42);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets } = &actions[0] else {
            panic!("expected canary push");
        };
        assert_eq!(targets.len(), 2);
        // The first canary target's ActiveConfig rejects the config.
        c.nack(targets[0], *version);
        c.ack(targets[1], *version, T(1));
        let out = c.tick(T(1), None);
        // Rollback covers exactly the exposed canary targets.
        assert_eq!(out.len(), 1);
        let RolloutAction::Rollback { to, targets: rb } = &out[0] else {
            panic!("expected rollback");
        };
        assert_eq!(*to, 0, "back to last-known-good");
        assert_eq!(rb.len(), 2, "blast radius capped at the canary wave");
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        // No second wave is ever pushed for this version.
        for later in 1..20u64 {
            assert!(c.tick(T(1 + later), None).is_empty());
        }
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.waves_pushed, 1);
        assert_eq!(o.exposed_targets, 2);
        assert!(matches!(o.result, RolloutResult::RolledBack(RollbackReason::Nack { .. })));
        assert_eq!(c.rollbacks(), 1);
    }

    #[test]
    fn last_known_good_is_last_converged_version_not_last_allocated() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(17);
        // v1 converges fleet-wide: it becomes last-known-good.
        let now = drive_to_converged(&mut c, &mut rng, T(0), &mut Vec::new());
        assert_eq!(c.last_known_good(), 1);
        // v2 is poisoned: the canary NACKs it and it rolls back.
        let a = c.begin(now, true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets }) = a.first() else {
            panic!("expected canary push");
        };
        assert_eq!(*version, 2);
        c.nack(targets[0], *version);
        let out = c.tick(now + SimDuration::from_secs(1), None);
        let Some(RolloutAction::Rollback { to, .. }) = out.first() else {
            panic!("expected rollback");
        };
        assert_eq!(*to, 1, "rollback restores the converged v1");
        assert_eq!(c.last_known_good(), 1, "a rolled-back v2 is not good");
        // v3 begins after the failed v2 and dies to an ack timeout. Its
        // rollback must also restore v1 — never the rejected v2.
        let t3 = now + SimDuration::from_secs(5);
        let a3 = c.begin(t3, true, HealthSample::HEALTHY, &mut rng);
        assert!(matches!(a3.first(), Some(RolloutAction::Push { version, .. }) if *version == 3));
        let out3 = c.tick(t3 + RolloutConfig::default().ack_timeout, None);
        let Some(RolloutAction::Rollback { to, .. }) = out3.first() else {
            panic!("expected ack-timeout rollback");
        };
        assert_eq!(*to, 1, "never roll 'back' to the poisoned v2");
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.rolled_back_to, 1);
    }

    #[test]
    fn begin_is_refused_while_a_rollout_is_in_flight() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(23);
        let first = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        assert_eq!(first.len(), 1);
        let version = c.store().version();
        assert_eq!(c.phase(), RolloutPhase::Canary);
        // A second begin mid-flight is refused outright: no actions, no new
        // version, and the in-flight rollout is untouched.
        let second = c.begin(T(1), true, HealthSample::HEALTHY, &mut rng);
        assert!(second.is_empty(), "overlapping begin must be refused");
        assert_eq!(c.store().version(), version, "no version allocated");
        assert_eq!(c.phase(), RolloutPhase::Canary);
        assert!(c.in_flight());
        // The original rollout still completes normally.
        ack_all(&mut c, &first, T(1));
        c.tick(T(2), None);
        assert!(c.outcomes().is_empty(), "in-flight rollout was not abandoned");
    }

    #[test]
    fn zero_p99_baseline_skips_the_inflation_gate() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(29);
        // HEALTHY baseline has p99 = 0: no latency signal to gate on.
        let a = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        ack_all(&mut c, &a, T(1));
        // Real observed tail latency must not read as infinite inflation.
        let observed = HealthSample {
            error_rate: 0.0,
            p99: SimDuration::from_millis(20),
        };
        let out = c.tick(T(1), Some(observed));
        assert!(
            !matches!(out.first(), Some(RolloutAction::Rollback { .. })),
            "a zero baseline must disable the p99 gate, not weaponize it"
        );
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
        // The error-rate gate still applies with a zero baseline.
        let erroring = HealthSample {
            error_rate: 0.5,
            p99: SimDuration::ZERO,
        };
        let out = c.tick(T(2), Some(erroring));
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
    }

    #[test]
    fn stale_nack_does_not_poison_the_next_rollout() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(11);
        // First rollout dies to a canary NACK.
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets }) = actions.first() else {
            panic!("expected canary push");
        };
        c.nack(targets[0], *version);
        assert!(matches!(
            c.tick(T(1), None).first(),
            Some(RolloutAction::Rollback { .. })
        ));
        // The rejecting target never acks anything newer, so its NACK is
        // still recorded in the store — but it is for the dead version and
        // must not shoot down the next, healthy rollout.
        let actions = c.begin(T(10), true, HealthSample::HEALTHY, &mut rng);
        assert_eq!(c.phase(), RolloutPhase::Canary);
        ack_all(&mut c, &actions, T(11));
        let out = c.tick(T(11), Some(HealthSample::HEALTHY));
        assert!(
            !matches!(out.first(), Some(RolloutAction::Rollback { .. })),
            "a stale NACK from the rolled-back version must be ignored"
        );
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
    }

    #[test]
    fn health_regression_during_bake_rolls_back() {
        let mut c = controller(12);
        let mut rng = SimRng::seed(3);
        let baseline = HealthSample {
            error_rate: 0.001,
            p99: SimDuration::from_millis(10),
        };
        let actions = c.begin(T(0), true, baseline, &mut rng);
        ack_all(&mut c, &actions, T(1));
        assert!(c.tick(T(1), Some(baseline)).is_empty(), "baking");
        // Mid-bake the canary's error rate spikes past the gate.
        let sick = HealthSample {
            error_rate: 0.05,
            p99: SimDuration::from_millis(10),
        };
        let out = c.tick(T(5), Some(sick));
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::HealthRegression));
        assert_eq!(o.exposed_targets, 2, "only the canary ever saw it");
        // P99 inflation alone also trips the gate.
        let mut c2 = controller(12);
        let a2 = c2.begin(T(0), true, baseline, &mut rng);
        ack_all(&mut c2, &a2, T(1));
        let slow = HealthSample {
            error_rate: 0.001,
            p99: SimDuration::from_millis(30),
        };
        let out2 = c2.tick(T(2), Some(slow));
        assert!(matches!(out2.first(), Some(RolloutAction::Rollback { .. })));
    }

    #[test]
    fn ack_timeout_rolls_back() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(9);
        let _ = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        // Nobody acks (pushes blocked): past ack_timeout the wave aborts.
        assert!(c.tick(T(5), None).is_empty(), "still inside the window");
        let out = c.tick(T(11), None);
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::AckTimeout));
    }

    #[test]
    fn invalid_version_is_never_pushed() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(1);
        let actions = c.begin(T(0), false, HealthSample::HEALTHY, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.result, RolloutResult::FailedValidation);
        assert_eq!(o.exposed_targets, 0, "blast radius zero");
    }

    #[test]
    fn digest_is_reproducible() {
        let run = || {
            let mut c = controller(12);
            let mut rng = SimRng::seed(5);
            let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
            if let Some(RolloutAction::Push { version, targets }) = actions.first() {
                c.nack(targets[0], *version);
            }
            c.tick(T(1), None);
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unreachable_target_is_not_a_nack() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(31);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets }) = actions.first() else {
            panic!("expected canary push");
        };
        // One canary target partitions before it can ack; the other acks.
        // Quorum (0.5 of 2) is met by the reachable half, so the wave acks
        // and nothing ever rolls back — a partition is not a NACK.
        assert!(c.set_reachable(targets[0], false, T(0)).is_empty());
        c.ack(targets[1], *version, T(1));
        let out = c.tick(T(11), None); // well past ack_timeout
        assert!(!matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
        assert_eq!(c.rollbacks(), 0);
        assert_eq!(c.unreachable_count(), 1);
        assert!(!c.is_reachable(targets[0]));
    }

    #[test]
    fn reachable_ack_failure_still_times_out() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(33);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        // One target is partitioned, but the *reachable* one also fails to
        // ack — that is a real fault and must still roll back on timeout.
        c.set_reachable(targets[0], false, T(0));
        let out = c.tick(T(11), None);
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().last().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::AckTimeout));
    }

    #[test]
    fn quorum_starved_wave_holds_instead_of_rolling_back() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(37);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        // The whole canary wave partitions: every reachable target (none)
        // has acked, but quorum is starved. The rollout holds — no rollback,
        // no blind promotion — until the partition resolves.
        for &t in targets {
            c.set_reachable(t, false, T(0));
        }
        for s in 1..30 {
            assert!(c.tick(T(s), None).is_empty());
        }
        assert!(c.in_flight(), "held, not rolled back or promoted");
        assert!(c.partition_holds() > 0);
        assert_eq!(c.rollbacks(), 0);
    }

    #[test]
    fn mid_flight_heal_repushes_the_inflight_version() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(43);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets }) = actions.first() else {
            panic!("expected canary push");
        };
        let (lost, ok) = (targets[0], targets[1]);
        c.set_reachable(lost, false, T(0));
        c.ack(ok, *version, T(1));
        assert!(c.tick(T(2), None).is_empty(), "wave acks on the reachable half");
        // The partition heals mid-flight: the in-flight version is re-pushed
        // to the healed target with a fresh ack clock (a catch-up push).
        let heal = c.set_reachable(lost, true, T(3));
        assert_eq!(
            heal,
            vec![RolloutAction::Push { version: *version, targets: vec![lost] }]
        );
        assert_eq!(c.catch_up_pushes(), 1);
        assert!(c.is_reachable(lost));
    }

    #[test]
    fn heal_catch_up_converges_to_exactly_one_version() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(41);
        // v1 converges fleet-wide, then target 3 partitions.
        let now = drive_to_converged(&mut c, &mut rng, T(0), &mut Vec::new());
        assert_eq!(c.last_known_good(), 1);
        let skip = 3u32;
        c.set_reachable(skip, false, now);
        // v2 rolls out and converges on the reachable fleet; the
        // partitioned target silently misses every push.
        let mut t = now;
        let mut actions = c.begin(t, true, HealthSample::HEALTHY, &mut rng);
        let mut guard = 0;
        while c.phase() != RolloutPhase::Converged {
            for a in &actions {
                if let RolloutAction::Push { version, targets } = a {
                    for &tg in targets {
                        if tg != skip {
                            c.ack(tg, *version, t);
                        }
                    }
                }
            }
            t += SimDuration::from_secs(1);
            actions = c.tick(t, Some(HealthSample::HEALTHY));
            if actions.is_empty() && c.phase() != RolloutPhase::Converged {
                t += RolloutConfig::default().bake_time;
                actions = c.tick(t, Some(HealthSample::HEALTHY));
            }
            guard += 1;
            assert!(guard < 50, "partition-tolerant rollout did not converge");
        }
        assert_eq!(c.last_known_good(), 2);
        // Heal: exactly one monotone catch-up push of last-known-good.
        let heal = c.set_reachable(skip, true, t);
        assert_eq!(heal, vec![RolloutAction::Push { version: 2, targets: vec![skip] }]);
        assert_eq!(c.catch_up_pushes(), 1);
        c.ack(skip, 2, t);
        assert!(c.store().converged(), "one converged version fleet-wide");
        // Healing an already-reachable target is a no-op.
        assert!(c.set_reachable(skip, true, t).is_empty());
        assert_eq!(c.catch_up_pushes(), 1);
    }

    #[test]
    fn config_lease_expires_after_lease_duration() {
        let mut c = controller(4);
        assert!(c.lease_valid(0, T(0)), "reachable targets always hold a lease");
        c.set_reachable(0, false, T(10));
        assert!(c.lease_valid(0, T(30)), "fresh within the lease window");
        assert!(!c.lease_valid(0, T(90)), "stale past lease_duration");
        c.set_reachable(0, true, T(95));
        assert!(c.lease_valid(0, T(95)), "heal restores the lease");
    }

    #[test]
    fn partition_state_reaches_the_digest() {
        let fold = |c: &RolloutController| {
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        let mut c = controller(4);
        let before = fold(&c);
        c.set_reachable(2, false, T(5));
        assert_ne!(before, fold(&c), "partition membership is digested");
    }
}
