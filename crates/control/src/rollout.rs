//! Safe config rollout: canary waves, NACK-gated promotion, automatic
//! rollback.
//!
//! §2.2 names configuration as the mesh's primary outage vector; nothing a
//! health check can say after the fact un-ships a bad config that already
//! reached the fleet. This module is the control-plane half of the defense
//! (the data-plane half is `canal_gateway::config`'s fail-static
//! [`ActiveConfig`](../../canal_gateway/config/struct.ActiveConfig.html)):
//! a [`RolloutController`] drives each config version through
//!
//! ```text
//! validate ──→ canary wave ──→ health-gated promotion waves ──→ converged
//!     │             │                    │
//!     └─(invalid)   └──(NACK / health regression / ack timeout)──→ rollback
//!                                                          to last-known-good
//! ```
//!
//! * **Validate** — a version that fails controller-side validation is
//!   never pushed anywhere (blast radius 0).
//! * **Canary** — the first wave reaches a deliberately small slice of the
//!   fleet, chosen by a caller-supplied [`SimRng`] shuffle (the
//!   `seed-dataflow` lint rule polices how that generator is seeded).
//! * **Promotion** — waves grow exponentially, and each wave must (a) fully
//!   ack within `ack_timeout`, then (b) bake for `bake_time` with the
//!   health signal (error-rate / P99 deltas vs the pre-rollout baseline)
//!   inside bounds, before the next wave is pushed.
//! * **Rollback** — any NACK, health regression, or ack timeout rolls every
//!   exposed target back to the last-known-good version, automatically.
//!   Last-known-good is the last version the fleet *converged* on — it
//!   advances only when a rollout reaches `Converged`, so a version that
//!   was NACKed, rolled back, or never fully acked can never become a
//!   rollback target.
//! * **Partition awareness** — a target the control plane cannot reach
//!   ([`RolloutController::set_reachable`]) is *not* a NACK and never
//!   triggers an ack-timeout rollback: waves ack on their reachable
//!   members, promotion additionally requires a quorum fraction of pushed
//!   targets to be reachable (below quorum the wave **holds**), a
//!   partitioned gateway serves fail-static under a config lease
//!   ([`RolloutController::lease_valid`]), and when the partition heals a
//!   monotone catch-up push reconciles the stale target forward — never
//!   backward — so at most one converged active version exists fleet-wide.
//!
//! The controller is payload-agnostic: it decides *who* gets *which
//! version when*; the harness carries the actual `ConfigSpec` bytes and the
//! gateways' `ActiveConfig` performs the semantic validation whose verdict
//! comes back here as an ack or NACK through the owned
//! [`VersionedConfigStore`]. Everything runs on simulated time and folds
//! into a [`Digest`], so double runs are bit-identical.

use crate::journal::{Journal, JournalRecord, ReplayState, RolloutKind};
use crate::versioned::{TargetId, VersionedConfigStore};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Audit-log retention: terminal [`RolloutOutcome`]s kept in memory. A
/// region controller drives rollouts for months; the log is a ring with
/// an eviction counter, not an unbounded `Vec`.
pub const ROLLOUT_OUTCOMES_RETAIN_CAP: usize = 256;

/// Wave sizing, bake times, and health-gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RolloutConfig {
    /// Targets in the canary wave (clamped to ≥ 1).
    pub canary_size: usize,
    /// Each promotion wave is this many times larger than the previous one.
    pub wave_growth: usize,
    /// How long a fully-acked wave bakes before the next wave is pushed.
    pub bake_time: SimDuration,
    /// A wave that has not fully acked within this window rolls back.
    pub ack_timeout: SimDuration,
    /// Health gate: max tolerated error-rate increase over baseline
    /// (absolute, e.g. 0.01 = one extra point of errors).
    pub max_error_delta: f64,
    /// Health gate: max tolerated P99 inflation over baseline (ratio).
    pub max_p99_inflation: f64,
    /// Partition gate: the fraction of *pushed* targets that must be
    /// reachable for the wave to ack and promote. Unreachable targets are
    /// not NACKs — below quorum the rollout *holds* instead of rolling back
    /// or promoting blind.
    pub reachable_quorum: f64,
    /// Config lease: how long a partitioned gateway's last-committed config
    /// is considered fresh while it serves fail-static
    /// ([`RolloutController::lease_valid`]).
    pub lease_duration: SimDuration,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            canary_size: 2,
            wave_growth: 4,
            bake_time: SimDuration::from_secs(30),
            ack_timeout: SimDuration::from_secs(10),
            max_error_delta: 0.01,
            max_p99_inflation: 1.5,
            reachable_quorum: 0.5,
            lease_duration: SimDuration::from_secs(60),
        }
    }
}

/// One observation of the health signal the promotion gate consumes
/// (sourced from `canal_telemetry` hop stats / `OverloadSignals`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSample {
    /// Fraction of requests erroring.
    pub error_rate: f64,
    /// Tail latency.
    pub p99: SimDuration,
}

impl HealthSample {
    /// A perfectly healthy sample (no errors, zero latency) — a neutral
    /// baseline. With a zero-p99 baseline the controller applies only the
    /// error-rate gate (there is no latency signal to measure inflation
    /// against), so real observed tail latencies do not trip a rollback.
    pub const HEALTHY: HealthSample = HealthSample {
        error_rate: 0.0,
        p99: SimDuration::ZERO,
    };
}

/// Where a rollout currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// No rollout in flight.
    Idle,
    /// Canary wave pushed; waiting for acks + bake.
    Canary,
    /// Promotion wave `wave` (1-based) pushed; waiting for acks + bake.
    Promoting {
        /// Which promotion wave is in flight.
        wave: usize,
    },
    /// Every target acked the new version.
    Converged,
    /// Rolled back to last-known-good; terminal for this version.
    RolledBack,
}

/// Why a rollout was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackReason {
    /// A target rejected the version (data-plane semantic validation).
    Nack {
        /// The rejecting target.
        target: TargetId,
    },
    /// The health signal regressed past the configured gate during bake.
    HealthRegression,
    /// The in-flight wave did not fully ack within `ack_timeout`.
    AckTimeout,
}

/// Terminal result of one driven version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutResult {
    /// Every target acked the version.
    Converged,
    /// Controller-side validation refused the version; nothing was pushed.
    FailedValidation,
    /// Exposed targets were rolled back to last-known-good.
    RolledBack(RollbackReason),
}

/// Audit-log entry for one driven version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutOutcome {
    /// The version driven.
    pub version: u64,
    /// The last-known-good version a rollback would (or did) restore.
    pub rolled_back_to: u64,
    /// When the rollout began.
    pub started_at: SimTime,
    /// When it reached a terminal phase.
    pub ended_at: SimTime,
    /// How it ended.
    pub result: RolloutResult,
    /// Waves pushed before the terminal phase (canary counts as one).
    pub waves_pushed: usize,
    /// Targets the version was ever pushed to — the blast-radius numerator.
    pub exposed_targets: usize,
}

/// What the caller must do to the data plane after a driving call.
///
/// Every action carries the fencing `epoch` of the controller incarnation
/// that emitted it; gateways NACK pushes whose epoch is below the highest
/// they have observed, so a zombie incarnation can never move the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutAction {
    /// Push `version` to `targets` (stage + commit on each gateway).
    Push {
        /// The version to push.
        version: u64,
        /// Receiving targets.
        targets: Vec<TargetId>,
        /// Fencing epoch of the emitting controller incarnation.
        epoch: u64,
    },
    /// Roll `targets` back to version `to` (last-known-good).
    Rollback {
        /// The version to restore.
        to: u64,
        /// Every target the bad version was pushed to.
        targets: Vec<TargetId>,
        /// Fencing epoch of the emitting controller incarnation.
        epoch: u64,
    },
}

/// In-flight state of the version being driven.
#[derive(Debug)]
struct ActiveRollout {
    version: u64,
    last_known_good: u64,
    started_at: SimTime,
    baseline: HealthSample,
    /// Shuffled push order; `pushed` is how many of these have been pushed.
    order: Vec<TargetId>,
    pushed: usize,
    /// 0 = canary.
    wave: usize,
    wave_pushed_at: SimTime,
    /// Set when the current wave fully acked (bake starts).
    wave_acked_at: Option<SimTime>,
}

/// Drives config versions through validate → canary → health-gated
/// promotion → converged, with automatic rollback. Owns the
/// [`VersionedConfigStore`] whose ack/NACK state gates every transition.
#[derive(Debug)]
pub struct RolloutController {
    cfg: RolloutConfig,
    store: VersionedConfigStore,
    /// The fleet roster, registered at setup; `add_target` deduplicates.
    targets: Vec<TargetId>,
    phase: RolloutPhase,
    active: Option<ActiveRollout>,
    /// Ring of terminal outcomes, newest at the back; bounded by
    /// [`ROLLOUT_OUTCOMES_RETAIN_CAP`] with evictions counted in
    /// `outcomes_evicted`.
    outcomes: VecDeque<RolloutOutcome>,
    /// Outcomes evicted from the ring (lifetime total).
    outcomes_evicted: u64,
    rollbacks: u64,
    /// The last version the whole fleet converged on (0 = nothing yet).
    /// Advances only in the `Converged` branch of [`Self::tick`]; this is
    /// what a rollback restores, so a NACKed / rolled-back / half-pushed
    /// version can never become the rollback target.
    last_good: u64,
    /// Targets currently partitioned from the control plane. Unreachable
    /// ≠ NACK: membership gates quorum and leases, never rollback. At most
    /// one entry per registered target; removed again on heal.
    unreachable: BTreeSet<TargetId>,
    /// When each partitioned target was last reachable — the lease anchor.
    unreachable_since: BTreeMap<TargetId, SimTime>,
    /// Ticks an acked-but-quorum-starved wave spent holding instead of
    /// promoting or rolling back.
    partition_holds: u64,
    /// Monotone catch-up pushes emitted when partitions healed.
    catch_up_pushes: u64,
    /// Which distribution plane this controller drives (journal metadata).
    kind: RolloutKind,
    /// Write-ahead journal: every begin / wave-cut / ack / nack /
    /// rollback / converge is appended *before* the matching southbound
    /// action is returned, so [`Self::recover`] can reconstruct the
    /// in-flight wave after a crash.
    journal: Journal,
    /// Fencing epoch of this incarnation; stamped on every action.
    epoch: u64,
}

impl RolloutController {
    /// Controller over an empty fleet. `debounce` configures the owned
    /// store's update-coalescing window. The first incarnation runs at
    /// epoch 1 (journaled); crash recovery via [`Self::recover`] bumps it.
    pub fn new(cfg: RolloutConfig, debounce: SimDuration) -> Self {
        let mut journal = Journal::new();
        let epoch = journal.begin_incarnation(SimTime::ZERO);
        RolloutController {
            cfg,
            store: VersionedConfigStore::new(debounce),
            targets: Vec::new(),
            phase: RolloutPhase::Idle,
            active: None,
            outcomes: VecDeque::new(),
            outcomes_evicted: 0,
            rollbacks: 0,
            last_good: 0,
            unreachable: BTreeSet::new(),
            unreachable_since: BTreeMap::new(),
            partition_holds: 0,
            catch_up_pushes: 0,
            kind: RolloutKind::Config,
            journal,
            epoch,
        }
    }

    /// Tag the journal records this controller writes with a distribution
    /// plane (config / cert / policy). Builder-style, for construction.
    pub fn with_kind(mut self, kind: RolloutKind) -> Self {
        self.kind = kind;
        self
    }

    /// A replacement incarnation recovered from `journal` (the durable
    /// copy the crashed incarnation wrote ahead of every push) plus an
    /// anti-entropy pass over the fleet: `fleet_running` maps every
    /// live target to the config version it reports running (its keys are
    /// the roster). The new incarnation runs at a fenced epoch one past
    /// anything journaled. Returns the controller and the reconciliation
    /// actions to apply:
    ///
    /// * journal ends mid-rollback → re-emit the rollback for every
    ///   recorded target not yet running the rollback version;
    /// * journal ends mid-wave, version un-NACKed → resume the wave with
    ///   a fresh ack clock, idempotently re-pushing only exposed targets
    ///   whose *reported* version is behind (a target that committed but
    ///   whose ack died with the old controller is not re-pushed — the
    ///   fleet report wins over the journal's ack set);
    /// * journal ends mid-wave but records a NACK of the version → abort:
    ///   roll every exposed target back to the rollout's last-known-good;
    /// * journal is terminal → idle, catch up any target behind
    ///   last-known-good.
    pub fn recover(
        cfg: RolloutConfig,
        debounce: SimDuration,
        journal: &Journal,
        fleet_running: &BTreeMap<TargetId, u64>,
        now: SimTime,
    ) -> (Self, Vec<RolloutAction>) {
        let state = journal.replay();
        let mut journal = journal.clone();
        let epoch = journal.begin_incarnation(now);
        let mut store = VersionedConfigStore::new(debounce);
        let max_version = state
            .in_flight
            .as_ref()
            .map_or(0, |fl| fl.version)
            .max(state.last_good)
            .max(state.pending_rollback.as_ref().map_or(0, |p| p.version))
            .max(fleet_running.values().copied().max().unwrap_or(0));
        store.restore_version(max_version);
        let mut targets: Vec<TargetId> = fleet_running.keys().copied().collect();
        // The journaled push order may name targets that vanished; the
        // fleet report is the roster of record, but keep journaled order
        // for targets that still exist.
        if let Some(fl) = &state.in_flight {
            let mut ordered: Vec<TargetId> = fl
                .order
                .iter()
                .copied()
                .filter(|t| fleet_running.contains_key(t))
                .collect();
            for t in &targets {
                if !ordered.contains(t) {
                    ordered.push(*t);
                }
            }
            targets = ordered;
        }
        for &t in &targets {
            store.add_target(t);
        }
        // Anti-entropy: the fleet's reported running versions seed the
        // ack state — the journal's ack set may be stale (an ack that
        // died with the old incarnation) or ahead (an ack recorded for a
        // commit the gateway lost before flushing).
        for (&t, &v) in fleet_running {
            if v > 0 {
                store.ack(t, v, now);
            }
        }
        let mut ctl = RolloutController {
            cfg,
            store,
            targets,
            phase: RolloutPhase::Idle,
            active: None,
            outcomes: VecDeque::new(),
            outcomes_evicted: 0,
            rollbacks: 0,
            last_good: state.last_good,
            unreachable: BTreeSet::new(),
            unreachable_since: BTreeMap::new(),
            partition_holds: 0,
            catch_up_pushes: 0,
            kind: RolloutKind::Config,
            journal,
            epoch,
        };
        let actions = ctl.reconcile(&state, fleet_running, now);
        (ctl, actions)
    }

    /// The recovery decision procedure (see [`Self::recover`]).
    fn reconcile(
        &mut self,
        state: &ReplayState,
        fleet_running: &BTreeMap<TargetId, u64>,
        now: SimTime,
    ) -> Vec<RolloutAction> {
        // Mid-rollback crash: the old incarnation journaled the rollback
        // intent but may have died before every push left. Finish it.
        if let Some(p) = &state.pending_rollback {
            self.phase = RolloutPhase::RolledBack;
            let behind: Vec<TargetId> = p
                .targets
                .iter()
                .copied()
                .filter(|t| fleet_running.get(t).is_some_and(|&v| v != p.to))
                .collect();
            if behind.is_empty() {
                return Vec::new();
            }
            self.rollbacks += 1;
            self.journal.append(JournalRecord::Rollback {
                epoch: self.epoch,
                version: p.version,
                to: p.to,
                targets: behind.clone(),
                at: now,
            });
            return vec![RolloutAction::Rollback {
                to: p.to,
                targets: behind,
                epoch: self.epoch,
            }];
        }
        let Some(fl) = &state.in_flight else {
            // Terminal journal: idle at last_good; catch up stragglers.
            self.phase = if state.last_good > 0 {
                RolloutPhase::Converged
            } else {
                RolloutPhase::Idle
            };
            let behind: Vec<TargetId> = fleet_running
                .iter()
                .filter(|(_, &v)| v < state.last_good)
                .map(|(&t, _)| t)
                .collect();
            if behind.is_empty() {
                return Vec::new();
            }
            self.catch_up_pushes += behind.len() as u64;
            return vec![RolloutAction::Push {
                version: state.last_good,
                targets: behind,
                epoch: self.epoch,
            }];
        };
        // Mid-wave crash of a NACKed version: abort to last-known-good.
        let nacked = state.nacked.values().any(|&v| v >= fl.version);
        if nacked {
            self.phase = RolloutPhase::RolledBack;
            self.rollbacks += 1;
            let exposed: Vec<TargetId> = self
                .targets
                .iter()
                .copied()
                .filter(|t| fl.exposed.contains(t))
                .collect();
            self.outcomes.push_back(RolloutOutcome {
                version: fl.version,
                rolled_back_to: fl.last_known_good,
                started_at: fl.started_at,
                ended_at: now,
                result: RolloutResult::RolledBack(RollbackReason::Nack {
                    target: state
                        .nacked
                        .iter()
                        .find(|(_, &v)| v >= fl.version)
                        .map_or(0, |(&t, _)| t),
                }),
                waves_pushed: fl.wave + 1,
                exposed_targets: exposed.len(),
            });
            self.journal.append(JournalRecord::Rollback {
                epoch: self.epoch,
                version: fl.version,
                to: fl.last_known_good,
                targets: exposed.clone(),
                at: now,
            });
            return vec![RolloutAction::Rollback {
                to: fl.last_known_good,
                targets: exposed,
                epoch: self.epoch,
            }];
        }
        // Mid-wave crash of a healthy rollout: resume the wave. The
        // journal's wave cuts are write-ahead, so `exposed` is a superset
        // of what actually left the wire — re-push every exposed target
        // whose reported version is behind (idempotent for the rest).
        let pushed = self
            .targets
            .iter()
            .take_while(|t| fl.exposed.contains(t))
            .count()
            .max(1)
            .min(self.targets.len());
        self.active = Some(ActiveRollout {
            version: fl.version,
            last_known_good: fl.last_known_good,
            started_at: fl.started_at,
            baseline: HealthSample::HEALTHY,
            order: self.targets.clone(),
            pushed,
            wave: fl.wave,
            wave_pushed_at: now,
            wave_acked_at: None,
        });
        self.phase = if fl.wave == 0 {
            RolloutPhase::Canary
        } else {
            RolloutPhase::Promoting { wave: fl.wave }
        };
        let behind: Vec<TargetId> = self.targets[..pushed]
            .iter()
            .copied()
            .filter(|t| fleet_running.get(t).is_none_or(|&v| v < fl.version))
            .collect();
        if behind.is_empty() {
            return Vec::new();
        }
        self.journal.append(JournalRecord::WaveCut {
            epoch: self.epoch,
            version: fl.version,
            wave: fl.wave,
            targets: behind.clone(),
            at: now,
        });
        vec![RolloutAction::Push {
            version: fl.version,
            targets: behind,
            epoch: self.epoch,
        }]
    }

    /// Register a data-plane target (a gateway backend / proxy).
    pub fn add_target(&mut self, target: TargetId) {
        if !self.targets.contains(&target) {
            self.targets.push(target);
            self.store.add_target(target);
        }
    }

    /// Begin driving a new version. `valid` is the controller-side
    /// validation verdict (an invalid version is never pushed — blast
    /// radius 0). `baseline` anchors the health gate; `rng` shuffles the
    /// push order so the canary slice is unbiased but reproducible.
    /// Returns the actions to apply (the canary push, or nothing).
    ///
    /// One rollout at a time: while a rollout is in flight
    /// ([`Self::in_flight`]), the call is refused — no version is
    /// allocated, no state changes, and no actions are returned. The
    /// alternative (silently abandoning the in-flight version) would leave
    /// exposed targets running it with no `Rollback` ever emitted and no
    /// [`RolloutOutcome`] recorded.
    pub fn begin(
        &mut self,
        now: SimTime,
        valid: bool,
        baseline: HealthSample,
        rng: &mut SimRng,
    ) -> Vec<RolloutAction> {
        if self.active.is_some() {
            return Vec::new();
        }
        let last_known_good = self.last_good;
        let version = self.store.record_change(now);
        self.store.flush_push(now);
        if !valid {
            self.phase = RolloutPhase::RolledBack;
            self.push_outcome(RolloutOutcome {
                version,
                rolled_back_to: last_known_good,
                started_at: now,
                ended_at: now,
                result: RolloutResult::FailedValidation,
                waves_pushed: 0,
                exposed_targets: 0,
            });
            return Vec::new();
        }
        let mut order = self.targets.clone();
        rng.shuffle(&mut order);
        let canary = self.cfg.canary_size.max(1).min(order.len());
        let wave_targets: Vec<TargetId> = order[..canary].to_vec();
        // Write-ahead: the intent and the canary cut are journaled before
        // the push action is handed south.
        self.journal.append(JournalRecord::Begin {
            epoch: self.epoch,
            kind: self.kind,
            version,
            last_known_good,
            order: order.clone(),
            at: now,
        });
        self.journal.append(JournalRecord::WaveCut {
            epoch: self.epoch,
            version,
            wave: 0,
            targets: wave_targets.clone(),
            at: now,
        });
        self.active = Some(ActiveRollout {
            version,
            last_known_good,
            started_at: now,
            baseline,
            order,
            pushed: canary,
            wave: 0,
            wave_pushed_at: now,
            wave_acked_at: None,
        });
        self.phase = RolloutPhase::Canary;
        vec![RolloutAction::Push { version, targets: wave_targets, epoch: self.epoch }]
    }

    /// An exposed target acknowledged `version`.
    pub fn ack(&mut self, target: TargetId, version: u64, now: SimTime) -> bool {
        let accepted = self.store.ack(target, version, now);
        if accepted {
            self.journal.append(JournalRecord::Ack {
                epoch: self.epoch,
                target,
                version,
                at: now,
            });
        }
        accepted
    }

    /// An exposed target rejected `version` (its `ActiveConfig` refused to
    /// commit). The next [`Self::tick`] rolls back.
    pub fn nack(&mut self, target: TargetId, version: u64) -> bool {
        let accepted = self.store.nack(target, version);
        if accepted {
            // NACKs arrive without a timestamp (the signature predates the
            // journal); replay keys on epoch/target/version only.
            self.journal.append(JournalRecord::Nack {
                epoch: self.epoch,
                target,
                version,
                at: SimTime::ZERO,
            });
        }
        accepted
    }

    /// Record a reachability transition for `target` — the state of the
    /// control-plane link, not of the target itself. Marking a target
    /// unreachable starts its config lease and takes it out of quorum;
    /// marking it reachable again ends the partition and emits the monotone
    /// catch-up that reconciles it: the in-flight version if the target's
    /// wave came and went while it was partitioned (with a fresh ack
    /// clock), else the fleet's last-known-good when the target's acked
    /// version is older. Catch-up only ever pushes *forward* — a healed
    /// target is never downgraded — so once every partition heals at most
    /// one converged active version exists fleet-wide.
    pub fn set_reachable(
        &mut self,
        target: TargetId,
        reachable: bool,
        now: SimTime,
    ) -> Vec<RolloutAction> {
        if !reachable {
            if self.unreachable.insert(target) {
                self.unreachable_since.insert(target, now);
            }
            return Vec::new();
        }
        if !self.unreachable.remove(&target) {
            return Vec::new();
        }
        self.unreachable_since.remove(&target);
        let acked = self.store.ack_state(target).map_or(0, |s| s.acked);
        if self.active.as_ref().is_some_and(|active| {
            active.order[..active.pushed].contains(&target) && acked < active.version
        }) {
            let (version, wave) = self
                .active
                .as_ref()
                .map_or((0, 0), |a| (a.version, a.wave));
            // Write-ahead: journal the catch-up cut before handing out
            // the push.
            self.journal.append(JournalRecord::WaveCut {
                epoch: self.epoch,
                version,
                wave,
                targets: vec![target],
                at: now,
            });
            if let Some(active) = &mut self.active {
                active.wave_pushed_at = now;
            }
            self.catch_up_pushes += 1;
            return vec![RolloutAction::Push {
                version,
                targets: vec![target],
                epoch: self.epoch,
            }];
        }
        if acked < self.last_good {
            self.catch_up_pushes += 1;
            return vec![RolloutAction::Push {
                version: self.last_good,
                targets: vec![target],
                epoch: self.epoch,
            }];
        }
        Vec::new()
    }

    /// Whether `target`'s fail-static config lease is still fresh at `now`:
    /// a reachable target always holds a valid lease; a partitioned
    /// target's lease expires `lease_duration` after it was last reachable.
    /// An expired lease does not stop fail-static serving — it marks the
    /// served config as stale for operators and the drill gate.
    pub fn lease_valid(&self, target: TargetId, now: SimTime) -> bool {
        match self.unreachable_since.get(&target) {
            None => true,
            Some(&since) => now.since(since) < self.cfg.lease_duration,
        }
    }

    /// Advance the state machine at `now` with the latest health
    /// observation (if one is available this tick). Returns the actions the
    /// caller must apply to the data plane.
    pub fn tick(&mut self, now: SimTime, health: Option<HealthSample>) -> Vec<RolloutAction> {
        let Some(active) = &mut self.active else {
            return Vec::new();
        };
        // 1. A NACK of the in-flight version anywhere ends the rollout
        //    immediately. Stale NACKs from an earlier, already-rolled-back
        //    version must not poison later rollouts.
        let version = active.version;
        let nacked = self.store.nacked_targets().into_iter().find(|&t| {
            self.store
                .ack_state(t)
                .and_then(|s| s.nacked)
                .is_some_and(|v| v >= version)
        });
        if let Some(target) = nacked {
            return self.roll_back(now, RollbackReason::Nack { target });
        }
        // 2. Wave ack progress. Unreachable targets neither ack nor NACK:
        //    the wave acks once every *reachable* pushed target acked, and
        //    promotion additionally requires the reachable fraction of
        //    pushed targets to meet quorum. A quorum-starved wave holds —
        //    the ack timeout fires only when a reachable target failed to
        //    ack (a real fault, not a partition).
        if active.wave_acked_at.is_none() {
            let pushed_slice = &active.order[..active.pushed];
            let reachable: Vec<TargetId> = pushed_slice
                .iter()
                .copied()
                .filter(|t| !self.unreachable.contains(t))
                .collect();
            let reachable_acked = reachable.iter().all(|&t| {
                self.store
                    .ack_state(t)
                    .is_some_and(|s| s.acked >= active.version)
            });
            let quorum_met = reachable.len() as f64
                >= self.cfg.reachable_quorum * pushed_slice.len() as f64;
            if reachable_acked && quorum_met {
                active.wave_acked_at = Some(now);
            } else if now.since(active.wave_pushed_at) >= self.cfg.ack_timeout {
                if !reachable_acked {
                    return self.roll_back(now, RollbackReason::AckTimeout);
                }
                self.partition_holds += 1;
            }
        }
        // 3. Health gate: any regression past the thresholds while exposed.
        //    A zero baseline p99 means the caller had no latency signal to
        //    anchor the gate (e.g. no traffic yet), so only the error-rate
        //    gate applies — otherwise any real tail latency would read as
        //    infinite inflation and roll back a healthy rollout.
        if let Some(h) = health {
            let err_breach = h.error_rate > active.baseline.error_rate + self.cfg.max_error_delta;
            let p99_breach = active.baseline.p99 > SimDuration::ZERO
                && h.p99.as_nanos() as f64
                    > active.baseline.p99.as_nanos() as f64 * self.cfg.max_p99_inflation;
            if err_breach || p99_breach {
                return self.roll_back(now, RollbackReason::HealthRegression);
            }
        }
        // 4. Fully-acked wave that finished baking promotes the next wave.
        if let Some(acked_at) = active.wave_acked_at {
            if now.since(acked_at) >= self.cfg.bake_time {
                if active.pushed == active.order.len() {
                    // Nothing left to push: converged. This version is now
                    // the fleet's last-known-good.
                    self.last_good = active.version;
                    let outcome = RolloutOutcome {
                        version: active.version,
                        rolled_back_to: active.last_known_good,
                        started_at: active.started_at,
                        ended_at: now,
                        result: RolloutResult::Converged,
                        waves_pushed: active.wave + 1,
                        exposed_targets: active.pushed,
                    };
                    let version = active.version;
                    self.journal.append(JournalRecord::Converge {
                        epoch: self.epoch,
                        version,
                        at: now,
                    });
                    self.push_outcome(outcome);
                    self.active = None;
                    self.phase = RolloutPhase::Converged;
                    return Vec::new();
                }
                let prev = active.pushed;
                let next_size = (prev * self.cfg.wave_growth.max(2))
                    .min(active.order.len())
                    - prev;
                let next_size = next_size.max(1);
                let end = (prev + next_size).min(active.order.len());
                let targets: Vec<TargetId> = active.order[prev..end].to_vec();
                active.pushed = end;
                active.wave += 1;
                active.wave_pushed_at = now;
                active.wave_acked_at = None;
                let version = active.version;
                let wave = active.wave;
                self.phase = RolloutPhase::Promoting { wave };
                // Write-ahead: the wave cut is journaled before the push
                // action leaves.
                self.journal.append(JournalRecord::WaveCut {
                    epoch: self.epoch,
                    version,
                    wave,
                    targets: targets.clone(),
                    at: now,
                });
                return vec![RolloutAction::Push { version, targets, epoch: self.epoch }];
            }
        }
        Vec::new()
    }

    fn roll_back(&mut self, now: SimTime, reason: RollbackReason) -> Vec<RolloutAction> {
        let Some(active) = self.active.take() else {
            return Vec::new();
        };
        self.rollbacks += 1;
        self.phase = RolloutPhase::RolledBack;
        self.push_outcome(RolloutOutcome {
            version: active.version,
            rolled_back_to: active.last_known_good,
            started_at: active.started_at,
            ended_at: now,
            result: RolloutResult::RolledBack(reason),
            waves_pushed: active.wave + 1,
            exposed_targets: active.pushed,
        });
        let targets = active.order[..active.pushed].to_vec();
        // Write-ahead: the rollback intent is journaled before the pushes
        // leave, so a crash mid-rollback is finished by the next
        // incarnation ([`Self::recover`]).
        self.journal.append(JournalRecord::Rollback {
            epoch: self.epoch,
            version: active.version,
            to: active.last_known_good,
            targets: targets.clone(),
            at: now,
        });
        vec![RolloutAction::Rollback {
            to: active.last_known_good,
            targets,
            epoch: self.epoch,
        }]
    }

    /// Append to the bounded outcome ring, evicting the oldest past
    /// [`ROLLOUT_OUTCOMES_RETAIN_CAP`].
    fn push_outcome(&mut self, outcome: RolloutOutcome) {
        self.outcomes.push_back(outcome);
        while self.outcomes.len() > ROLLOUT_OUTCOMES_RETAIN_CAP {
            self.outcomes.pop_front();
            self.outcomes_evicted += 1;
        }
    }

    /// Current phase.
    pub fn phase(&self) -> RolloutPhase {
        self.phase
    }

    /// Whether a config change is in flight (pushed somewhere, not yet
    /// terminal) — the "suspect dimension" the monitor/RCA consume.
    pub fn in_flight(&self) -> bool {
        self.active.is_some()
    }

    /// Targets the current version has been pushed to so far.
    pub fn exposed_count(&self) -> usize {
        self.active.as_ref().map_or(0, |a| a.pushed)
    }

    /// Lifetime automatic rollbacks.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Whether the control plane can currently reach `target`.
    pub fn is_reachable(&self, target: TargetId) -> bool {
        !self.unreachable.contains(&target)
    }

    /// How many registered targets are currently partitioned.
    pub fn unreachable_count(&self) -> usize {
        self.unreachable.len()
    }

    /// Ticks a fully-acked-but-quorum-starved wave spent holding.
    pub fn partition_holds(&self) -> u64 {
        self.partition_holds
    }

    /// Monotone catch-up pushes emitted on partition heal.
    pub fn catch_up_pushes(&self) -> u64 {
        self.catch_up_pushes
    }

    /// The last version the whole fleet converged on — what a rollback
    /// restores (0 until any rollout converges).
    pub fn last_known_good(&self) -> u64 {
        self.last_good
    }

    /// The retained per-version audit log, oldest first (a bounded ring;
    /// [`Self::outcomes_evicted`] counts entries aged out).
    pub fn outcomes(&self) -> &VecDeque<RolloutOutcome> {
        &self.outcomes
    }

    /// Audit-log entries evicted from the bounded ring (lifetime total).
    pub fn outcomes_evicted(&self) -> u64 {
        self.outcomes_evicted
    }

    /// This incarnation's fencing epoch (stamped on every action).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The write-ahead journal. A harness models durable storage by
    /// cloning this at crash time and handing it to [`Self::recover`].
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The owned ack/NACK store (read-only).
    pub fn store(&self) -> &VersionedConfigStore {
        &self.store
    }

    /// Fold phase, fleet roster, in-flight rollout, counters, and the
    /// audit log into `d` — the experiment's double-run bit-identity
    /// covers the whole state machine.
    pub fn fold_digest(&self, d: &mut Digest) {
        let phase_tag = match self.phase {
            RolloutPhase::Idle => 0,
            RolloutPhase::Canary => 1,
            RolloutPhase::Promoting { wave } => 100 + wave as u64,
            RolloutPhase::Converged => 2,
            RolloutPhase::RolledBack => 3,
        };
        d.write_u64(phase_tag);
        d.write_u64(self.store.version());
        d.write_u64(self.targets.len() as u64);
        for &t in &self.targets {
            d.write_u64(t as u64);
        }
        match &self.active {
            None => {
                d.write_u64(0);
            }
            Some(a) => {
                d.write_u64(1)
                    .write_u64(a.version)
                    .write_u64(a.last_known_good)
                    .write_u64(a.started_at.as_nanos())
                    .write_f64(a.baseline.error_rate)
                    .write_u64(a.baseline.p99.as_nanos())
                    .write_u64(a.order.len() as u64);
                for &t in &a.order {
                    d.write_u64(t as u64);
                }
                d.write_u64(a.pushed as u64)
                    .write_u64(a.wave as u64)
                    .write_u64(a.wave_pushed_at.as_nanos())
                    .write_u64(a.wave_acked_at.map_or(u64::MAX, |t| t.as_nanos()));
            }
        }
        d.write_u64(self.last_good);
        d.write_u64(self.unreachable.len() as u64);
        for &t in &self.unreachable {
            d.write_u64(t as u64);
        }
        for (&t, &since) in &self.unreachable_since {
            d.write_u64(t as u64).write_u64(since.as_nanos());
        }
        d.write_u64(self.partition_holds);
        d.write_u64(self.catch_up_pushes);
        d.write_u64(self.rollbacks);
        d.write_u64(self.epoch);
        d.write_u64(match self.kind {
            RolloutKind::Config => 1,
            RolloutKind::Cert => 2,
            RolloutKind::Policy => 3,
        });
        self.journal.fold_digest(d);
        d.write_u64(self.outcomes_evicted);
        d.write_u64(self.outcomes.len() as u64);
        for o in &self.outcomes {
            d.write_u64(o.version);
            d.write_u64(o.rolled_back_to);
            d.write_u64(o.started_at.as_nanos());
            d.write_u64(o.ended_at.as_nanos());
            d.write_u64(match o.result {
                RolloutResult::Converged => 1,
                RolloutResult::FailedValidation => 2,
                RolloutResult::RolledBack(RollbackReason::Nack { target }) => {
                    1000 + target as u64
                }
                RolloutResult::RolledBack(RollbackReason::HealthRegression) => 3,
                RolloutResult::RolledBack(RollbackReason::AckTimeout) => 4,
            });
            d.write_u64(o.waves_pushed as u64);
            d.write_u64(o.exposed_targets as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    fn controller(n: u32) -> RolloutController {
        let mut c = RolloutController::new(RolloutConfig::default(), SimDuration::ZERO);
        for t in 0..n {
            c.add_target(t);
        }
        c
    }

    /// Apply Push actions as instant acks (a healthy fleet).
    fn ack_all(c: &mut RolloutController, actions: &[RolloutAction], now: SimTime) {
        for a in actions {
            if let RolloutAction::Push { version, targets, .. } = a {
                for &t in targets {
                    assert!(c.ack(t, *version, now));
                }
            }
        }
    }

    /// Begin a rollout at `now` and ack/bake it through to convergence,
    /// collecting pushed wave sizes. Returns the time convergence landed.
    fn drive_to_converged(
        c: &mut RolloutController,
        rng: &mut SimRng,
        mut now: SimTime,
        wave_sizes: &mut Vec<usize>,
    ) -> SimTime {
        let mut actions = c.begin(now, true, HealthSample::HEALTHY, rng);
        let mut guard = 0;
        while c.phase() != RolloutPhase::Converged {
            for a in &actions {
                if let RolloutAction::Push { targets, .. } = a {
                    wave_sizes.push(targets.len());
                }
            }
            ack_all(c, &actions, now);
            now += SimDuration::from_secs(1);
            // One tick to latch acks, then jump past the bake window.
            actions = c.tick(now, Some(HealthSample::HEALTHY));
            if actions.is_empty() && c.phase() != RolloutPhase::Converged {
                now += RolloutConfig::default().bake_time;
                actions = c.tick(now, Some(HealthSample::HEALTHY));
            }
            guard += 1;
            assert!(guard < 50, "rollout did not converge");
        }
        now
    }

    #[test]
    fn healthy_rollout_converges_in_exponential_waves() {
        let mut c = controller(16);
        let mut rng = SimRng::seed(7);
        let mut wave_sizes = Vec::new();
        drive_to_converged(&mut c, &mut rng, T(0), &mut wave_sizes);
        // canary 2, then 6 (to reach 8 = 2*4), then 8 (to reach 16... capped)
        assert_eq!(wave_sizes.iter().sum::<usize>(), 16);
        assert_eq!(wave_sizes[0], 2, "canary wave is small");
        assert!(wave_sizes.windows(2).all(|w| w[1] >= w[0]), "waves grow");
        assert!(c.store().converged());
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.result, RolloutResult::Converged);
        assert_eq!(o.exposed_targets, 16);
    }

    #[test]
    fn nack_rolls_back_and_poison_never_reaches_second_wave() {
        let mut c = controller(12);
        let mut rng = SimRng::seed(42);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets, .. } = &actions[0] else {
            panic!("expected canary push");
        };
        assert_eq!(targets.len(), 2);
        // The first canary target's ActiveConfig rejects the config.
        c.nack(targets[0], *version);
        c.ack(targets[1], *version, T(1));
        let out = c.tick(T(1), None);
        // Rollback covers exactly the exposed canary targets.
        assert_eq!(out.len(), 1);
        let RolloutAction::Rollback { to, targets: rb, .. } = &out[0] else {
            panic!("expected rollback");
        };
        assert_eq!(*to, 0, "back to last-known-good");
        assert_eq!(rb.len(), 2, "blast radius capped at the canary wave");
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        // No second wave is ever pushed for this version.
        for later in 1..20u64 {
            assert!(c.tick(T(1 + later), None).is_empty());
        }
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.waves_pushed, 1);
        assert_eq!(o.exposed_targets, 2);
        assert!(matches!(o.result, RolloutResult::RolledBack(RollbackReason::Nack { .. })));
        assert_eq!(c.rollbacks(), 1);
    }

    #[test]
    fn last_known_good_is_last_converged_version_not_last_allocated() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(17);
        // v1 converges fleet-wide: it becomes last-known-good.
        let now = drive_to_converged(&mut c, &mut rng, T(0), &mut Vec::new());
        assert_eq!(c.last_known_good(), 1);
        // v2 is poisoned: the canary NACKs it and it rolls back.
        let a = c.begin(now, true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets, .. }) = a.first() else {
            panic!("expected canary push");
        };
        assert_eq!(*version, 2);
        c.nack(targets[0], *version);
        let out = c.tick(now + SimDuration::from_secs(1), None);
        let Some(RolloutAction::Rollback { to, .. }) = out.first() else {
            panic!("expected rollback");
        };
        assert_eq!(*to, 1, "rollback restores the converged v1");
        assert_eq!(c.last_known_good(), 1, "a rolled-back v2 is not good");
        // v3 begins after the failed v2 and dies to an ack timeout. Its
        // rollback must also restore v1 — never the rejected v2.
        let t3 = now + SimDuration::from_secs(5);
        let a3 = c.begin(t3, true, HealthSample::HEALTHY, &mut rng);
        assert!(matches!(a3.first(), Some(RolloutAction::Push { version, .. }) if *version == 3));
        let out3 = c.tick(t3 + RolloutConfig::default().ack_timeout, None);
        let Some(RolloutAction::Rollback { to, .. }) = out3.first() else {
            panic!("expected ack-timeout rollback");
        };
        assert_eq!(*to, 1, "never roll 'back' to the poisoned v2");
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.rolled_back_to, 1);
    }

    #[test]
    fn begin_is_refused_while_a_rollout_is_in_flight() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(23);
        let first = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        assert_eq!(first.len(), 1);
        let version = c.store().version();
        assert_eq!(c.phase(), RolloutPhase::Canary);
        // A second begin mid-flight is refused outright: no actions, no new
        // version, and the in-flight rollout is untouched.
        let second = c.begin(T(1), true, HealthSample::HEALTHY, &mut rng);
        assert!(second.is_empty(), "overlapping begin must be refused");
        assert_eq!(c.store().version(), version, "no version allocated");
        assert_eq!(c.phase(), RolloutPhase::Canary);
        assert!(c.in_flight());
        // The original rollout still completes normally.
        ack_all(&mut c, &first, T(1));
        c.tick(T(2), None);
        assert!(c.outcomes().is_empty(), "in-flight rollout was not abandoned");
    }

    #[test]
    fn zero_p99_baseline_skips_the_inflation_gate() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(29);
        // HEALTHY baseline has p99 = 0: no latency signal to gate on.
        let a = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        ack_all(&mut c, &a, T(1));
        // Real observed tail latency must not read as infinite inflation.
        let observed = HealthSample {
            error_rate: 0.0,
            p99: SimDuration::from_millis(20),
        };
        let out = c.tick(T(1), Some(observed));
        assert!(
            !matches!(out.first(), Some(RolloutAction::Rollback { .. })),
            "a zero baseline must disable the p99 gate, not weaponize it"
        );
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
        // The error-rate gate still applies with a zero baseline.
        let erroring = HealthSample {
            error_rate: 0.5,
            p99: SimDuration::ZERO,
        };
        let out = c.tick(T(2), Some(erroring));
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
    }

    #[test]
    fn stale_nack_does_not_poison_the_next_rollout() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(11);
        // First rollout dies to a canary NACK.
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        c.nack(targets[0], *version);
        assert!(matches!(
            c.tick(T(1), None).first(),
            Some(RolloutAction::Rollback { .. })
        ));
        // The rejecting target never acks anything newer, so its NACK is
        // still recorded in the store — but it is for the dead version and
        // must not shoot down the next, healthy rollout.
        let actions = c.begin(T(10), true, HealthSample::HEALTHY, &mut rng);
        assert_eq!(c.phase(), RolloutPhase::Canary);
        ack_all(&mut c, &actions, T(11));
        let out = c.tick(T(11), Some(HealthSample::HEALTHY));
        assert!(
            !matches!(out.first(), Some(RolloutAction::Rollback { .. })),
            "a stale NACK from the rolled-back version must be ignored"
        );
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
    }

    #[test]
    fn health_regression_during_bake_rolls_back() {
        let mut c = controller(12);
        let mut rng = SimRng::seed(3);
        let baseline = HealthSample {
            error_rate: 0.001,
            p99: SimDuration::from_millis(10),
        };
        let actions = c.begin(T(0), true, baseline, &mut rng);
        ack_all(&mut c, &actions, T(1));
        assert!(c.tick(T(1), Some(baseline)).is_empty(), "baking");
        // Mid-bake the canary's error rate spikes past the gate.
        let sick = HealthSample {
            error_rate: 0.05,
            p99: SimDuration::from_millis(10),
        };
        let out = c.tick(T(5), Some(sick));
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::HealthRegression));
        assert_eq!(o.exposed_targets, 2, "only the canary ever saw it");
        // P99 inflation alone also trips the gate.
        let mut c2 = controller(12);
        let a2 = c2.begin(T(0), true, baseline, &mut rng);
        ack_all(&mut c2, &a2, T(1));
        let slow = HealthSample {
            error_rate: 0.001,
            p99: SimDuration::from_millis(30),
        };
        let out2 = c2.tick(T(2), Some(slow));
        assert!(matches!(out2.first(), Some(RolloutAction::Rollback { .. })));
    }

    #[test]
    fn ack_timeout_rolls_back() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(9);
        let _ = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        // Nobody acks (pushes blocked): past ack_timeout the wave aborts.
        assert!(c.tick(T(5), None).is_empty(), "still inside the window");
        let out = c.tick(T(11), None);
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::AckTimeout));
    }

    #[test]
    fn invalid_version_is_never_pushed() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(1);
        let actions = c.begin(T(0), false, HealthSample::HEALTHY, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.result, RolloutResult::FailedValidation);
        assert_eq!(o.exposed_targets, 0, "blast radius zero");
    }

    #[test]
    fn digest_is_reproducible() {
        let run = || {
            let mut c = controller(12);
            let mut rng = SimRng::seed(5);
            let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
            if let Some(RolloutAction::Push { version, targets, .. }) = actions.first() {
                c.nack(targets[0], *version);
            }
            c.tick(T(1), None);
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unreachable_target_is_not_a_nack() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(31);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        // One canary target partitions before it can ack; the other acks.
        // Quorum (0.5 of 2) is met by the reachable half, so the wave acks
        // and nothing ever rolls back — a partition is not a NACK.
        assert!(c.set_reachable(targets[0], false, T(0)).is_empty());
        c.ack(targets[1], *version, T(1));
        let out = c.tick(T(11), None); // well past ack_timeout
        assert!(!matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        assert_ne!(c.phase(), RolloutPhase::RolledBack);
        assert_eq!(c.rollbacks(), 0);
        assert_eq!(c.unreachable_count(), 1);
        assert!(!c.is_reachable(targets[0]));
    }

    #[test]
    fn reachable_ack_failure_still_times_out() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(33);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        // One target is partitioned, but the *reachable* one also fails to
        // ack — that is a real fault and must still roll back on timeout.
        c.set_reachable(targets[0], false, T(0));
        let out = c.tick(T(11), None);
        assert!(matches!(out.first(), Some(RolloutAction::Rollback { .. })));
        let o = c.outcomes().back().unwrap();
        assert_eq!(o.result, RolloutResult::RolledBack(RollbackReason::AckTimeout));
    }

    #[test]
    fn quorum_starved_wave_holds_instead_of_rolling_back() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(37);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        // The whole canary wave partitions: every reachable target (none)
        // has acked, but quorum is starved. The rollout holds — no rollback,
        // no blind promotion — until the partition resolves.
        for &t in targets {
            c.set_reachable(t, false, T(0));
        }
        for s in 1..30 {
            assert!(c.tick(T(s), None).is_empty());
        }
        assert!(c.in_flight(), "held, not rolled back or promoted");
        assert!(c.partition_holds() > 0);
        assert_eq!(c.rollbacks(), 0);
    }

    #[test]
    fn mid_flight_heal_repushes_the_inflight_version() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(43);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let Some(RolloutAction::Push { version, targets, .. }) = actions.first() else {
            panic!("expected canary push");
        };
        let (lost, ok) = (targets[0], targets[1]);
        c.set_reachable(lost, false, T(0));
        c.ack(ok, *version, T(1));
        assert!(c.tick(T(2), None).is_empty(), "wave acks on the reachable half");
        // The partition heals mid-flight: the in-flight version is re-pushed
        // to the healed target with a fresh ack clock (a catch-up push).
        let heal = c.set_reachable(lost, true, T(3));
        assert_eq!(
            heal,
            vec![RolloutAction::Push { version: *version, targets: vec![lost], epoch: c.epoch() }]
        );
        assert_eq!(c.catch_up_pushes(), 1);
        assert!(c.is_reachable(lost));
    }

    #[test]
    fn heal_catch_up_converges_to_exactly_one_version() {
        let mut c = controller(8);
        let mut rng = SimRng::seed(41);
        // v1 converges fleet-wide, then target 3 partitions.
        let now = drive_to_converged(&mut c, &mut rng, T(0), &mut Vec::new());
        assert_eq!(c.last_known_good(), 1);
        let skip = 3u32;
        c.set_reachable(skip, false, now);
        // v2 rolls out and converges on the reachable fleet; the
        // partitioned target silently misses every push.
        let mut t = now;
        let mut actions = c.begin(t, true, HealthSample::HEALTHY, &mut rng);
        let mut guard = 0;
        while c.phase() != RolloutPhase::Converged {
            for a in &actions {
                if let RolloutAction::Push { version, targets, .. } = a {
                    for &tg in targets {
                        if tg != skip {
                            c.ack(tg, *version, t);
                        }
                    }
                }
            }
            t += SimDuration::from_secs(1);
            actions = c.tick(t, Some(HealthSample::HEALTHY));
            if actions.is_empty() && c.phase() != RolloutPhase::Converged {
                t += RolloutConfig::default().bake_time;
                actions = c.tick(t, Some(HealthSample::HEALTHY));
            }
            guard += 1;
            assert!(guard < 50, "partition-tolerant rollout did not converge");
        }
        assert_eq!(c.last_known_good(), 2);
        // Heal: exactly one monotone catch-up push of last-known-good.
        let heal = c.set_reachable(skip, true, t);
        assert_eq!(heal, vec![RolloutAction::Push { version: 2, targets: vec![skip], epoch: c.epoch() }]);
        assert_eq!(c.catch_up_pushes(), 1);
        c.ack(skip, 2, t);
        assert!(c.store().converged(), "one converged version fleet-wide");
        // Healing an already-reachable target is a no-op.
        assert!(c.set_reachable(skip, true, t).is_empty());
        assert_eq!(c.catch_up_pushes(), 1);
    }

    #[test]
    fn config_lease_expires_after_lease_duration() {
        let mut c = controller(4);
        assert!(c.lease_valid(0, T(0)), "reachable targets always hold a lease");
        c.set_reachable(0, false, T(10));
        assert!(c.lease_valid(0, T(30)), "fresh within the lease window");
        assert!(!c.lease_valid(0, T(90)), "stale past lease_duration");
        c.set_reachable(0, true, T(95));
        assert!(c.lease_valid(0, T(95)), "heal restores the lease");
    }

    #[test]
    fn partition_state_reaches_the_digest() {
        let fold = |c: &RolloutController| {
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        let mut c = controller(4);
        let before = fold(&c);
        c.set_reachable(2, false, T(5));
        assert_ne!(before, fold(&c), "partition membership is digested");
    }

    /// Crash mid-wave of a healthy rollout: the replacement incarnation
    /// resumes the wave at a fenced epoch, re-pushing only targets whose
    /// reported version is behind.
    #[test]
    fn recover_resumes_in_flight_wave() {
        let mut rng = SimRng::seed(11);
        let mut c = controller(8);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets, epoch } = &actions[0] else {
            panic!("expected canary push");
        };
        assert_eq!(*epoch, 1, "first incarnation runs at epoch 1");
        let version = *version;
        // One canary target committed and acked before the crash; the
        // second committed but its ack died with the controller.
        c.ack(targets[0], version, T(1));
        let durable = c.journal().clone();
        // Anti-entropy fleet report: both canary targets run `version`.
        let mut fleet: BTreeMap<TargetId, u64> = (0..8u32).map(|t| (t, 0)).collect();
        fleet.insert(targets[0], version);
        fleet.insert(targets[1], version);
        drop(c);
        let (mut c2, actions) =
            RolloutController::recover(RolloutConfig::default(), SimDuration::ZERO, &durable, &fleet, T(10));
        assert_eq!(c2.epoch(), 2, "recovered incarnation is fenced one past");
        assert!(c2.in_flight(), "healthy un-NACKed wave resumes");
        assert_eq!(c2.phase(), RolloutPhase::Canary);
        assert!(
            actions.is_empty(),
            "both canary targets already report the version: no re-push, got {actions:?}"
        );
        // The resumed rollout promotes and converges normally.
        let mut now = T(10);
        let mut guard = 0;
        let mut acts = Vec::new();
        while c2.phase() != RolloutPhase::Converged {
            ack_all(&mut c2, &acts, now);
            now += SimDuration::from_secs(31);
            acts = c2.tick(now, None);
            for a in &acts {
                let RolloutAction::Push { epoch, .. } = a else {
                    panic!("healthy resume must not roll back: {a:?}");
                };
                assert_eq!(*epoch, 2, "resumed pushes carry the new epoch");
            }
            guard += 1;
            assert!(guard < 50, "resumed rollout did not converge");
        }
        assert_eq!(c2.last_known_good(), version);
    }

    /// Crash mid-wave with an ack lost *and* the push lost: the journal
    /// over-reports exposure (write-ahead), so recovery re-pushes the
    /// unacked target idempotently.
    #[test]
    fn recover_repushes_unacked_targets() {
        let mut rng = SimRng::seed(12);
        let mut c = controller(6);
        let actions = c.begin(T(0), true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets, .. } = &actions[0] else {
            panic!("expected canary push");
        };
        let (version, canary) = (*version, targets.clone());
        let durable = c.journal().clone();
        // The crash ate both canary pushes: the fleet reports version 0.
        let fleet: BTreeMap<TargetId, u64> = (0..6u32).map(|t| (t, 0)).collect();
        drop(c);
        let (c2, actions) =
            RolloutController::recover(RolloutConfig::default(), SimDuration::ZERO, &durable, &fleet, T(5));
        assert_eq!(actions.len(), 1);
        let RolloutAction::Push { version: v, targets: re, epoch } = &actions[0] else {
            panic!("expected re-push, got {actions:?}");
        };
        assert_eq!((*v, *epoch), (version, 2));
        let mut re = re.clone();
        re.sort_unstable();
        let mut want = canary.clone();
        want.sort_unstable();
        assert_eq!(re, want, "exactly the journaled-but-unacked canary targets");
        assert!(c2.in_flight());
    }

    /// Crash mid-rollback: the journaled rollback intent is completed by
    /// the next incarnation for every target not yet back on the target
    /// version.
    #[test]
    fn recover_completes_mid_rollback() {
        let mut rng = SimRng::seed(13);
        let mut c = controller(6);
        // Converge v1 first so there is a last-known-good.
        let mut sizes = Vec::new();
        let t_conv = drive_to_converged(&mut c, &mut rng, T(0), &mut sizes);
        // Begin v2; canary NACKs; the rollback push is journaled but the
        // controller dies before it reaches the fleet.
        let actions = c.begin(t_conv, true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets, .. } = &actions[0] else {
            panic!("expected canary push");
        };
        let (v2, canary) = (*version, targets.clone());
        c.nack(canary[0], v2);
        let rb = c.tick(t_conv + SimDuration::from_secs(1), None);
        assert!(matches!(rb[0], RolloutAction::Rollback { .. }));
        let durable = c.journal().clone();
        // The canary targets still report the poisoned v2.
        let mut fleet: BTreeMap<TargetId, u64> = (0..6u32).map(|t| (t, 1)).collect();
        for &t in &canary {
            fleet.insert(t, v2);
        }
        drop(c);
        let (c2, actions) = RolloutController::recover(
            RolloutConfig::default(),
            SimDuration::ZERO,
            &durable,
            &fleet,
            t_conv + SimDuration::from_secs(30),
        );
        assert_eq!(c2.phase(), RolloutPhase::RolledBack);
        assert!(!c2.in_flight());
        assert_eq!(actions.len(), 1);
        let RolloutAction::Rollback { to, targets: rb_t, epoch } = &actions[0] else {
            panic!("expected rollback completion, got {actions:?}");
        };
        assert_eq!((*to, *epoch), (1, 2));
        let mut rb_t = rb_t.clone();
        rb_t.sort_unstable();
        let mut want = canary.clone();
        want.sort_unstable();
        assert_eq!(rb_t, want, "exactly the still-poisoned targets roll back");
    }

    /// Crash mid-wave of a version the journal shows NACKed: recovery
    /// aborts to last-known-good instead of resuming.
    #[test]
    fn recover_aborts_nacked_version() {
        let mut rng = SimRng::seed(14);
        let mut c = controller(4);
        let mut sizes = Vec::new();
        let t_conv = drive_to_converged(&mut c, &mut rng, T(0), &mut sizes);
        let actions = c.begin(t_conv, true, HealthSample::HEALTHY, &mut rng);
        let RolloutAction::Push { version, targets, .. } = &actions[0] else {
            panic!("expected canary push");
        };
        let (v2, canary) = (*version, targets.clone());
        // NACK journaled, but the controller dies before its tick could
        // emit the rollback.
        c.nack(canary[0], v2);
        let durable = c.journal().clone();
        let mut fleet: BTreeMap<TargetId, u64> = (0..4u32).map(|t| (t, 1)).collect();
        fleet.insert(canary[1], v2);
        drop(c);
        let (c2, actions) = RolloutController::recover(
            RolloutConfig::default(),
            SimDuration::ZERO,
            &durable,
            &fleet,
            t_conv + SimDuration::from_secs(5),
        );
        assert_eq!(c2.phase(), RolloutPhase::RolledBack);
        assert_eq!(c2.rollbacks(), 1);
        let RolloutAction::Rollback { to, .. } = &actions[0] else {
            panic!("expected abort rollback, got {actions:?}");
        };
        assert_eq!(*to, 1, "aborts to the journaled last-known-good");
        let o = c2.outcomes().back().unwrap();
        assert_eq!(o.version, v2);
        assert!(matches!(o.result, RolloutResult::RolledBack(RollbackReason::Nack { .. })));
    }

    /// Terminal journal: recovery is idle and only catches up stragglers.
    #[test]
    fn recover_terminal_journal_catches_up_stragglers() {
        let mut rng = SimRng::seed(15);
        let mut c = controller(4);
        let mut sizes = Vec::new();
        drive_to_converged(&mut c, &mut rng, T(0), &mut sizes);
        let durable = c.journal().clone();
        let mut fleet: BTreeMap<TargetId, u64> = (0..4u32).map(|t| (t, 1)).collect();
        fleet.insert(3, 0); // one gateway restarted empty
        drop(c);
        let (c2, actions) =
            RolloutController::recover(RolloutConfig::default(), SimDuration::ZERO, &durable, &fleet, T(99));
        assert!(!c2.in_flight());
        assert_eq!(c2.last_known_good(), 1);
        assert_eq!(
            actions,
            vec![RolloutAction::Push { version: 1, targets: vec![3], epoch: 2 }]
        );
        assert_eq!(c2.catch_up_pushes(), 1);
    }

    /// The outcome ring evicts past the cap, counts evictions, and stays
    /// digest-stable: two identically-driven controllers agree bit for bit
    /// even after eviction.
    #[test]
    fn outcome_eviction_is_bounded_and_digest_stable() {
        let fold = |c: &RolloutController| {
            let mut d = Digest::new();
            c.fold_digest(&mut d);
            d.value()
        };
        let drive = |seed: u64| {
            let mut rng = SimRng::seed(seed);
            let mut c = controller(1);
            let mut now = T(0);
            // Each failed-validation begin records one outcome cheaply.
            for _ in 0..(ROLLOUT_OUTCOMES_RETAIN_CAP + 10) {
                c.begin(now, false, HealthSample::HEALTHY, &mut rng);
                now += SimDuration::from_secs(1);
            }
            c
        };
        let a = drive(21);
        let b = drive(21);
        assert_eq!(a.outcomes().len(), ROLLOUT_OUTCOMES_RETAIN_CAP);
        assert_eq!(a.outcomes_evicted(), 10);
        assert_eq!(fold(&a), fold(&b), "eviction preserves digest stability");
        let c = drive(22);
        assert_eq!(fold(&a), fold(&c), "seed does not leak into outcome ring");
    }
}

