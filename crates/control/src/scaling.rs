//! Precise scaling: the `Reuse` / `New` strategies (§4.3, Figs. 17/18,
//! Table 4).
//!
//! After root-cause analysis names the hot service:
//!
//! * **Reuse** — extend the service onto an existing backend whose water
//!   level is below the reuse threshold (<20%). Fast: a config push and a
//!   bucket-table install, P50 ≈ 55 s end to end.
//! * **New** — no backend has headroom: create one. Slow: VM creation,
//!   image load, network setup, registration — P50 ≈ 17 min, which is why
//!   the paper pre-provisions (`New` "executed in advance").

use canal_gateway::gateway::{BackendId, Gateway};
use canal_net::{AzId, GlobalServiceId};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};

/// Which scaling strategy was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingKind {
    /// Extended the service to an existing low-water backend.
    Reuse,
    /// Created a new backend.
    New,
}

/// Timeline of one scaling operation (the Table 4 rows).
#[derive(Debug, Clone, Copy)]
pub struct ScalingRecord {
    /// Strategy chosen.
    pub kind: ScalingKind,
    /// The service scaled.
    pub service: GlobalServiceId,
    /// Backend the service was extended onto / created.
    pub backend: BackendId,
    /// When the operation was issued.
    pub executed_at: SimTime,
    /// When the extra capacity was serving traffic.
    pub finished_at: SimTime,
}

impl ScalingRecord {
    /// Execute→finish duration.
    pub fn duration(&self) -> SimDuration {
        self.finished_at.since(self.executed_at)
    }
}

/// Completion-time models, calibrated to Fig. 17 / Table 4.
#[derive(Debug, Clone, Copy)]
pub struct ScalingLatencies {
    /// Median `Reuse` completion (config push + redirector update).
    pub reuse_median: SimDuration,
    /// Lognormal sigma for `Reuse`.
    pub reuse_sigma: f64,
    /// Median `New` completion (VM create + image + network + registration).
    pub new_median: SimDuration,
    /// Lognormal sigma for `New`.
    pub new_sigma: f64,
}

impl Default for ScalingLatencies {
    fn default() -> Self {
        ScalingLatencies {
            reuse_median: SimDuration::from_secs(55),
            reuse_sigma: 0.35,
            new_median: SimDuration::from_secs(17 * 60),
            new_sigma: 0.25,
        }
    }
}

impl ScalingLatencies {
    /// Draw a `Reuse` completion time.
    pub fn draw_reuse(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal(self.reuse_median.as_secs_f64(), self.reuse_sigma))
    }

    /// Draw a `New` completion time.
    pub fn draw_new(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal(self.new_median.as_secs_f64(), self.new_sigma))
    }
}

/// The scaling engine: applies the §4.3 strategy against a gateway.
#[derive(Debug)]
pub struct ScalingEngine {
    /// A backend below this window utilization is reusable.
    pub reuse_threshold: f64,
    /// Completion-time models.
    pub latencies: ScalingLatencies,
    // lint:allow(bounded-state) reason=one record per executed scaling operation; the run horizon bounds the ledger
    ledger: Vec<ScalingRecord>,
}

impl Default for ScalingEngine {
    fn default() -> Self {
        ScalingEngine {
            reuse_threshold: 0.20,
            latencies: ScalingLatencies::default(),
            ledger: Vec::new(),
        }
    }
}

impl ScalingEngine {
    /// Fresh engine with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan a scaling operation without applying it: pick `Reuse` on a
    /// low-water backend in `az` not already hosting the service, else
    /// provision a `New` backend (the VM starts building immediately, but
    /// the service is not extended onto it yet). The returned record's
    /// `finished_at` is when capacity becomes effective — apply it then via
    /// [`Self::apply`]. This is the event-driven path (the capacity gap of
    /// Fig. 17 exists precisely because completion lags execution).
    pub fn plan(
        &mut self,
        now: SimTime,
        gateway: &mut Gateway,
        service: GlobalServiceId,
        az: AzId,
        backend_utils: &[(BackendId, f64)],
        rng: &mut SimRng,
    ) -> ScalingRecord {
        let hosted = gateway.backends_of(service);
        let reusable = backend_utils
            .iter()
            .filter(|&&(b, util)| {
                util < self.reuse_threshold
                    && !hosted.contains(&b)
                    && gateway.placement().az_of(b) == Some(az)
                    && gateway.placement().backend_available(b)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(b, _)| b);

        let record = match reusable {
            Some(backend) => ScalingRecord {
                kind: ScalingKind::Reuse,
                service,
                backend,
                executed_at: now,
                finished_at: now + self.latencies.draw_reuse(rng),
            },
            None => {
                let backend = gateway.scale_new_backend(az);
                ScalingRecord {
                    kind: ScalingKind::New,
                    service,
                    backend,
                    executed_at: now,
                    finished_at: now + self.latencies.draw_new(rng),
                }
            }
        };
        self.ledger.push(record);
        record
    }

    /// Make a planned operation's capacity effective: extend the service
    /// onto the chosen backend. Idempotent.
    pub fn apply(gateway: &mut Gateway, record: &ScalingRecord) {
        gateway.extend_service(record.service, record.backend);
    }

    /// Scale `service` in `az` and apply the placement change immediately
    /// (the synchronous convenience path; see [`Self::plan`] for the
    /// event-driven one).
    pub fn scale(
        &mut self,
        now: SimTime,
        gateway: &mut Gateway,
        service: GlobalServiceId,
        az: AzId,
        backend_utils: &[(BackendId, f64)],
        rng: &mut SimRng,
    ) -> ScalingRecord {
        let record = self.plan(now, gateway, service, az, backend_utils, rng);
        Self::apply(gateway, &record);
        record
    }

    /// All scaling operations performed (the Fig. 18 ledger).
    pub fn ledger(&self) -> &[ScalingRecord] {
        &self.ledger
    }

    /// Count of operations by kind.
    pub fn counts(&self) -> (usize, usize) {
        let reuse = self
            .ledger
            .iter()
            .filter(|r| r.kind == ScalingKind::Reuse)
            .count();
        (reuse, self.ledger.len() - reuse)
    }

    /// Fold the engine state into a digest: the `reuse_threshold`, the
    /// `latencies` model parameters, and every `ledger` record.
    pub fn fold_digest(&self, d: &mut Digest) {
        d.write_f64(self.reuse_threshold)
            .write_u64(self.latencies.reuse_median.as_nanos())
            .write_f64(self.latencies.reuse_sigma)
            .write_u64(self.latencies.new_median.as_nanos())
            .write_f64(self.latencies.new_sigma)
            .write_u64(self.ledger.len() as u64);
        for r in &self.ledger {
            let kind = match r.kind {
                ScalingKind::Reuse => 1,
                ScalingKind::New => 2,
            };
            d.write_u64(kind)
                .write_u64(r.service.0)
                .write_u64(r.backend as u64)
                .write_u64(r.executed_at.as_nanos())
                .write_u64(r.finished_at.as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_gateway::gateway::GatewayConfig;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    const T: fn(u64) -> SimTime = SimTime::from_secs;

    fn setup() -> (Gateway, GlobalServiceId, SimRng) {
        let mut gw = Gateway::new(GatewayConfig::default());
        let mut rng = SimRng::seed(7);
        let s = svc(1);
        gw.register_service(s, &mut rng);
        (gw, s, rng)
    }

    #[test]
    fn reuse_preferred_when_headroom_exists() {
        let (mut gw, s, mut rng) = setup();
        let mut eng = ScalingEngine::new();
        // Find an AZ0 backend not hosting the service, report it idle.
        let hosted = gw.backends_of(s);
        let utils: Vec<(BackendId, f64)> = gw
            .backends()
            .iter()
            .map(|&(b, _)| (b, if hosted.contains(&b) { 0.9 } else { 0.05 }))
            .collect();
        let r = eng.scale(T(100), &mut gw, s, AzId(0), &utils, &mut rng);
        assert_eq!(r.kind, ScalingKind::Reuse);
        assert!(gw.backends_of(s).contains(&r.backend));
        // Fig. 17 scale: around a minute, not tens of minutes.
        assert!(r.duration() < SimDuration::from_secs(240), "{}", r.duration());
    }

    #[test]
    fn new_when_all_backends_hot() {
        let (mut gw, s, mut rng) = setup();
        let mut eng = ScalingEngine::new();
        let utils: Vec<(BackendId, f64)> = gw
            .backends()
            .iter()
            .map(|&(b, _)| (b, 0.85))
            .collect();
        let before = gw.backends().len();
        let r = eng.scale(T(100), &mut gw, s, AzId(0), &utils, &mut rng);
        assert_eq!(r.kind, ScalingKind::New);
        assert_eq!(gw.backends().len(), before + 1);
        assert_eq!(gw.placement().az_of(r.backend), Some(AzId(0)));
        // New takes many minutes.
        assert!(r.duration() > SimDuration::from_secs(300), "{}", r.duration());
    }

    #[test]
    fn reuse_respects_the_az() {
        let (mut gw, s, mut rng) = setup();
        let mut eng = ScalingEngine::new();
        // All idle backends are in AZ1; scaling in AZ0 must go New.
        let utils: Vec<(BackendId, f64)> = gw
            .backends()
            .iter()
            .map(|&(b, az)| (b, if az == AzId(1) { 0.05 } else { 0.9 }))
            .collect();
        let r = eng.scale(T(0), &mut gw, s, AzId(0), &utils, &mut rng);
        assert_eq!(r.kind, ScalingKind::New);
    }

    #[test]
    fn completion_time_distributions_match_fig17() {
        let lat = ScalingLatencies::default();
        let mut rng = SimRng::seed(1);
        let reuse: Vec<f64> = (0..2000).map(|_| lat.draw_reuse(&mut rng).as_secs_f64()).collect();
        let news: Vec<f64> = (0..2000).map(|_| lat.draw_new(&mut rng).as_secs_f64()).collect();
        let p50_reuse = canal_sim::stats::percentile(&reuse, 0.5);
        let p50_new = canal_sim::stats::percentile(&news, 0.5);
        assert!((45.0..65.0).contains(&p50_reuse), "{p50_reuse}");
        assert!((15.0 * 60.0..19.0 * 60.0).contains(&p50_new), "{p50_new}");
    }

    #[test]
    fn plan_defers_capacity_until_apply() {
        let (mut gw, s, mut rng) = setup();
        let mut eng = ScalingEngine::new();
        let idle: Vec<(BackendId, f64)> = gw.backends().iter().map(|&(b, _)| (b, 0.01)).collect();
        let before = gw.backends_of(s).len();
        let record = eng.plan(T(5), &mut gw, s, AzId(0), &idle, &mut rng);
        // Nothing serves from the new placement yet.
        assert_eq!(gw.backends_of(s).len(), before);
        assert!(record.finished_at > record.executed_at);
        ScalingEngine::apply(&mut gw, &record);
        assert_eq!(gw.backends_of(s).len(), before + 1);
        // Re-applying is harmless.
        ScalingEngine::apply(&mut gw, &record);
        assert_eq!(gw.backends_of(s).len(), before + 1);
    }

    #[test]
    fn ledger_records_operations() {
        let (mut gw, s, mut rng) = setup();
        let mut eng = ScalingEngine::new();
        let idle: Vec<(BackendId, f64)> = gw.backends().iter().map(|&(b, _)| (b, 0.01)).collect();
        let hot: Vec<(BackendId, f64)> = gw.backends().iter().map(|&(b, _)| (b, 0.99)).collect();
        eng.scale(T(0), &mut gw, s, AzId(0), &idle, &mut rng);
        eng.scale(T(10), &mut gw, svc(2), AzId(0), &hot, &mut rng);
        let (reuse, new) = eng.counts();
        assert_eq!((reuse, new), (1, 1));
        assert_eq!(eng.ledger().len(), 2);
    }
}
