//! Event-driven region simulation.
//!
//! Wires the whole control loop onto the discrete-event engine
//! (`canal_sim::Simulation`): workload arrivals, periodic monitoring
//! windows, anomaly decisions, and — crucially — scaling operations whose
//! capacity only becomes effective at their modeled completion instant
//! (`Reuse` P50 ≈ 55 s, `New` ≈ 17 min). That completion lag is why the
//! paper pre-provisions `New`: between executing a scale and its finish,
//! the hot backend keeps burning.
//!
//! Used by the `region_day` example and the event-driven variants of the
//! cloud experiments.

use crate::monitor::{MonitorDecision, WaterLevelMonitor};
use crate::scaling::ScalingEngine;
use canal_gateway::gateway::{Gateway, GatewayError};
use canal_gateway::sandbox::MigrationReport;
use canal_net::{AzId, Endpoint, FiveTuple, GlobalServiceId, VpcAddr, VpcId};
use canal_sim::{Digest, Model, Scheduler, SimDuration, SimRng, SimTime, Simulation, TimeSeries};
use canal_workload::rps::RpsProcess;
use std::collections::{BTreeMap, BTreeSet};

/// Events driving the region.
#[derive(Debug, Clone)]
pub enum RegionEvent {
    /// Generate one second of arrivals for every service.
    TrafficTick,
    /// Read water levels, classify, decide.
    MonitorTick,
    /// A planned scaling operation finished; its capacity becomes real.
    ScalingCompleted {
        /// Index into the engine's ledger.
        ledger_index: usize,
    },
    /// A sandbox migration finished.
    MigrationCompleted {
        /// The migrated service.
        service: GlobalServiceId,
    },
}

/// Per-run output.
#[derive(Debug, Default)]
pub struct RegionReport {
    /// Hottest-backend utilization per monitor window.
    pub hot_utilization: TimeSeries,
    /// Total offered RPS per traffic tick.
    pub offered_rps: TimeSeries,
    /// Requests served / errored.
    pub served: u64,
    /// Gateway-side errors (throttle/unavailable/session exhaustion).
    pub errors: u64,
    /// Scaling operations `(executed_at, finished_at, is_reuse)`.
    pub scalings: Vec<(SimTime, SimTime, bool)>,
    /// Migrations performed.
    pub migrations: Vec<MigrationReport>,
}

/// The region model: gateway + monitor + scaling engine + workloads.
pub struct RegionSimulation {
    /// The mesh gateway under test.
    pub gateway: Gateway,
    monitor: WaterLevelMonitor,
    engine: ScalingEngine,
    // lint:allow(bounded-state) reason=one entry per registered service; workloads are attached at setup, never per request
    workloads: BTreeMap<GlobalServiceId, RpsProcess>,
    rng: SimRng,
    horizon: SimTime,
    monitor_period: SimDuration,
    /// Services with a scaling operation in flight (debounce: the paper's
    /// "minimal scaling operations" — don't re-plan while one is pending).
    pending_scalings: BTreeSet<GlobalServiceId>,
    /// Traffic sampling divisor (1 = full scale; 100 = 1% of arrivals).
    pub sample_divisor: u64,
    sport: u16,
    /// Collected output.
    pub report: RegionReport,
}

impl RegionSimulation {
    /// Build a region over an existing gateway; services must already be
    /// registered on it. The caller supplies the `rng` so every random
    /// stream in a run flows from an explicit seed at the call site.
    pub fn new(gateway: Gateway, horizon: SimTime, rng: SimRng) -> Self {
        RegionSimulation {
            gateway,
            monitor: WaterLevelMonitor::new(),
            engine: ScalingEngine::new(),
            workloads: BTreeMap::new(),
            rng,
            horizon,
            monitor_period: SimDuration::from_secs(5),
            pending_scalings: BTreeSet::new(),
            sample_divisor: 1,
            sport: 1,
            report: RegionReport::default(),
        }
    }

    /// Attach a workload to a registered service.
    pub fn add_workload(&mut self, service: GlobalServiceId, process: RpsProcess) {
        self.workloads.insert(service, process);
    }

    /// Access the scaling engine (e.g. to tune latencies before running).
    pub fn engine_mut(&mut self) -> &mut ScalingEngine {
        &mut self.engine
    }

    /// Run to the horizon and return the report.
    pub fn run(mut self) -> RegionReport {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, RegionEvent::TrafficTick);
        sim.schedule(SimTime::ZERO + self.monitor_period, RegionEvent::MonitorTick);
        sim.run(&mut self);
        let (served, errors) = self.gateway.stats();
        self.report.served = served;
        self.report.errors = errors;
        self.report.scalings = self
            .engine
            .ledger()
            .iter()
            .map(|r| {
                (
                    r.executed_at,
                    r.finished_at,
                    r.kind == crate::scaling::ScalingKind::Reuse,
                )
            })
            .collect();
        self.report
    }

    /// Fold the whole region state into a digest: `gateway`, `monitor`,
    /// `engine` and `rng` delegate to their own folds; `workloads` keys,
    /// the clocking knobs, `pending_scalings`, `sample_divisor`, `sport`
    /// and the accumulated `report` fold inline.
    pub fn fold_digest(&self, d: &mut Digest) {
        self.gateway.fold_digest(d);
        self.monitor.fold_digest(d);
        self.engine.fold_digest(d);
        d.write_u64(self.workloads.len() as u64);
        for svc in self.workloads.keys() {
            d.write_u64(svc.0);
        }
        self.rng.fold_digest(d);
        d.write_u64(self.horizon.as_nanos())
            .write_u64(self.monitor_period.as_nanos())
            .write_u64(self.pending_scalings.len() as u64);
        for svc in &self.pending_scalings {
            d.write_u64(svc.0);
        }
        d.write_u64(self.sample_divisor).write_u64(self.sport as u64);
        self.report.hot_utilization.fold_digest(d);
        self.report.offered_rps.fold_digest(d);
        d.write_u64(self.report.served)
            .write_u64(self.report.errors)
            .write_u64(self.report.scalings.len() as u64);
        for &(exec, fin, reuse) in &self.report.scalings {
            d.write_u64(exec.as_nanos())
                .write_u64(fin.as_nanos())
                .write_u64(reuse as u64);
        }
        d.write_u64(self.report.migrations.len() as u64);
    }

    fn tuple(&mut self) -> FiveTuple {
        self.sport = self.sport.wrapping_add(1).max(1);
        let sport = self.sport;
        FiveTuple::tcp(
            Endpoint::new(
                VpcAddr::new(VpcId(1), 10, 4, (sport >> 8) as u8, sport as u8),
                sport,
            ),
            Endpoint::new(VpcAddr::new(VpcId(1), 10, 6, 6, 6), 8443),
        )
    }
}

impl Model for RegionSimulation {
    type Event = RegionEvent;

    fn handle(&mut self, now: SimTime, event: RegionEvent, sched: &mut Scheduler<RegionEvent>) {
        match event {
            RegionEvent::TrafficTick => {
                let mut offered = 0.0;
                let services: Vec<(GlobalServiceId, u64)> = self
                    .workloads
                    .iter()
                    .map(|(&svc, process)| {
                        let rate = process.rate_at(now);
                        offered += rate;
                        (svc, (rate / self.sample_divisor as f64) as u64)
                    })
                    .collect();
                for (svc, n) in services {
                    for i in 0..n {
                        let at = now + SimDuration::from_millis(i * 1000 / n.max(1));
                        let t = self.tuple();
                        match self.gateway.handle_request(at, svc, &t, true) {
                            Ok(_) | Err(GatewayError::Throttled) => {}
                            Err(_) => {}
                        }
                    }
                }
                self.report.offered_rps.push(now, offered);
                if now + SimDuration::from_secs(1) <= self.horizon {
                    sched.after(SimDuration::from_secs(1), RegionEvent::TrafficTick);
                }
            }
            RegionEvent::MonitorTick => {
                let levels = self.gateway.water_levels(now);
                let utils: Vec<(u32, f64)> =
                    levels.iter().map(|w| (w.backend, w.utilization)).collect();
                let hot = levels.iter().map(|w| w.utilization).fold(0.0f64, f64::max);
                self.report.hot_utilization.push(now, hot);
                let decisions = self.monitor.ingest(now, &levels, 0.70);
                for (backend, _class, decision) in decisions {
                    let az = self
                        .gateway
                        .placement()
                        .az_of(backend)
                        .unwrap_or(AzId(0));
                    match decision {
                        MonitorDecision::Scale(service) => {
                            if !self.pending_scalings.insert(service) {
                                continue; // one in flight already
                            }
                            let record = self.engine.plan(
                                now,
                                &mut self.gateway,
                                service,
                                az,
                                &utils,
                                &mut self.rng,
                            );
                            let idx = self.engine.ledger().len() - 1;
                            sched.at(
                                record.finished_at,
                                RegionEvent::ScalingCompleted { ledger_index: idx },
                            );
                        }
                        MonitorDecision::MigrateLossy(service) => {
                            let sessions: usize = self
                                .gateway
                                .backends_of(service)
                                .iter()
                                .map(|&b| self.gateway.backend_sessions(b))
                                .sum();
                            let report = self.gateway.sandbox.migrate_lossy(now, service, sessions);
                            sched.at(
                                report.completed_at,
                                RegionEvent::MigrationCompleted { service },
                            );
                            self.report.migrations.push(report);
                        }
                        MonitorDecision::MigrateLossless(service) => {
                            let lifetimes: Vec<SimDuration> = (0..16)
                                .map(|_| {
                                    SimDuration::from_secs_f64(self.rng.lognormal(1200.0, 0.4))
                                })
                                .collect();
                            let report =
                                self.gateway.sandbox.migrate_lossless(now, service, &lifetimes);
                            sched.at(
                                report.completed_at,
                                RegionEvent::MigrationCompleted { service },
                            );
                            self.report.migrations.push(report);
                        }
                        MonitorDecision::Throttle(service) => {
                            // Cap the service at roughly its current rate.
                            let rate = self
                                .workloads
                                .get(&service)
                                .map(|p| p.rate_at(now) / self.sample_divisor as f64)
                                .unwrap_or(1000.0);
                            self.gateway.sandbox.throttle(service, rate, rate / 10.0);
                        }
                        MonitorDecision::Observe => {}
                    }
                }
                if now + self.monitor_period <= self.horizon {
                    sched.after(self.monitor_period, RegionEvent::MonitorTick);
                }
            }
            RegionEvent::ScalingCompleted { ledger_index } => {
                let record = self.engine.ledger()[ledger_index];
                ScalingEngine::apply(&mut self.gateway, &record);
                self.pending_scalings.remove(&record.service);
            }
            RegionEvent::MigrationCompleted { service } => {
                // Fully cut over: release from the sandbox back to the pool.
                self.gateway.sandbox.release(service);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canal_gateway::gateway::GatewayConfig;
    use canal_net::{ServiceId, TenantId};

    fn svc(i: u32) -> GlobalServiceId {
        GlobalServiceId::compose(TenantId(1), ServiceId(i))
    }

    fn build_region(seed: u64, reuse_median_s: u64) -> RegionSimulation {
        let cfg = GatewayConfig {
            cpu_per_request: SimDuration::from_millis(8),
            backends_per_az: 6,
            sessions_per_replica: 4_000_000,
            ..GatewayConfig::default()
        };
        let mut gw = Gateway::new(cfg);
        let mut rng = SimRng::seed(seed);
        gw.register_service(svc(1), &mut rng);
        let mut region = RegionSimulation::new(gw, SimTime::from_secs(240), SimRng::seed(seed));
        region.engine_mut().latencies.reuse_median = SimDuration::from_secs(reuse_median_s);
        region.add_workload(
            svc(1),
            RpsProcess::Spike {
                base: 100.0,
                at: 60.0,
                duration: 1_000.0,
                factor: 24.0,
            },
        );
        region
    }

    #[test]
    fn capacity_arrives_only_at_completion() {
        // With a 60s Reuse completion, the hot window must persist for
        // ~60s after the spike before utilization falls.
        let report = build_region(3, 60).run();
        let spike = SimTime::from_secs(60);
        let hot_at = report
            .hot_utilization
            .first_time(spike, |u| u > 0.7)
            .expect("spike must trip the threshold");
        let recovered_at = report
            .hot_utilization
            .first_time(hot_at, |u| u < 0.6)
            .expect("must eventually recover");
        let lag = recovered_at.since(hot_at).as_secs_f64();
        assert!(lag >= 45.0, "capacity arrived too early: {lag}s");
        assert!(!report.scalings.is_empty());
        // Every applied scaling finished after it executed.
        assert!(report.scalings.iter().all(|&(exec, fin, _)| fin > exec));
    }

    #[test]
    fn fast_completion_recovers_faster_than_slow() {
        let fast = build_region(3, 10).run();
        let slow = build_region(3, 120).run();
        let recover = |r: &RegionReport| {
            let hot = r.hot_utilization.first_time(SimTime::from_secs(60), |u| u > 0.7)?;
            r.hot_utilization.first_time(hot, |u| u < 0.6)
        };
        let f = recover(&fast).expect("fast recovers");
        if let Some(s) = recover(&slow) {
            assert!(f < s, "fast {f} vs slow {s}");
        }
        // (The slow run may not recover within the horizon at all — also
        // an acceptable demonstration of the completion gap.)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_region(9, 30).run();
        let b = build_region(9, 30).run();
        assert_eq!(a.served, b.served);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.scalings.len(), b.scalings.len());
        assert_eq!(
            a.hot_utilization.points().len(),
            b.hot_utilization.points().len()
        );
        for (x, y) in a
            .hot_utilization
            .points()
            .iter()
            .zip(b.hot_utilization.points())
        {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }

    #[test]
    fn quiet_region_never_scales() {
        let cfg = GatewayConfig {
            cpu_per_request: SimDuration::from_millis(2),
            ..GatewayConfig::default()
        };
        let mut gw = Gateway::new(cfg);
        let mut rng = SimRng::seed(4);
        gw.register_service(svc(1), &mut rng);
        let mut region = RegionSimulation::new(gw, SimTime::from_secs(120), SimRng::seed(4));
        region.add_workload(svc(1), RpsProcess::Constant { rps: 50.0 });
        let report = region.run();
        assert!(report.scalings.is_empty());
        assert_eq!(report.errors, 0);
        assert!(report.served > 0);
    }
}
