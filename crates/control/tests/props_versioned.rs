//! Randomized (property-style) tests over [`VersionedConfigStore`]: the
//! invariants the rollout controller leans on. Cases come from a seeded
//! `SimRng` so runs are reproducible.
//!
//! * acked version is monotone per target — no replay regresses a proxy;
//! * a NACK is cleared only by an ack of the same-or-later version;
//! * `converged()` ⇔ every target's acked version is at head;
//! * debounce coalescing never loses the final change — after a flush, the
//!   store's version covers every change recorded before it.

use canal_control::versioned::VersionedConfigStore;
use canal_sim::{SimDuration, SimRng, SimTime};

const CASES: usize = 64;

fn t(secs: u64) -> SimTime {
    SimTime::from_secs(secs)
}

/// Drive a random interleaving of change/flush/ack/nack operations and
/// check the store's invariants after every step.
#[test]
fn acked_versions_are_monotone_and_nacks_clear_only_by_later_ack() {
    let mut meta = SimRng::seed(0x005E_ED11);
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xACC0 + case as u64 + meta.u64() % 7);
        let targets = 2 + rng.index(6) as u32;
        let mut store = VersionedConfigStore::new(SimDuration::from_secs(2));
        for tgt in 0..targets {
            store.add_target(tgt);
        }
        let mut acked: Vec<u64> = vec![0; targets as usize];
        let mut nacked: Vec<Option<u64>> = vec![None; targets as usize];
        let mut now = 0u64;
        for _ in 0..200 {
            now += 1 + rng.index(5) as u64;
            match rng.index(5) {
                0 => {
                    store.record_change(t(now));
                }
                1 => {
                    store.flush_push(t(now));
                }
                2 => {
                    let tgt = rng.index(targets as usize) as u32;
                    // Ack a random version around head (unissued ones bounce).
                    let v = rng.index(store.version() as usize + 2) as u64;
                    let before = acked[tgt as usize];
                    if store.ack(tgt, v, t(now)) && v <= store.version() && v > before {
                        // Monotone: only a strictly later ack advances, and
                        // only a same-or-later ack clears a NACK.
                        acked[tgt as usize] = v;
                        if nacked[tgt as usize].is_some_and(|n| n <= v) {
                            nacked[tgt as usize] = None;
                        }
                    }
                }
                3 => {
                    let tgt = rng.index(targets as usize) as u32;
                    let v = store.version().max(1);
                    if store.nack(tgt, v) {
                        nacked[tgt as usize] = Some(v);
                    }
                }
                _ => {
                    store.record_change(t(now));
                    store.flush_push(t(now));
                }
            }
            // Invariant: the store's per-target state matches the model.
            for tgt in 0..targets {
                let s = store.ack_state(tgt).unwrap();
                assert_eq!(
                    s.acked, acked[tgt as usize],
                    "case {case}: target {tgt} acked version drifted"
                );
                assert_eq!(
                    s.nacked, nacked[tgt as usize],
                    "case {case}: target {tgt} nack state drifted"
                );
            }
        }
    }
}

/// `converged()` must hold exactly when every registered target has acked
/// the store's head version.
#[test]
fn converged_iff_all_targets_at_head() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xC0117 + case as u64);
        let targets = 1 + rng.index(8) as u32;
        let mut store = VersionedConfigStore::new(SimDuration::ZERO);
        for tgt in 0..targets {
            store.add_target(tgt);
        }
        let mut now = 0u64;
        for _ in 0..100 {
            now += 1;
            match rng.index(3) {
                0 => {
                    store.record_change(t(now));
                    store.flush_push(t(now));
                }
                _ => {
                    let tgt = rng.index(targets as usize) as u32;
                    let v = if rng.chance(0.8) {
                        store.version()
                    } else {
                        store.version().saturating_sub(1)
                    };
                    store.ack(tgt, v, t(now));
                }
            }
            let head = store.version();
            let all_at_head =
                (0..targets).all(|tgt| store.ack_state(tgt).unwrap().acked >= head);
            assert_eq!(
                store.converged(),
                all_at_head,
                "case {case}: converged() disagrees with per-target acks at head {head}"
            );
        }
    }
}

/// However changes interleave with flushes, after the last flush the
/// store's version covers every change recorded before it: coalescing
/// drops *pushes*, never the final configuration content.
#[test]
fn debounce_coalescing_never_loses_the_final_change() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xDEB0 + case as u64);
        let debounce = SimDuration::from_secs(1 + rng.index(5) as u64);
        let mut store = VersionedConfigStore::new(debounce);
        store.add_target(0);
        let mut now = 0u64;
        let mut last_change_version = 0u64;
        for _ in 0..300 {
            now += rng.index(3) as u64; // including same-instant bursts
            if rng.chance(0.7) {
                last_change_version = store.record_change(t(now));
                // A change is never assigned a version below the head.
                assert_eq!(last_change_version, store.version());
            } else {
                store.flush_push(t(now));
            }
        }
        store.flush_push(t(now + 100));
        // The final recorded change is exactly the store's head: nothing
        // recorded later than it, nothing lost by coalescing.
        assert_eq!(store.version(), last_change_version);
        // And a target acking head converges the fleet-of-one.
        store.ack(0, store.version(), t(now + 101));
        assert!(store.converged());
        // At least the final flush issued a push, and coalescing only ever
        // absorbed changes (it cannot manufacture versions).
        let (pushes, coalesced) = store.stats();
        assert!(pushes >= 1, "case {case}: the closing flush must push");
        assert!(
            store.version() + coalesced >= 1,
            "case {case}: changes recorded"
        );
    }
}
