//! Randomized (property-style) tests over the write-ahead rollout
//! [`Journal`]: the invariants crash recovery leans on (DESIGN.md §15).
//! Journals are produced organically by driving a real
//! [`RolloutController`] through random begin/ack/nack/tick interleavings
//! with a seeded `SimRng`, so every case is reproducible.
//!
//! * replay is idempotent — folding the record stream twice (or any
//!   truncated prefix twice) equals folding it once;
//! * write-ahead — a crash-truncated prefix never reconstructs a target
//!   as exposed unless the surviving journal recorded the wave cut that
//!   pushed it, and every push action the controller hands out is already
//!   covered by a journaled wave cut / rollback at the moment it leaves;
//! * truncating at the full length loses nothing.

use std::collections::BTreeSet;

use canal_control::journal::{Journal, JournalRecord};
use canal_control::rollout::{HealthSample, RolloutAction, RolloutConfig, RolloutController};
use canal_sim::{Digest, SimDuration, SimRng, SimTime};

const CASES: usize = 64;

/// Drive a controller through a random rollout history and return its
/// journal. The driver acks/nacks targets at random, advances time in
/// random strides (so bakes, ack timeouts and promotions all fire), and
/// checks the write-ahead invariant on every action batch: any target a
/// `Push` covers is already in a journaled `WaveCut` for that version,
/// and any `Rollback` target is already in a journaled `Rollback` record.
fn random_history(seed: u64) -> Journal {
    let mut rng = SimRng::seed(seed);
    let fleet = 3 + rng.index(6) as u32;
    let cfg = RolloutConfig {
        canary_size: 1 + rng.index(2),
        wave_growth: 2 + rng.index(3),
        bake_time: SimDuration::from_millis(200),
        ack_timeout: SimDuration::from_millis(800),
        ..RolloutConfig::default()
    };
    let mut ctl = RolloutController::new(cfg, SimDuration::ZERO);
    for g in 0..fleet {
        ctl.add_target(g);
    }
    let mut now = SimTime::ZERO;
    let mut outstanding: Vec<(u32, u64)> = Vec::new();
    for _ in 0..200 {
        now += SimDuration::from_millis(50 + rng.index(200) as u64);
        let mut actions = Vec::new();
        if !ctl.in_flight() && rng.chance(0.5) {
            actions.extend(ctl.begin(now, rng.chance(0.9), HealthSample::HEALTHY, &mut rng));
        }
        let health = if rng.chance(0.1) {
            HealthSample { error_rate: 0.3, p99: SimDuration::ZERO }
        } else {
            HealthSample::HEALTHY
        };
        actions.extend(ctl.tick(now, Some(health)));
        for action in &actions {
            assert_write_ahead(ctl.journal(), action, seed);
            match action {
                RolloutAction::Push { version, targets, .. } => {
                    outstanding.extend(targets.iter().map(|&t| (t, *version)));
                }
                RolloutAction::Rollback { to, targets, .. } => {
                    outstanding.extend(targets.iter().map(|&t| (t, *to)));
                }
            }
        }
        // Deliver a random subset of outstanding pushes as acks or nacks;
        // the rest stay in flight (some will hit the ack timeout).
        let mut i = 0;
        while i < outstanding.len() {
            if rng.chance(0.6) {
                let (target, version) = outstanding.swap_remove(i);
                if rng.chance(0.9) {
                    ctl.ack(target, version, now);
                } else {
                    ctl.nack(target, version);
                }
            } else {
                i += 1;
            }
        }
    }
    ctl.journal().clone()
}

/// Write-ahead: at the moment an action is handed south, the journal
/// already carries the record that covers it.
fn assert_write_ahead(journal: &Journal, action: &RolloutAction, seed: u64) {
    match action {
        RolloutAction::Push { version, targets, .. } => {
            let cut: BTreeSet<u32> = journal
                .records()
                .filter_map(|r| match r {
                    JournalRecord::WaveCut { version: v, targets, .. } if v == version => {
                        Some(targets.iter().copied())
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            for t in targets {
                assert!(
                    cut.contains(t),
                    "seed {seed}: push of v{version} to target {t} left before its wave cut was journaled"
                );
            }
        }
        RolloutAction::Rollback { to, targets, .. } => {
            let rolled: BTreeSet<u32> = journal
                .records()
                .filter_map(|r| match r {
                    JournalRecord::Rollback { to: rt, targets, .. } if rt == to => {
                        Some(targets.iter().copied())
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            for t in targets {
                assert!(
                    rolled.contains(t),
                    "seed {seed}: rollback to v{to} of target {t} left before it was journaled"
                );
            }
        }
    }
}

fn digest_of(state: &canal_control::journal::ReplayState) -> u64 {
    let mut d = Digest::new();
    state.fold_digest(&mut d);
    d.value()
}

/// Replaying a journal twice — re-applying every retained record on top of
/// a completed replay — must equal replaying it once, for the full journal
/// and for every crash-truncated prefix.
#[test]
fn replay_is_idempotent_for_every_truncated_prefix() {
    for case in 0..CASES {
        let journal = random_history(0x10_0E_17 + case as u64);
        // Check a spread of truncation points including the boundaries.
        let len = journal.len();
        let mut points: Vec<usize> = vec![0, len / 3, len / 2, len];
        points.dedup();
        for keep in points {
            let crashed = journal.truncated(keep);
            let once = crashed.replay();
            let mut twice = once.clone();
            for rec in crashed.records() {
                twice.apply(rec);
            }
            assert_eq!(
                once, twice,
                "case {case}: replaying prefix keep={keep} twice diverged from once"
            );
            assert_eq!(
                digest_of(&once),
                digest_of(&twice),
                "case {case}: prefix keep={keep} replay digests diverged"
            );
        }
    }
}

/// A crash-truncated prefix never reconstructs a target as exposed unless
/// the surviving journal recorded the wave cut that pushed it. (The
/// converse over-report — exposed per the journal but the push never left
/// the wire — is allowed and safe: recovery's re-push is idempotent.)
#[test]
fn truncated_prefix_never_invents_exposure() {
    for case in 0..CASES {
        let journal = random_history(0xE4_05_0E + case as u64);
        for keep in 0..=journal.len() {
            let crashed = journal.truncated(keep);
            // Every target a surviving WaveCut record covers, per version.
            let state = crashed.replay();
            let Some(fl) = state.in_flight.as_ref() else {
                continue;
            };
            let journaled: BTreeSet<u32> = crashed
                .records()
                .filter_map(|r| match r {
                    JournalRecord::WaveCut { version, targets, .. }
                        if *version == fl.version =>
                    {
                        Some(targets.iter().copied())
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            for t in &fl.exposed {
                assert!(
                    journaled.contains(t),
                    "case {case} keep={keep}: target {t} reconstructed as exposed to v{} \
                     without a journaled wave cut",
                    fl.version
                );
            }
        }
    }
}

/// Truncating at the full retained length is the identity for replay: the
/// "crash" lost nothing, so recovery sees exactly the live state.
#[test]
fn truncation_at_full_length_loses_nothing() {
    for case in 0..CASES {
        let journal = random_history(0xF0_11 + case as u64);
        let full = journal.replay();
        let kept = journal.truncated(journal.len()).replay();
        assert_eq!(
            full, kept,
            "case {case}: full-length truncation changed the replay state"
        );
    }
}
