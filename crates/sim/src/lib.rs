//! # canal-sim
//!
//! Deterministic discrete-event simulation substrate for the Canal Mesh
//! reproduction.
//!
//! The crate provides four building blocks used by every other crate in the
//! workspace:
//!
//! * [`time`] — a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with no dependency on wall-clock time, so every run is
//!   reproducible.
//! * [`engine`] — an event queue and driver loop in the classic
//!   model-handles-event style: the model is an explicit state machine, the
//!   engine owns time.
//! * [`rng`] — a seeded random-number source with the distribution samplers
//!   the workloads need (exponential, normal, lognormal, Pareto, Zipf).
//! * [`metrics`] / [`stats`] / [`output`] — counters, gauges, log-bucketed
//!   histograms, time series, summary statistics, and plain-text/CSV table
//!   writers used by the experiment harness.
//! * [`queueing`] — a multi-core FIFO server used to model proxy CPUs; both
//!   queueing delay and CPU utilization fall out of busy-time integration
//!   rather than closed-form approximations. Its fair-queueing sibling
//!   ([`FairCpuServer`]) adds bounded per-class queues and deficit-weighted
//!   round-robin scheduling for the gateway overload-control layer.
//! * [`faults`] — deterministic fault injection: seed-reproducible
//!   [`FaultPlan`]s (scenario DSL + MTTF/MTTR random plans) scheduling typed
//!   fault events into a simulation, with [`FaultState`] ground-truth
//!   bookkeeping for chaos experiments (Fig. 8).
//! * [`invariant`] — runtime determinism self-checks: the engine
//!   debug-asserts event-order invariants on every dispatch, and [`Digest`]
//!   folds run outcomes so double-run harnesses can demand bit-identical
//!   results (see `tests/determinism.rs` and DESIGN.md).
//!
//! Design follows the event-driven, allocation-conscious style of embedded
//! TCP/IP stacks: explicit state machines, no async runtime, no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod invariant;
pub mod metrics;
pub mod output;
pub mod queueing;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Model, Scheduler, Simulation};
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, FaultRates, FaultState, FaultTarget, FaultTopology,
    RandomFaultProfile,
};
pub use invariant::{Digest, EventOrderMonitor};
pub use metrics::{Counter, Exemplar, Gauge, Histogram, MetricSet, TimeSeries};
pub use queueing::{ClassConfig, ClassId, CpuServer, FairCpuServer, FairServed, QueueReject};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
